"""Ablation benches — the design-choice sweeps DESIGN.md calls out.

Not paper figures; these quantify the axes the paper leaves to future
work (daemon interval/thresholds) and the modelling choices
(transition cost, fabric speed, node count).
"""

from repro.experiments.ablations import (
    daemon_interval_study,
    daemon_threshold_study,
    network_speed_study,
    scaling_study,
    transition_latency_study,
)
from repro.experiments.report import render_table

from benchmarks.conftest import emit


def _render(points, setting_label):
    rows = [
        (f"{p.setting:g}", f"{p.norm_delay:.3f}", f"{p.norm_energy:.3f}")
        for p in points
    ]
    return render_table([setting_label, "Norm delay", "Norm energy"], rows)


def test_ablation_daemon_interval(benchmark):
    points = benchmark.pedantic(daemon_interval_study, rounds=1, iterations=1)
    emit("Ablation: CPUSPEED polling interval (FT.B.8)",
         _render(points, "interval (s)"))
    assert len(points) == 6


def test_ablation_daemon_thresholds(benchmark):
    points = benchmark.pedantic(daemon_threshold_study, rounds=1, iterations=1)
    emit("Ablation: CPUSPEED usage threshold (MG.B.8) — the regime flip",
         _render(points, "usage threshold (%)"))
    # below the flip the daemon never downscales; above it does
    assert points[0].norm_energy > points[-1].norm_energy


def test_ablation_transition_latency(benchmark):
    points = benchmark.pedantic(transition_latency_study, rounds=1, iterations=1)
    emit("Ablation: DVS transition latency vs INTERNAL FT scheduling",
         _render(points, "latency (s)"))
    # savings must be stable at SpeedStep-scale latencies and erode at
    # pathological ones (granularity condition, paper Section 2).
    assert abs(points[0].norm_energy - points[1].norm_energy) < 0.01
    assert points[-1].norm_delay > points[0].norm_delay + 0.02


def test_ablation_network_speed(benchmark):
    points = benchmark.pedantic(network_speed_study, rounds=1, iterations=1)
    emit("Ablation: fabric bandwidth vs INTERNAL FT savings",
         _render(points, "bandwidth scale"))
    savings = [p.energy_saving for p in points]
    assert savings == sorted(savings, reverse=True)  # faster net, less slack


def test_ablation_scaling(benchmark):
    points = benchmark.pedantic(scaling_study, rounds=1, iterations=1)
    emit("Ablation: node count vs INTERNAL FT savings",
         _render(points, "nodes"))
    # strong scaling pushes the comm share (and savings) up with p
    assert points[-1].energy_saving >= points[0].energy_saving
