"""Figure 11 — FT under INTERNAL (1400/600) vs EXTERNAL vs CPUSPEED."""

from repro.experiments.figures import figure11_ft_internal
from repro.experiments.report import render_internal

from benchmarks.conftest import emit


def test_fig11_ft_internal(benchmark, sweeps):
    fig = benchmark.pedantic(
        figure11_ft_internal, kwargs=dict(sweep=sweeps["FT"]), rounds=1, iterations=1
    )
    emit(
        "Figure 11: FT case study (paper: INTERNAL saves 36% with no "
        "noticeable delay; EXTERNAL@600 saves 38% but +13% delay; "
        "CPUSPEED saves 24% at +4%)",
        render_internal(fig),
    )
    d_int, e_int = fig.internal["internal"]
    assert d_int <= 1.01
    assert e_int <= 0.72
    d_auto, e_auto = fig.auto
    assert e_int < e_auto
    assert fig.external[600.0][0] > 1.10
