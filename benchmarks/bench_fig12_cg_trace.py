"""Figure 12 — CG.C.8 performance trace (asymmetric rank groups)."""

from repro.experiments.figures import figure12_cg_trace
from repro.experiments.report import render_trace_observations

from benchmarks.conftest import emit


def test_fig12_cg_trace(benchmark):
    fig = benchmark.pedantic(figure12_cg_trace, rounds=1, iterations=1)
    emit(
        "Figure 12: CG trace (paper: frequent sync, Wait/Send dominant, "
        "short cycles, ranks 4-7 more comm-bound than 0-3)",
        render_trace_observations(fig),
    )
    heavy = [r.comm_to_comp_ratio for r in fig.stats.ranks[:4]]
    light = [r.comm_to_comp_ratio for r in fig.stats.ranks[4:]]
    assert min(light) > max(heavy)
    # cycles are short: individual exchanges are well under a second
    assert fig.stats.mean_event_duration("recv") < 0.5
