"""Figure 14 — CG under heterogeneous INTERNAL vs EXTERNAL vs CPUSPEED."""

from repro.experiments.figures import figure14_cg_internal
from repro.experiments.report import render_internal

from benchmarks.conftest import emit


def test_fig14_cg_internal(benchmark, sweeps):
    fig = benchmark.pedantic(
        figure14_cg_internal, kwargs=dict(sweep=sweeps["CG"]), rounds=1, iterations=1
    )
    emit(
        "Figure 14: CG case study (paper: INTERNAL I -23%E/+8%D, "
        "INTERNAL II -16%E/+8%D; neither significantly better than "
        "EXTERNAL@800)",
        render_internal(fig),
    )
    d800, e800 = fig.external[800.0]
    for label, (d, e) in fig.internal.items():
        assert d <= 1.09, label
        assert 0.70 <= e <= 0.87, label
        assert e >= e800 - 0.03, label
