"""Figure 1 — node power breakdown under load vs idle (Pentium III)."""

from repro.experiments.figures import figure1_power_breakdown
from repro.experiments.report import render_breakdown

from benchmarks.conftest import emit


def test_fig1_power_breakdown(benchmark):
    fig = benchmark.pedantic(
        figure1_power_breakdown, kwargs=dict(run_seconds=20.0), rounds=1, iterations=1
    )
    emit(
        "Figure 1: CPU dominates node power (paper: 35% load / 15% idle)",
        render_breakdown(fig),
    )
    assert 0.28 <= fig.cpu_share_load <= 0.45
    assert 0.10 <= fig.cpu_share_idle <= 0.22
