"""Figure 2 — swim single-node energy-delay crescendo."""

from repro.experiments.figures import figure2_swim_crescendo
from repro.experiments.report import render_sweep

from benchmarks.conftest import emit


def test_fig2_swim(benchmark):
    sweep = benchmark.pedantic(figure2_swim_crescendo, rounds=1, iterations=1)
    emit(
        "Figure 2: swim crescendo "
        "(paper: ~25% delay at 600MHz; ~8% energy saving at 1200MHz)",
        render_sweep(sweep, "swim, one NEMO node"),
    )
    d600, e600 = sweep.normalized[600.0]
    assert 1.18 <= d600 <= 1.32
    assert e600 < 0.75
