"""Figure 5 — CPUSPEED daemon scheduling across the NPB suite."""

from repro.experiments.calibration import PAPER_CLAIMS
from repro.experiments.figures import figure5_cpuspeed
from repro.experiments.report import render_comparison, render_table

from benchmarks.conftest import emit


def test_fig5_cpuspeed(benchmark):
    comp = benchmark.pedantic(figure5_cpuspeed, rounds=1, iterations=1)
    paper = PAPER_CLAIMS["cpuspeed"]
    rows = [
        (
            code,
            f"{d:.3f}",
            f"{e:.3f}",
            f"{1 + paper[code]['delay_increase']:.2f}",
            f"{1 - paper[code]['energy_saving']:.2f}",
        )
        for code, d, e in comp.sorted_by_delay()
    ]
    emit(
        "Figure 5: CPUSPEED v1.2.1 (sorted by delay; paper values right)",
        render_table(
            ["Code", "Delay", "Energy", "Paper D", "Paper E"], rows
        ),
    )
    # Daemon helps the comm-bound codes without large delay...
    assert comp.points["FT"][1] < 0.85 and comp.points["FT"][0] < 1.12
    assert comp.points["IS"][1] < 0.80 and comp.points["IS"][0] < 1.10
    # ...but mispredicts the fast-alternating codes (MG/BT).
    assert comp.points["MG"][0] > 1.15
    assert comp.points["BT"][0] > 1.15
    # ...and never leaves top speed for the compute-bound ones.
    assert comp.points["EP"][0] < 1.03
    assert comp.points["LU"][0] < 1.03
