"""Figure 6 — EXTERNAL scheduling with ED3P-selected operating points."""

from repro.experiments.figures import figure6_external_ed3p
from repro.experiments.report import render_selection

from benchmarks.conftest import emit


def test_fig6_external_ed3p(benchmark, sweeps):
    sel = benchmark.pedantic(
        figure6_external_ed3p, kwargs=dict(sweeps=sweeps), rounds=1, iterations=1
    )
    emit(
        "Figure 6: EXTERNAL control with ED3P "
        "(paper: FT -30%E/+7%D; CG -20%/+4%; IS saves energy AND time; "
        "BT/EP/LU/MG unchanged)",
        render_selection(sel),
    )
    for code in ("BT", "EP", "LU", "MG"):
        assert sel.selected_mhz[code] == 1400.0
    for code in ("FT", "CG", "SP", "IS"):
        d, e = sel.points[code]
        assert e < 0.85 and d <= 1.10
