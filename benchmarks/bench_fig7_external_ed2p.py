"""Figure 7 — EXTERNAL scheduling with ED2P-selected operating points."""

from repro.experiments.figures import figure6_external_ed3p, figure7_external_ed2p
from repro.experiments.report import render_selection

from benchmarks.conftest import emit


def test_fig7_external_ed2p(benchmark, sweeps):
    sel = benchmark.pedantic(
        figure7_external_ed2p, kwargs=dict(sweeps=sweeps), rounds=1, iterations=1
    )
    emit(
        "Figure 7: EXTERNAL control with ED2P "
        "(paper: FT -38%E/+13%D at 600MHz; CG -28%/+8%; SP -19%/+3%)",
        render_selection(sel),
    )
    ed3 = figure6_external_ed3p(sweeps=sweeps)
    # ED2P trades more delay for more energy than ED3P, never less.
    for code in sel.selected_mhz:
        assert sel.selected_mhz[code] <= ed3.selected_mhz[code]
    assert sel.selected_mhz["FT"] == 600.0
