"""Figure 8 — energy-delay crescendos and the Type I-IV taxonomy."""

from repro.experiments.calibration import PAPER_CRESCENDO_TYPES
from repro.experiments.figures import figure8_crescendos
from repro.experiments.report import render_crescendos

from benchmarks.conftest import emit


def test_fig8_crescendos(benchmark, sweeps):
    fig = benchmark.pedantic(
        figure8_crescendos, kwargs=dict(sweeps=sweeps), rounds=1, iterations=1
    )
    emit(
        "Figure 8: crescendos (paper groups: I=EP; II=BT,MG,LU; "
        "III=FT,CG,SP; IV=IS)",
        render_crescendos(fig),
    )
    for code, expected in PAPER_CRESCENDO_TYPES.items():
        assert fig.types[code].value == expected, code
