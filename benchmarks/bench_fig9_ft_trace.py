"""Figure 9 — FT.C.8 performance trace (MPE/Jumpshot analogue)."""

from repro.experiments.figures import figure9_ft_trace
from repro.experiments.report import render_trace_observations

from benchmarks.conftest import emit


def test_fig9_ft_trace(benchmark):
    fig = benchmark.pedantic(figure9_ft_trace, rounds=1, iterations=1)
    emit(
        "Figure 9: FT trace (paper: comm-bound ~2:1, all-to-all dominant, "
        "long iterations, balanced)",
        render_trace_observations(fig) + "\n\n" + fig.timeline(width=96),
    )
    assert 1.5 <= fig.comm_to_comp_ratio <= 3.2
    assert abs(fig.stats.imbalance - 1.0) < 0.05
    assert fig.stats.dominant_ops(1)[0][0] == "alltoall"
    # iteration granularity: mean all-to-all long vs DVS transition cost
    assert fig.stats.mean_event_duration("alltoall") > 1.0
