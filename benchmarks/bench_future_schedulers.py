"""Beyond the paper: the future-work schedulers, suite-wide.

The paper's Section 7 asks for automation and better prediction.  This
bench compares, across all eight NPB codes:

* CPUSPEED v1.2.1 (the paper's daemon),
* the fast reactive/predictive daemon (fixes CPUSPEED's window lag),
* the β-adaptive daemon (performance counters + an explicit delay
  budget — the performance-constrained scheduler the title asks for).

Expected shape: β honors its 5 % delay budget on *every* code,
including MG/BT where CPUSPEED pays 27-42 % delay; the predictive
daemon matches hand-written INTERNAL scheduling on phase-structured
codes (FT) without touching application source.
"""

from repro.core import (
    BetaConfig,
    BetaDaemonStrategy,
    CpuspeedDaemonStrategy,
    NoDvsStrategy,
    PredictiveDaemonStrategy,
    run_workload,
)
from repro.experiments.report import render_table
from repro.experiments.tables import NPB_CODES
from repro.workloads import get_workload

from benchmarks.conftest import emit

CODES = ("EP", "LU", "MG", "BT", "SP", "CG", "FT", "IS")


def test_future_schedulers(benchmark):
    def study():
        results = {}
        for code in CODES:
            w = get_workload(code, klass="C", nprocs=NPB_CODES[code])
            base = run_workload(w, NoDvsStrategy())
            row = {}
            for label, strategy in (
                ("cpuspeed", CpuspeedDaemonStrategy()),
                ("predictive", PredictiveDaemonStrategy()),
                ("beta(5%)", BetaDaemonStrategy(BetaConfig(delta=0.05))),
                ("beta(15%)", BetaDaemonStrategy(BetaConfig(delta=0.15))),
            ):
                m = run_workload(w, strategy)
                row[label] = m.normalized_against(base)
            results[code] = row
        return results

    results = benchmark.pedantic(study, rounds=1, iterations=1)

    headers = ["Code"] + [
        f"{lab} (D/E)" for lab in ("cpuspeed", "predictive", "beta(5%)", "beta(15%)")
    ]
    rows = []
    for code in CODES:
        row = [code]
        for lab in ("cpuspeed", "predictive", "beta(5%)", "beta(15%)"):
            d, e = results[code][lab]
            row.append(f"{d:.2f}/{e:.2f}")
        rows.append(row)
    emit("Beyond the paper: system-driven schedulers compared",
         render_table(headers, rows))

    # The performance constraint holds suite-wide for beta(5%)...
    for code in CODES:
        d, _e = results[code]["beta(5%)"]
        assert d <= 1.09, code
    # ...while cpuspeed violates it badly on the misprediction codes.
    assert results["MG"]["cpuspeed"][0] > 1.15
    assert results["BT"]["cpuspeed"][0] > 1.15
    # The predictive daemon turns FT into a no-source INTERNAL schedule.
    d_ft, e_ft = results["FT"]["predictive"]
    assert d_ft < 1.02 and e_ft < 0.75
    # A looser budget buys more energy on Type III codes.
    assert results["CG"]["beta(15%)"][1] < results["CG"]["beta(5%)"][1]
