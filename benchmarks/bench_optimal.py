"""Candidate-throughput benchmark for the offline gear-plan optimizer.

Two questions, per workload shape:

* **Throughput** — how many candidate plans per second does the
  optimizer's scoring path evaluate?  The same deterministic candidate
  set is timed through one batched ``run_batch`` call (the quotient /
  per-rank batch tiers, how the search actually scores) and through a
  per-plan scalar ``run_straightline(vector=False)`` loop (the
  pre-batch tier).  ``speedup_batch_vs_scalar`` is the ratio; the full
  run on the symmetric FT shape is the reference for the ">= 10x
  quotient-batch throughput over scalar straightline" claim in
  ``docs/performance.md``.
* **Quality** — does the computed plan beat the hand-picked schedules?
  Per row, the optimizer runs at delta=0.05 and its winner's energy is
  compared against every feasible shipped candidate (the EXTERNAL
  frequency family plus the paper's Figure 11/14 INTERNAL policies):
  ``optimal_beats_heuristics`` must be true.

Runs standalone and emits machine-readable JSON::

    PYTHONPATH=src python benchmarks/bench_optimal.py --json optimal.json
    PYTHONPATH=src python benchmarks/bench_optimal.py --quick
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import time
from typing import Optional

from repro.core.framework import run_workload
from repro.core.strategies.external import ExternalStrategy
from repro.core.strategies.internal import InternalStrategy, PhasePolicy, RankPolicy
from repro.experiments.store import CacheStats
from repro.hardware.opoints import PENTIUM_M_TABLE
from repro.optimize import OptimalPlanStrategy, optimize_gear_plan
from repro.sim.straightline import run_batch, run_straightline
from repro.workloads.npb import CG, FT

DELTA = 0.05


def make_candidates(workload, groups, n_groups, limit: int):
    """A deterministic sample of candidate plans for throughput timing."""
    mhzs = PENTIUM_M_TABLE.frequencies_mhz()
    P = len(workload.phases)
    plans = []
    for combo in itertools.product(range(len(mhzs)), repeat=n_groups * P):
        table = [
            [mhzs[combo[g * P + p]] for p in range(P)] for g in range(n_groups)
        ]
        plans.append(OptimalPlanStrategy(groups, workload.phases, table))
        if len(plans) >= limit:
            break
    return plans


def shipped_candidates(code: str):
    shipped = [ExternalStrategy(mhz=m) for m in PENTIUM_M_TABLE.frequencies_mhz()]
    if code == "FT":
        shipped.append(
            InternalStrategy(PhasePolicy({"alltoall"}, low_mhz=600.0,
                                         high_mhz=1400.0))
        )
    elif code == "CG":
        shipped.append(
            InternalStrategy(RankPolicy.split(2, high_mhz=1200.0, low_mhz=800.0))
        )
        shipped.append(
            InternalStrategy(RankPolicy.split(2, high_mhz=1000.0, low_mhz=800.0))
        )
    return shipped


def rank_groups(workload):
    from repro.workloads.compile import classify_channels, compile_workload

    compiled = compile_workload(workload, PENTIUM_M_TABLE.fastest.frequency_hz)
    groups = tuple(int(g) for g in compiled.group_of)
    batchable = compiled.n_requests == 0 or classify_channels(compiled).exact
    return groups, compiled.n_groups, batchable


def bench_row(make_workload, code: str, *, sample: int, repeats: int) -> dict:
    workload = make_workload()
    groups, n_groups, batchable = rank_groups(workload)
    plans = make_candidates(workload, groups, n_groups, sample)
    points = [(p, 0) for p in plans]

    # Warm compile + lowering caches so both paths time pure evaluation.
    run_batch(make_workload(), points[:2])

    best_batch = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_batch(make_workload(), points)
        best_batch = min(best_batch, time.perf_counter() - t0)
    batch_pps = len(points) / best_batch

    best_scalar = float("inf")
    t0 = time.perf_counter()
    for plan, seed in points:
        run_straightline(make_workload(), plan, seed=seed, vector=False)
    best_scalar = min(best_scalar, time.perf_counter() - t0)
    scalar_pps = len(points) / best_scalar

    # Quality: the optimizer's winner vs every feasible shipped schedule.
    stats = CacheStats()
    t0 = time.perf_counter()
    res = optimize_gear_plan(make_workload(), delta=DELTA, stats=stats)
    search_s = time.perf_counter() - t0
    cap = (1 + DELTA) * res.baseline.elapsed_s
    heuristics = {}
    for s in shipped_candidates(code):
        m = run_workload(make_workload(), s)
        if m.elapsed_s <= cap * (1 + 1e-9):
            heuristics[s.describe()] = m.energy_j
    best_heuristic = min(heuristics.values()) if heuristics else None

    t = res.telemetry
    return {
        "workload": workload.tag,
        # which tier the optimizer scores this shape on; non-batchable
        # shapes keep the (sub-1x) batch column as the justification.
        "scoring_path": "quotient-batch" if batchable else "scalar",
        "sample_plans": len(points),
        "batch_plans_per_sec": round(batch_pps, 2),
        "scalar_plans_per_sec": round(scalar_pps, 2),
        "speedup_batch_vs_scalar": round(batch_pps / scalar_pps, 2),
        "search": {
            "delta": DELTA,
            "seconds": round(search_s, 3),
            "plans_per_sec": round(t.candidates_evaluated / search_s, 2),
            "space_size": t.space_size,
            "candidates_evaluated": t.candidates_evaluated,
            "candidates_pruned": t.candidates_pruned,
            "batches": t.batches,
            "max_batch": t.max_batch,
            "rounds": t.rounds,
            "exhaustive": t.exhaustive,
            "frontier_size": len(res.frontier),
        },
        "optimal_energy_j": res.best.energy_j,
        "optimal_norm_delay": round(res.best.norm_delay, 4),
        "optimal_norm_energy": round(res.best.norm_energy, 4),
        "best_heuristic_energy_j": best_heuristic,
        "feasible_heuristics": len(heuristics),
        "optimal_beats_heuristics": (
            best_heuristic is None or res.best.energy_j <= best_heuristic
        ),
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nprocs", type=int, default=None,
                        help="rank count for both shapes (default: 64 for "
                             "FT where the quotient advantage lives, 16 for "
                             "CG, whose halo-exchange channel classes now "
                             "quotient to its two rank-halves)")
    parser.add_argument("--sample", type=int, default=128,
                        help="candidate plans in the throughput sample")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", dest="json_out", default=None, metavar="PATH")
    parser.add_argument("--quick", action="store_true",
                        help="4 ranks, 48-plan sample, one repeat (CI smoke)")
    args = parser.parse_args(argv)

    sample, repeats = args.sample, args.repeats
    ft_nprocs = args.nprocs or 64
    cg_nprocs = args.nprocs or 16
    if args.quick:
        ft_nprocs, cg_nprocs, sample, repeats = 4, 4, 48, 1

    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python_version": platform.python_version(),
            "platform": platform.platform(),
        },
        "rows": [],
    }
    shapes = [
        ("FT", lambda: FT(klass="T", nprocs=ft_nprocs)),
        ("CG", lambda: CG(klass="T", nprocs=cg_nprocs)),
    ]
    for code, make_workload in shapes:
        row = bench_row(make_workload, code, sample=sample, repeats=repeats)
        payload["rows"].append(row)
        s = row["search"]
        print(
            f"{row['workload']:>8s} [{row['scoring_path']}]  "
            f"batch {row['batch_plans_per_sec']:>9,.1f} "
            f"plans/s ({row['speedup_batch_vs_scalar']:.1f}x vs scalar "
            f"{row['scalar_plans_per_sec']:,.1f})  search "
            f"{s['candidates_evaluated']}/{s['space_size']} plans in "
            f"{s['seconds']}s, frontier {s['frontier_size']}, "
            f"optimal<=heuristics: {row['optimal_beats_heuristics']}"
        )

    quotient_rows = [
        r for r in payload["rows"] if r["scoring_path"] == "quotient-batch"
    ] or payload["rows"]
    payload["summary"] = {
        # over quotient-scored rows only: non-batchable shapes are
        # deliberately sub-1x on the batch tier (see scoring_path).
        "min_speedup_batch_vs_scalar": min(
            r["speedup_batch_vs_scalar"] for r in quotient_rows
        ),
        "max_plans_per_sec": max(
            r["batch_plans_per_sec"] for r in payload["rows"]
        ),
        "all_optimal_beats_heuristics": all(
            r["optimal_beats_heuristics"] for r in payload["rows"]
        ),
        "total_frontier_size": sum(
            r["search"]["frontier_size"] for r in payload["rows"]
        ),
    }
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"[written to {args.json_out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
