"""Beyond the paper: cluster power capping.

Sweeps a facility power budget over FT and reports the resulting
delay/energy trade-off, with the observed peak power proving the cap
held.  (The machine-room flip side of the paper's Section 1 operating-
cost argument: sometimes the budget is a hard constraint, not a
preference.)
"""

from repro.core import (
    NoDvsStrategy,
    PowerCapConfig,
    PowerCapStrategy,
    run_workload,
)
from repro.experiments.report import render_table
from repro.workloads import get_workload

from benchmarks.conftest import emit


def test_powercap_sweep(benchmark):
    w = get_workload("FT", klass="C")

    def study():
        base = run_workload(w, NoDvsStrategy())
        nominal_w = base.energy_j / base.elapsed_s
        points = []
        for frac in (1.0, 0.9, 0.8, 0.7, 0.6):
            cap = frac * nominal_w
            strategy = PowerCapStrategy(PowerCapConfig(cap_w=cap))
            m = run_workload(w, strategy)
            d, e = m.normalized_against(base)
            points.append((frac, cap, d, e, strategy.max_observed_power_w()))
        return nominal_w, points

    nominal_w, points = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (f"{frac:.0%}", f"{cap:.0f} W", f"{d:.3f}", f"{e:.3f}", f"{peak:.0f} W")
        for frac, cap, d, e, peak in points
    ]
    emit(
        f"Power capping FT.C.8 (uncapped average {nominal_w:.0f} W)",
        render_table(
            ["Cap (% nominal)", "Budget", "Norm delay", "Norm energy", "Observed peak"],
            rows,
        ),
    )
    for frac, cap, _d, _e, peak in points:
        assert peak <= cap * 1.001, frac
    # monotone trade-off
    delays = [d for _f, _c, d, _e, _p in points]
    energies = [e for _f, _c, _d, e, _p in points]
    assert delays == sorted(delays)
    assert energies == sorted(energies, reverse=True)
