"""Section 1's motivating claims, quantified on the simulator.

Not a numbered figure: the paper's introduction argues power-aware
scheduling pays off in (a) operating cost and (b) Arrhenius-law
component life.  This bench runs FT with and without the INTERNAL
schedule, tracks per-node CPU temperature, and reports both quantities.
"""

import pytest

from repro.sim import Environment
from repro.hardware import ThermalModel, arrhenius_life_factor, nemo_cluster, operating_cost_usd
from repro.mpi import launch
from repro.core.strategies import InternalStrategy, PhasePolicy
from repro.workloads import get_workload

from benchmarks.conftest import emit


def _run_with_thermal(policy=None):
    w = get_workload("FT", klass="C")
    env = Environment()
    cluster = nemo_cluster(env, w.nprocs, with_batteries=False)
    models = [ThermalModel(node) for node in cluster]
    hooks = (
        InternalStrategy(policy).hooks(w) if policy is not None else None
    )
    program = w.make_program(hooks) if hooks is not None else w.make_program()
    handle = launch(cluster, program, nprocs=w.nprocs, cost=w.cost_model())
    env.run(handle.done)
    handle.check()
    mean_t = sum(m.mean_temperature_c() for m in models) / len(models)
    peak_t = max(m.peak_temperature_c() for m in models)
    return handle.elapsed(), cluster.total_energy_j(), mean_t, peak_t


def test_reliability_and_cost(benchmark):
    def study():
        base = _run_with_thermal()
        scheduled = _run_with_thermal(
            PhasePolicy({"alltoall"}, low_mhz=600, high_mhz=1400)
        )
        return base, scheduled

    (b_el, b_en, b_mean, b_peak), (s_el, s_en, s_mean, s_peak) = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    life = arrhenius_life_factor(s_mean, b_mean)
    # Scale the per-run cluster energy difference to the paper's
    # petaflop scenario: same relative saving on a 100 MW machine, $100/MWh.
    saving_frac = 1.0 - (s_en / b_en)
    petaflop_hourly = operating_cost_usd(100e6 * 3600.0)
    emit(
        "Reliability & operating cost (paper Section 1 motivation)",
        "\n".join(
            [
                f"no DVS     : {b_el:7.1f}s  {b_en:8.0f}J  mean CPU {b_mean:5.1f}C  peak {b_peak:5.1f}C",
                f"internal FT: {s_el:7.1f}s  {s_en:8.0f}J  mean CPU {s_mean:5.1f}C  peak {s_peak:5.1f}C",
                f"energy saving          : {saving_frac:.1%}",
                f"mean CPU cooling       : {b_mean - s_mean:.1f} C",
                f"Arrhenius life factor  : x{life:.2f} (x2 per 10C, paper Section 1)",
                f"petaflop-machine anchor: ${petaflop_hourly:,.0f}/h at peak (paper: $10,000)",
                f"  -> saving {saving_frac:.1%} of that: "
                f"${petaflop_hourly * saving_frac:,.0f}/h",
            ]
        ),
    )
    assert s_en < b_en * 0.75
    assert s_el < b_el * 1.01
    assert s_mean < b_mean - 2.0
    assert life > 1.1
    assert petaflop_hourly == pytest.approx(10_000.0)
