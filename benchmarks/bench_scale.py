"""Node-count scaling benchmark for the vectorized straightline tier.

Sweeps synthetic-cluster grids at N ∈ {16, 64, 256, 1024} ranks over
the NPB shapes that bracket the tier's eligibility spectrum:

* **EP** — embarrassingly parallel, collective-only: every rank shares
  one program body, the whole cluster collapses to one execution group;
* **FT** — symmetric alltoall/allreduce: same collapse, heavier
  collectives;
* **CG** — asymmetric halves with sendrecv point-to-point traffic:
  the channel classifier proves the halo exchange quotients onto the
  two rank-halves, so the whole grid runs on two interpreter lanes;
* **MG** — xor-neighbor exchanges that cross the sin-profile body
  groups: the classifier declines honestly (``p2p_unclassifiable``)
  and every point rides the per-rank batch tier — the decline row
  keeps the comparison honest.

Per (workload, N) row the benchmark measures **uncached points/s** of
``run_batch`` with the quotient (group-representative) path on, the
same grid with it off (the pre-group per-rank tier; skipped above
``--baseline-max-nprocs`` where the per-rank tier is painfully slow),
and the compile-side sharing stats: execution groups vs ranks and
shared vs dense program-body bytes.

``fallbacks`` counts grid points whose quotient eligibility probe
declines (from the compiled program, mirroring the tier's own test) —
zero on the symmetric and classified workloads, the full grid on MG —
and ``fallback_reasons`` histograms the typed decline codes.  The
``batch`` block reports what ``run_batch`` actually did (quotient /
per-rank / scalar point counts, splits, and its own reason histogram).

Runs standalone and emits machine-readable JSON::

    PYTHONPATH=src python benchmarks/bench_scale.py --json scale.json
    PYTHONPATH=src python benchmarks/bench_scale.py --quick

The full run is the reference for the ">= 3x uncached points/s at
N=256" (symmetric), ">= 5x on CG at N=256" (classified p2p), and
"groups/ranks compression < 0.25 on symmetric workloads" claims in
``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Optional

import numpy as np

from repro.core.strategies.external import ExternalStrategy
from repro.core.strategies.internal import InternalStrategy, PhasePolicy
from repro.hardware.opoints import PENTIUM_M_TABLE
from repro.sim.straightline import (
    _lower_gear_actions,
    _start_indices,
    _vector_partition,
    run_batch,
)
from repro.workloads.compile import compile_workload
from repro.workloads.npb import CG, EP, FT, MG

WORKLOADS = {"EP": EP, "FT": FT, "CG": CG, "MG": MG}
SYMMETRIC = ("EP", "FT")
CLASSIFIED = ("CG",)


def make_grid(workload) -> list[tuple]:
    """A representative uncached sweep: EXTERNAL + INTERNAL points.

    Seeds are part of the point signature (they cannot influence a
    straightline-eligible run, but real sweeps carry them), so the grid
    shape matches what ``ParallelRunner.map_sweep`` batches.
    """
    mhzs = [op.frequency_mhz for op in PENTIUM_M_TABLE]
    low_phase = workload.phases[0]
    points: list[tuple] = []
    for mhz in mhzs:
        for seed in (0, 1):
            points.append((ExternalStrategy(mhz=mhz), seed))
    for mhz in mhzs[:-1]:
        points.append(
            (InternalStrategy(PhasePolicy({low_phase}, mhz, mhzs[-1])), 0)
        )
    return points


def compile_stats(workload) -> dict:
    """Group compression + shared-vs-dense body memory of one program."""
    compiled = compile_workload(workload, PENTIUM_M_TABLE.fastest.frequency_hz)
    dense = 0
    shared_ids: dict[int, int] = {}
    for arrays in (compiled.ops, compiled.iargs, compiled.fargs):
        for a in arrays:
            dense += a.nbytes
            shared_ids[id(a)] = a.nbytes
    shared = sum(shared_ids.values())
    return {
        "rank_groups": compiled.n_groups,
        "ranks": compiled.nprocs,
        "group_compression": compiled.n_groups / compiled.nprocs,
        "body_bytes_shared": shared,
        "body_bytes_dense": dense,
        "body_bytes_ratio": shared / dense if dense else 1.0,
    }


def vector_telemetry(workload, points) -> tuple[int, int, dict]:
    """(fallbacks, execution groups, reason histogram) for a grid.

    Mirrors the tier's own eligibility decision — body groups refined
    by each point's start index and lowered actions, then the channel
    classifier's lane proof — without paying for a simulation per
    point, so the probe is O(compile), not O(run).  ``groups`` is the
    smallest execution-group count any eligible point achieves
    (= nprocs when every point falls back); the histogram counts the
    typed decline codes (``p2p_unclassifiable``, ``p2p_zero_byte``,
    ...) per declining point.
    """
    compiled = compile_workload(workload, PENTIUM_M_TABLE.fastest.frequency_hz)
    fallbacks = 0
    groups = workload.nprocs
    reasons: dict[str, int] = {}
    for strategy, _seed in points:
        plan = strategy.gear_plan(workload)
        actions = _lower_gear_actions(compiled, plan, PENTIUM_M_TABLE)
        start = _start_indices(plan, PENTIUM_M_TABLE, workload.nprocs)
        part, reason = _vector_partition(
            compiled, lambda r: (start[r], tuple(actions[r]))
        )
        if part is None:
            fallbacks += 1
            reasons[reason] = reasons.get(reason, 0) + 1
        else:
            groups = min(groups, len(part[1]))
    return fallbacks, groups, reasons


def bench_row(name: str, nprocs: int, *, repeats: int,
              baseline_max_nprocs: int) -> dict:
    workload = WORKLOADS[name](nprocs=nprocs)
    points = make_grid(workload)
    fallbacks, groups, reasons = vector_telemetry(workload, points)

    timing_skipped = False
    if fallbacks == len(points) and nprocs > baseline_max_nprocs:
        # Every point declines the quotient and runs the per-rank
        # batch tier, whose cost grows superlinearly with N — timing
        # it here would burn many minutes to restate what the smaller
        # all-decline rows already show (speedup ~1.0x).  Keep the row
        # for its telemetry (fallbacks, reasons, groups, compile
        # stats), say so, and skip the timing.
        timing_skipped = True
        print(f"[{workload.tag}: all-decline row above the baseline "
              f"cap — timing skipped]")

    pps: Optional[float] = None
    baseline_pps: Optional[float] = None
    batch_info: dict = {}
    if not timing_skipped:
        # Warm the program compilation + lowering caches so the
        # timings measure simulation throughput, not one-time compile
        # cost (which the compile stats report separately).
        run_batch(workload, points[:2])

        def timed(vector: bool, collect: Optional[dict] = None) -> float:
            best = float("inf")
            for i in range(repeats):
                t0 = time.perf_counter()
                run_batch(workload, points, vector=vector,
                          stats=collect if i == 0 else None)
                dt = time.perf_counter() - t0
                best = min(best, dt)
                if dt > 5.0:
                    break  # slow row: one measurement is representative
            return len(points) / best

        pps = timed(vector=True, collect=batch_info)
        if nprocs <= baseline_max_nprocs:
            baseline_pps = timed(vector=False)

    row = {
        "workload": workload.tag,
        "nprocs": nprocs,
        "points": len(points),
        "points_per_sec": round(pps, 2) if pps is not None else None,
        "baseline_points_per_sec": (
            round(baseline_pps, 2) if baseline_pps is not None else None
        ),
        "speedup_vs_per_rank": (
            round(pps / baseline_pps, 2)
            if pps is not None and baseline_pps else None
        ),
        "groups": groups,
        "ranks": nprocs,
        "compression": round(groups / nprocs, 4),
        "fallbacks": fallbacks,
        "fallback_reasons": reasons,
        "batch": {
            "quotient_points": batch_info.get("quotient_points", 0),
            "per_rank_points": batch_info.get("per_rank_points", 0),
            "scalar_points": batch_info.get("scalar_points", 0),
            "splits": batch_info.get("splits", 0),
            "fallback_reasons": batch_info.get("fallback_reasons", {}),
        } if batch_info else None,
        "timing_skipped": timing_skipped,
        "compile": compile_stats(workload),
    }
    return row


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nprocs", type=int, nargs="*", default=None,
                        help="node counts to sweep (default 16 64 256 1024)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--baseline-max-nprocs", type=int, default=256,
                        help="skip the per-rank baseline above this N")
    parser.add_argument("--json", dest="json_out", default=None, metavar="PATH")
    parser.add_argument("--quick", action="store_true",
                        help="N in {16, 64}, one repeat (CI smoke)")
    args = parser.parse_args(argv)

    counts = args.nprocs or [16, 64, 256, 1024]
    repeats = args.repeats
    baseline_max = args.baseline_max_nprocs
    if args.quick:
        counts = [16, 64]
        repeats = 1
        # The per-rank tier on asymmetric shapes is the slow thing this
        # benchmark exists to bypass; a smoke run only needs it once.
        baseline_max = min(baseline_max, 16)

    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "numpy_version": np.__version__,
            "python_version": platform.python_version(),
            "platform": platform.platform(),
        },
        "rows": [],
    }
    for name in WORKLOADS:
        for nprocs in counts:
            row = bench_row(
                name, nprocs, repeats=repeats,
                baseline_max_nprocs=baseline_max,
            )
            payload["rows"].append(row)
            base = row["baseline_points_per_sec"]
            speed = row["speedup_vs_per_rank"]
            pps = row["points_per_sec"]
            rate = (f"{pps:>9,.1f} pts/s" if pps is not None
                    else "   (not timed)")
            reason_txt = (
                "  reasons[" + ", ".join(
                    f"{k} x{v}"
                    for k, v in sorted(row["fallback_reasons"].items())
                ) + "]"
                if row["fallback_reasons"] else ""
            )
            print(
                f"{row['workload']:>10s} N={nprocs:<5d} {rate}"
                + (f"  ({speed:.2f}x vs per-rank {base:,.1f})"
                   if base is not None and speed is not None
                   else "  (baseline skipped)")
                + f"  groups={row['groups']}/{nprocs}"
                f"  fallbacks={row['fallbacks']}/{row['points']}"
                + reason_txt
            )

    sym = [
        r for r in payload["rows"]
        if r["workload"].split(".")[0] in SYMMETRIC
    ]
    classified = [
        r for r in payload["rows"]
        if r["workload"].split(".")[0] in CLASSIFIED
    ]
    payload["summary"] = {
        "max_symmetric_compression": max(r["compression"] for r in sym),
        "symmetric_fallbacks": sum(r["fallbacks"] for r in sym),
        "min_speedup_vs_per_rank": min(
            (r["speedup_vs_per_rank"] for r in sym
             if r["speedup_vs_per_rank"] is not None),
            default=None,
        ),
        "classified_fallbacks": sum(r["fallbacks"] for r in classified),
        "classified_per_rank_points": sum(
            r["batch"]["per_rank_points"] for r in classified if r["batch"]
        ),
        "min_classified_speedup_vs_per_rank": min(
            (r["speedup_vs_per_rank"] for r in classified
             if r["speedup_vs_per_rank"] is not None),
            default=None,
        ),
    }
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"[written to {args.json_out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
