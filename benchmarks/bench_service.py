"""Load generator for the schedule-advisor service.

Drives many thousands of concurrent simulated clients through the
whole service pipeline — per-tenant quotas, admission batching, the
shared warmed measurement cache — and reports client-observed latency
percentiles and sustained queries/s.  The default transport is
in-process (the same ``handle_request`` pipeline the TCP layer calls,
without needing 10k file descriptors); ``--transport tcp`` runs the
same load over real sockets with clients multiplexed onto a shared
connection pool.

Runs standalone (no pytest required) and emits machine-readable JSON::

    PYTHONPATH=src python benchmarks/bench_service.py --json service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick

The default scale (``--clients 10000``) is the reference for the
service-tier numbers in ``docs/performance.md``; CI runs ``--quick``
and asserts the ``p50_ms`` / ``p99_ms`` / ``queries_per_sec`` keys.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import time
from typing import Any, Optional

from repro.service import AdvisorService, InProcessClient, ServiceConfig, TenantQuota


def percentile(sorted_vals: list[float], q: float) -> float:
    """The q-th percentile (nearest-rank) of an ascending list."""
    if not sorted_vals:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_vals)))
    return sorted_vals[rank - 1]


def _client_plan(
    index: int, codes: list[str], frequencies: list[float], advise_every: int
) -> dict[str, Any]:
    """The deterministic request each simulated client issues.

    Clients rotate over workloads and over four frequency subsets, so
    concurrent requests overlap without being identical — the shape
    admission batching is built for.  Every ``advise_every``-th client
    asks the full advisor question instead (single-flight territory).
    """
    code = codes[index % len(codes)]
    if advise_every and index % advise_every == advise_every - 1:
        return {"op": "advise", "params": {"workload": code, "klass": "T"}}
    subsets = (
        frequencies,
        frequencies[: max(2, len(frequencies) // 2)],
        frequencies[-max(2, len(frequencies) // 2):],
        [frequencies[0], frequencies[-1]],
    )
    subset = subsets[(index // len(codes)) % len(subsets)]
    return {
        "op": "sweep",
        "params": {
            "workload": code,
            "klass": "T",
            "frequencies_mhz": list(subset),
        },
    }


async def _drive(
    request,
    plans: list[dict[str, Any]],
    requests_each: int,
    latencies: dict[str, list[float]],
    errors: list[str],
) -> None:
    for plan in plans:
        for _ in range(requests_each):
            t0 = time.perf_counter()
            response = await request(plan)
            dt = time.perf_counter() - t0
            if response.get("ok"):
                latencies[plan["op"]].append(dt)
            else:
                errors.append(response["error"]["code"])


async def _run_load(args, codes: list[str], frequencies: list[float]) -> dict:
    tenants = max(1, args.tenants)
    config = ServiceConfig(
        port=0,
        window_s=args.window_ms / 1000.0,
        max_queue=args.max_queue,
        quota=TenantQuota(
            max_in_flight=max(64, -(-args.clients // tenants)), qps=None
        ),
        jobs=1,
        cache_dir=args.cache_dir,
        warm_cache=args.cache_dir is not None,
    )
    service = AdvisorService(config)
    clients: list[Any] = []
    tcp_clients: list[Any] = []
    try:
        if args.transport == "tcp":
            from repro.service import ServiceClient

            await service.start()
            port = service.bound_port
            for i in range(min(args.connections, args.clients)):
                tcp_clients.append(
                    await ServiceClient.connect(
                        "127.0.0.1", port, tenant=f"bench-{i % tenants}"
                    )
                )
            clients = [
                tcp_clients[i % len(tcp_clients)] for i in range(args.clients)
            ]
        else:
            clients = [
                InProcessClient(service, tenant=f"bench-{i % tenants}")
                for i in range(args.clients)
            ]

        plans = [
            _client_plan(i, codes, frequencies, args.advise_every)
            for i in range(args.clients)
        ]

        async def issue(client, plan):
            return await client.request(plan["op"], plan["params"])

        # Untimed priming pass: one sweep over the full table plus one
        # advise per workload fills the measurement cache, so the timed
        # window measures service throughput, not first-contact
        # simulation cost (a deployment's cache is warm for the same
        # reason — tenants warm it for each other).
        prime = clients[0]
        for code in codes:
            await issue(prime, {
                "op": "sweep",
                "params": {"workload": code, "klass": "T",
                           "frequencies_mhz": list(frequencies)},
            })
            if args.advise_every:
                await issue(prime, {
                    "op": "advise", "params": {"workload": code, "klass": "T"},
                })

        latencies: dict[str, list[float]] = {"sweep": [], "advise": []}
        errors: list[str] = []
        t0 = time.perf_counter()
        await asyncio.gather(*(
            _drive(
                lambda plan, c=client: issue(c, plan),
                [plan],
                args.requests,
                latencies,
                errors,
            )
            for client, plan in zip(clients, plans)
        ))
        wall_s = time.perf_counter() - t0

        stats = await InProcessClient(service).stats()
    finally:
        for tcp_client in tcp_clients:
            await tcp_client.close()
        await service.aclose()

    all_lat = sorted(latencies["sweep"] + latencies["advise"])
    total = len(all_lat)
    out = {
        "transport": args.transport,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "requests_total": total,
        "errors": len(errors),
        "error_codes": sorted(set(errors)),
        "wall_s": round(wall_s, 3),
        "queries_per_sec": round(total / wall_s, 1) if wall_s else 0.0,
        "p50_ms": round(percentile(all_lat, 50) * 1e3, 3),
        "p99_ms": round(percentile(all_lat, 99) * 1e3, 3),
        "max_ms": round(percentile(all_lat, 100) * 1e3, 3),
        "mean_ms": round(sum(all_lat) / total * 1e3, 3) if total else 0.0,
        "sweep_requests": len(latencies["sweep"]),
        "advise_requests": len(latencies["advise"]),
        "batcher": stats["batcher"],
        "runner": {
            k: stats["runner"][k]
            for k in ("lookups", "hits", "memo_hits", "simulated")
            if k in stats["runner"]
        },
        "cache": stats["cache"],
    }
    if latencies["advise"]:
        advise_sorted = sorted(latencies["advise"])
        out["advise_p99_ms"] = round(percentile(advise_sorted, 99) * 1e3, 3)
    return out


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=10_000,
                        help="concurrent simulated clients (default 10000)")
    parser.add_argument("--requests", type=int, default=1,
                        help="requests each client issues (default 1)")
    parser.add_argument("--codes", nargs="*", default=["FT", "CG", "EP"])
    parser.add_argument("--tenants", type=int, default=64,
                        help="distinct tenants the clients spread over")
    parser.add_argument("--advise-every", type=int, default=16,
                        help="every Nth client asks advise instead of sweep "
                             "(0 disables the advise mix)")
    parser.add_argument("--window-ms", type=float, default=5.0)
    parser.add_argument("--max-queue", type=int, default=4096)
    parser.add_argument("--transport", choices=("inproc", "tcp"),
                        default="inproc")
    parser.add_argument("--connections", type=int, default=64,
                        help="shared sockets in tcp mode (clients multiplex)")
    parser.add_argument("--cache-dir", default=None,
                        help="measurement cache root (default: fresh tempdir)")
    parser.add_argument("--json", dest="json_out", default=None, metavar="PATH")
    parser.add_argument("--quick", action="store_true",
                        help="small client count (CI smoke)")
    args = parser.parse_args(argv)

    if args.quick:
        args.clients = min(args.clients, 500)

    from repro.hardware.opoints import PENTIUM_M_TABLE

    frequencies = [float(f) for f in PENTIUM_M_TABLE.frequencies_mhz()]
    codes = [c.upper() for c in args.codes]

    import tempfile

    if args.cache_dir is not None:
        row = asyncio.run(_run_load(args, codes, frequencies))
    else:
        with tempfile.TemporaryDirectory() as cache_dir:
            args.cache_dir = cache_dir
            row = asyncio.run(_run_load(args, codes, frequencies))
            args.cache_dir = None

    payload = {"service": row}
    print(f"service {row['transport']:7s} {row['clients']:>7,d} clients "
          f"x {row['requests_per_client']} req")
    for field in ("queries_per_sec", "p50_ms", "p99_ms", "max_ms", "mean_ms"):
        print(f"service {field:18s} {row[field]:>12,.3f}")
    b = row["batcher"]
    print(f"service coalescing         {b['waiters_coalesced']:,d} waiters onto "
          f"{b['points_submitted']:,d} points in {b['grids_run']:,d} grids")
    if row["errors"]:
        print(f"service ERRORS             {row['errors']} ({row['error_codes']})")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"[written to {args.json_out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
