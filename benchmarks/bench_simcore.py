"""Simulation-kernel and experiment-engine throughput benchmarks.

Two layers, matching the two optimization surfaces:

* **kernel events/sec** — synthetic event storms exercising the hot
  paths of :mod:`repro.sim` (timeout churn, process ping-pong, the
  communicator's cancel-guard pattern);
* **tier points/sec** — two strategy grids (a static-gear EXTERNAL
  sweep and the FT Figure 11 INTERNAL configuration) forced through the
  event engine, the straightline accumulator, the batched numpy
  evaluation, and a warm measurement cache;
* **end-to-end wall-clock** — a real frequency sweep, serial vs the
  parallel runner, cold vs warm measurement cache.

Runs standalone (no pytest required) and emits machine-readable JSON::

    PYTHONPATH=src python benchmarks/bench_simcore.py --json simcore.json
    PYTHONPATH=src python benchmarks/bench_simcore.py --quick

The kernel section is the reference for the ">= 1.5x events/sec vs the
pre-fast-path kernel" claim in ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Callable, Optional

from repro.sim import Environment


# ----------------------------------------------------------------------
# kernel event storms
# ----------------------------------------------------------------------
def storm_timeout_churn(n_events: int) -> int:
    """Pure Timeout scheduling/dispatch — the kernel's innermost loop."""
    env = Environment()
    count = 0

    def ticker(env, period):
        nonlocal count
        while True:
            yield env.timeout(period)
            count += 1

    for i in range(10):
        env.process(ticker(env, 1.0 + i * 0.1))
    env.run(until=float(n_events) / 10.0)
    return count


def storm_process_pingpong(n_events: int) -> int:
    """Two processes handing control back and forth through events —
    the succeed/resume path with no time advance."""
    env = Environment()
    count = 0
    half = n_events // 2

    def ping(env, peer_inbox, my_inbox):
        nonlocal count
        for _ in range(half):
            peer_inbox[0].succeed()
            peer_inbox[0] = env.event()
            count += 1
            yield my_inbox[0]

    a_inbox, b_inbox = [env.event()], [env.event()]

    def pong(env):
        nonlocal count
        while True:
            yield b_inbox[0]
            b_inbox[0] = env.event()
            count += 1
            a_inbox[0].succeed()
            a_inbox[0] = env.event()

    env.process(pong(env))
    env.process(ping(env, b_inbox, a_inbox))
    env.run()
    return count


def storm_cancel_guard(n_events: int) -> int:
    """Schedule-then-cancel guard timeouts (the communicator pattern).

    Stresses lazy deletion + heap compaction: most scheduled entries
    die before firing.
    """
    env = Environment()
    count = 0

    def guarded(env):
        nonlocal count
        while True:
            guard = env.timeout(50.0)   # long guard, always cancelled
            work = env.timeout(0.5)
            yield work
            guard.cancel()
            count += 1

    for _ in range(8):
        env.process(guarded(env))
    env.run(until=float(n_events) / 16.0)
    return count


STORMS: dict[str, Callable[[int], int]] = {
    "timeout_churn": storm_timeout_churn,
    "process_pingpong": storm_process_pingpong,
    "cancel_guard": storm_cancel_guard,
}


def bench_kernel(n_events: int, repeats: int) -> dict:
    out = {}
    for name, storm in STORMS.items():
        best = 0.0
        events = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            events = storm(n_events)
            dt = time.perf_counter() - t0
            best = max(best, events / dt)
        out[name] = {"events": events, "best_events_per_sec": round(best)}
    return out


# ----------------------------------------------------------------------
# simulation tiers: event engine vs straightline vs batch vs cache
# ----------------------------------------------------------------------
def _bench_tier_grid(workload, points, cache_dir: str, with_batch: bool = True) -> dict:
    """Points/sec of one strategy grid through every execution tier.

    The same (strategy, seed) grid runs four ways: forced through the
    event engine, forced through the per-point straightline accumulator,
    through the vectorized :func:`run_batch` evaluation, and replayed
    from a warm measurement cache.  All four produce the same bits;
    only the wall-clock differs.  ``with_batch=False`` drops the
    vectorized stage — daemon grids (the sampled-control tier) have
    data-dependent control flow and no batched form.

    The event and straightline stages report best-of-3 throughput, so a
    scheduler hiccup in either stage cannot fake (or hide) a speedup.
    """
    from repro.core.framework import run_workload
    from repro.experiments.parallel import ParallelRunner, RunTask
    from repro.sim.straightline import run_batch

    def timed(engine: str) -> float:
        # One untimed point first: the straightline tier compiles the
        # phase program on first contact (memoized per workload), and a
        # sweep pays that once regardless of its size.
        run_workload(workload, points[0][0], seed=points[0][1], engine=engine)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for strategy, seed in points:
                run_workload(workload, strategy, seed=seed, engine=engine)
            best = min(best, time.perf_counter() - t0)
        return best

    event_s = timed("event")
    straight_s = timed("straightline")

    batch_s = None
    if with_batch:
        run_batch(workload, points[:2])  # untimed: numpy + power-table warmup
        batch_s = float("inf")
        for _ in range(3):  # short enough that scheduler jitter dominates
            t0 = time.perf_counter()
            run_batch(workload, points)
            batch_s = min(batch_s, time.perf_counter() - t0)

    tasks = [RunTask(workload, strategy, seed=seed) for strategy, seed in points]
    with ParallelRunner(jobs=1, cache_dir=cache_dir) as runner:
        runner.map_sweep(tasks)                      # fill
    with ParallelRunner(jobs=1, cache_dir=cache_dir) as runner:
        t0 = time.perf_counter()
        runner.map_sweep(tasks)                      # warm replay
        replay_s = time.perf_counter() - t0

    n = len(points)
    out = {
        "points": n,
        "event_points_per_sec": round(n / event_s, 2),
        "straightline_points_per_sec": round(n / straight_s, 2),
        "cached_replay_points_per_sec": round(n / replay_s, 2),
        "straightline_speedup_vs_event": round(event_s / straight_s, 2),
    }
    if batch_s is not None:
        out["batch_points_per_sec"] = round(n / batch_s, 2)
        out["batch_speedup_vs_straightline"] = round(straight_s / batch_s, 2)
    return out


def bench_tiers(klass: str, tmp_cache: str, quick: bool) -> dict:
    """Tier throughput for the two strategy families the tiers serve.

    * ``external`` — a static EXTERNAL gear × seed grid on FT;
    * ``internal`` — the paper's FT Figure 11 configuration (INTERNAL
      phase scheduling around the all-to-all) over several gear pairs:
      the piecewise-static tier's territory;
    * ``cpuspeed`` — the Figure 5 daemon grid (CPUSPEED v1.1, v1.2.1
      and an intermediate tuning, per seed) on FT: the sampled-control
      tier's territory (event vs sampled-control vs cached replay; no
      batch stage — daemon control flow is data-dependent);
    * ``beta`` — the β daemon over poll intervals, per seed: the
      stateful-controller tier's per-node-state form;
    * ``powercap`` — the power-cap coordinator over budgets, per seed:
      the stateful-controller tier's global-reduction form.

    Both grids run on FT: its rank schedule is gear-independent, so the
    whole grid stays in one vectorized batch.  Codes whose schedule
    reorders with the gear (CG's split speeds) fragment the batch into
    per-group re-evaluations — that robustness path is covered by tests,
    but it is not what the tier throughput comparison measures.
    """
    import os

    from repro.core.strategies.external import ExternalStrategy
    from repro.core.strategies.internal import InternalStrategy, PhasePolicy
    from repro.workloads import get_workload

    gears = [600.0, 1000.0, 1400.0] if quick else [600.0, 800.0, 1000.0, 1200.0, 1400.0]
    seeds = [0] if quick else [0, 1]
    external_points = [
        (ExternalStrategy(mhz=mhz), seed) for mhz in gears for seed in seeds
    ]
    external = _bench_tier_grid(
        get_workload("FT", klass=klass),
        external_points,
        os.path.join(tmp_cache, "tiers-external"),
    )
    external.update(code="FT", klass=klass)

    pairs = [(600, 1400), (800, 1400), (1000, 1200)]
    if not quick:
        pairs += [(600, 1200), (800, 1200)]
    internal_points = [
        (InternalStrategy(PhasePolicy({"alltoall"}, low, high)), seed)
        for low, high in pairs
        for seed in seeds
    ]
    internal = _bench_tier_grid(
        get_workload("FT", klass=klass),
        internal_points,
        os.path.join(tmp_cache, "tiers-internal"),
    )
    internal.update(code="FT", klass=klass)

    from repro.core.strategies.cpuspeed import CpuspeedConfig, CpuspeedDaemonStrategy

    configs = [CpuspeedConfig.v1_1(), CpuspeedConfig.v1_2_1()]
    if not quick:
        configs.append(
            CpuspeedConfig(
                interval_s=0.5,
                minimum_threshold=30.0,
                usage_threshold=60.0,
                maximum_threshold=90.0,
            )
        )
    cpuspeed_points = [
        (CpuspeedDaemonStrategy(cfg), seed) for cfg in configs for seed in seeds
    ]
    cpuspeed = _bench_tier_grid(
        get_workload("FT", klass=klass),
        cpuspeed_points,
        os.path.join(tmp_cache, "tiers-cpuspeed"),
        with_batch=False,
    )
    cpuspeed.update(code="FT", klass=klass)

    from repro.core.strategies.beta import BetaConfig, BetaDaemonStrategy
    from repro.core.strategies.powercap import PowerCapConfig, PowerCapStrategy

    intervals = [0.1, 0.5] if quick else [0.05, 0.1, 0.5]
    beta_points = [
        (BetaDaemonStrategy(BetaConfig(interval_s=iv)), seed)
        for iv in intervals
        for seed in seeds
    ]
    beta = _bench_tier_grid(
        get_workload("FT", klass=klass),
        beta_points,
        os.path.join(tmp_cache, "tiers-beta"),
        with_batch=False,
    )
    beta.update(code="FT", klass=klass)

    caps = [90.0, 120.0] if quick else [75.0, 90.0, 110.0, 130.0]
    powercap_points = [
        (PowerCapStrategy(PowerCapConfig(cap_w=cap, interval_s=0.2)), seed)
        for cap in caps
        for seed in seeds
    ]
    powercap = _bench_tier_grid(
        get_workload("FT", klass=klass),
        powercap_points,
        os.path.join(tmp_cache, "tiers-powercap"),
        with_batch=False,
    )
    powercap.update(code="FT", klass=klass)
    return {
        "external": external,
        "internal": internal,
        "cpuspeed": cpuspeed,
        "beta": beta,
        "powercap": powercap,
    }


# ----------------------------------------------------------------------
# end-to-end experiment engine
# ----------------------------------------------------------------------
def bench_sweep(code: str, klass: str, jobs: int, tmp_cache: Optional[str]) -> dict:
    from repro.experiments.parallel import ParallelRunner, use
    from repro.experiments.runner import frequency_sweep
    from repro.workloads import get_workload

    workload = get_workload(code, klass=klass)

    def timed(runner) -> float:
        t0 = time.perf_counter()
        with use(runner):
            frequency_sweep(workload)
        return time.perf_counter() - t0

    serial = timed(ParallelRunner(jobs=1, memo=False))
    out = {"code": code, "klass": klass, "serial_s": round(serial, 3)}
    if jobs > 1:
        with ParallelRunner(jobs=jobs) as runner:
            out[f"parallel_j{jobs}_s"] = round(timed(runner), 3)
    if tmp_cache is not None:
        with ParallelRunner(jobs=jobs, cache_dir=tmp_cache) as runner:
            out["cold_cache_s"] = round(timed(runner), 3)
        with ParallelRunner(jobs=jobs, cache_dir=tmp_cache) as runner:
            out["warm_cache_s"] = round(timed(runner), 3)
    return out


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="events per kernel storm (default 200000)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--code", default="CG")
    parser.add_argument("--class", dest="klass", default="B")
    parser.add_argument("--jobs", "-j", type=int, default=4)
    parser.add_argument("--json", dest="json_out", default=None, metavar="PATH")
    parser.add_argument("--quick", action="store_true",
                        help="small storms + tiny class (CI smoke)")
    args = parser.parse_args(argv)

    if args.quick:
        args.events, args.repeats, args.klass = 20_000, 1, "T"

    import tempfile

    import os

    import numpy as np

    with tempfile.TemporaryDirectory() as cache_dir:
        payload = {
            # Machine header: bench-smoke artifacts from different CI
            # runners are only comparable with these pinned alongside.
            "machine": {
                "cpu_count": os.cpu_count(),
                "numpy_version": np.__version__,
                "python_version": platform.python_version(),
                "platform": platform.platform(),
            },
            "kernel": bench_kernel(args.events, args.repeats),
            "tiers": bench_tiers(args.klass, cache_dir, args.quick),
            "sweep": bench_sweep(args.code, args.klass, args.jobs, cache_dir),
        }

    for name, row in payload["kernel"].items():
        print(f"kernel {name:18s} {row['best_events_per_sec']:>9,d} events/s")
    for row_name, row in payload["tiers"].items():
        for field, value in row.items():
            if field.endswith("_per_sec"):
                print(f"tiers[{row_name}] {field:32s} {value:>10,.2f} points/s")
        for field in ("straightline_speedup_vs_event", "batch_speedup_vs_straightline"):
            if field in row:
                print(f"tiers[{row_name}] {field:32s} {row[field]:>10.2f} x")
    for field, value in payload["sweep"].items():
        if field.endswith("_s"):
            print(f"sweep  {field:18s} {value:>9.3f} s")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"[written to {args.json_out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
