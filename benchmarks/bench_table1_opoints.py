"""Table 1 — Pentium M operating points."""

from repro.experiments.report import render_table1
from repro.experiments.tables import table1

from benchmarks.conftest import emit


def test_table1(benchmark):
    points = benchmark(table1)
    emit("Table 1: operating points for the Pentium M 1.4GHz processor",
         render_table1(points))
    assert points[0] == (1.4, 1.484)
