"""Table 2 — energy-performance profiles of the NPB suite.

Runs every code at every static frequency plus under the CPUSPEED
daemon (48 cluster runs) and prints the measured table interleaved with
the paper's published cells.
"""

import pytest

from repro.experiments.calibration import PAPER_TABLE2
from repro.experiments.report import render_table2
from repro.experiments.tables import table2

from benchmarks.conftest import emit


def test_table2(benchmark, t2rows):
    # The session fixture already holds the grid; time a single-code
    # regeneration so the benchmark reflects real work without running
    # the 48-run grid twice.
    benchmark.pedantic(
        table2, kwargs=dict(codes=["FT"]), rounds=1, iterations=1
    )
    emit(
        "Table 2: energy-performance profiles (measured vs paper)",
        render_table2(t2rows),
    )
    # Fidelity gate on static cells (delay within 0.07, energy 0.08).
    for code, row in t2rows.items():
        for col in ("600", "800", "1000", "1200"):
            cell = PAPER_TABLE2[code][col]
            if cell is None or cell[1] is None:
                continue
            d, e = row.columns[col]
            assert d == pytest.approx(cell[0], abs=0.07), (code, col)
            assert e == pytest.approx(cell[1], abs=0.08), (code, col)
