"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at class C on the
simulated NEMO cluster and prints the same rows/series the paper
reports (paper reference values alongside, where published).
pytest-benchmark times the regeneration; the printed output is the
reproduction artifact.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.tables import table2


@pytest.fixture(scope="session")
def t2rows():
    """The full class-C Table 2 grid, shared by the table/figure benches
    that derive from the same sweeps (6/7/8)."""
    return table2()


@pytest.fixture(scope="session")
def sweeps(t2rows):
    return {code: row.sweep for code, row in t2rows.items()}


def emit(title: str, text: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text)
