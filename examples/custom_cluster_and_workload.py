#!/usr/bin/env python
"""Build your own power-aware cluster and workload.

Everything the built-in experiments use is public API.  This example:

* defines a custom DVS operating-point table (an Opteron-like part with
  three points and a 30 us transition, footnote 2 of the paper);
* builds a 4-node cluster with a faster network;
* writes a custom MPI workload (a halo-exchange stencil) directly
  against the rank-program API, announcing a phase for DVS policies;
* watches the CPUSPEED daemon drive it, with the ACPI/Baytech channels
  attached, and renders the timeline.
"""

from repro.sim import Environment
from repro.hardware import (
    NEMO_POWER,
    NetworkParameters,
    OperatingPoint,
    OperatingPointTable,
    nemo_cluster,
)
from repro.mpi import launch
from repro.powerpack import DataCollector
from repro.trace import TraceLog, analyze, render_timeline
from repro.core.strategies import CpuspeedDaemonStrategy

OPTERON_TABLE = OperatingPointTable(
    [
        OperatingPoint(frequency_hz=2.0e9, voltage_v=1.35),
        OperatingPoint(frequency_hz=1.8e9, voltage_v=1.30),
        OperatingPoint(frequency_hz=1.0e9, voltage_v=1.10),
    ]
)


def stencil(ctx):
    """A 1-D halo-exchange stencil: compute, exchange with neighbours,
    reduce a residual every 10 steps."""
    left = (ctx.rank - 1) % ctx.size
    right = (ctx.rank + 1) % ctx.size
    for step in range(150):
        yield from ctx.compute(seconds=0.05, offchip_seconds=0.10, mem_activity=0.6)
        yield from ctx.sendrecv(right, 1_500_000, src=left, tag=1)
        yield from ctx.sendrecv(left, 1_500_000, src=right, tag=2)
        if step % 10 == 9:
            yield from ctx.allreduce(8)


def main() -> None:
    env = Environment()
    cluster = nemo_cluster(
        env,
        n_nodes=4,
        power=NEMO_POWER,
        opoints=OPTERON_TABLE,
        network_params=NetworkParameters(bandwidth_Bps=30e6, latency_s=20e-6),
        transition_latency_s=30e-6,
        with_batteries=True,
        seed=42,
    )

    daemon = CpuspeedDaemonStrategy()
    daemon.setup(cluster, range(4))

    collector = DataCollector(cluster, node_ids=range(4))
    collector.begin()
    tracer = TraceLog()
    handle = launch(cluster, stencil, nprocs=4, tracer=tracer)
    env.run(handle.done)
    handle.check()
    daemon.teardown(cluster)
    report = collector.end()

    print(f"elapsed            : {handle.elapsed():.2f}s")
    print(f"exact energy       : {report.total_exact_j:.0f} J")
    print(f"ACPI channel       : {report.total_acpi_j:.0f} J")
    print(f"Baytech channel    : {report.total_baytech_j:.0f} J")
    err = report.cross_check_error()
    print(f"ACPI vs exact error: {err:.1%} (short run -> coarse, as on NEMO)")
    print()
    stats = analyze(tracer)
    print(f"comm-to-comp ratio : {stats.comm_to_comp_ratio:.2f}")
    for nid in range(4):
        hist = cluster[nid].cpu.stats.time_at_mhz
        mix = ", ".join(f"{mhz:.0f}MHz {s:.1f}s" for mhz, s in sorted(hist.items()))
        print(f"node {nid} time at     : {mix}")
    print()
    print(render_timeline(tracer, width=96))


if __name__ == "__main__":
    main()
