#!/usr/bin/env python
"""Beyond the paper: better prediction methods, head to head.

The paper's conclusion calls for "better prediction methods more
suitable to high-performance computing applications".  This package
ships two:

* the **predictive daemon** — CPUSPEED's observation loop, but sampled
  at sub-phase granularity with direct jumps and phase-duration
  learning; on phase-structured codes (FT) it matches the hand-written
  INTERNAL schedule *without touching application source*;
* the **β-adaptive daemon** — reads the retired-cycle counter instead
  of /proc utilization, estimates each window's frequency-sensitive
  share, and picks the slowest operating point that provably meets a
  user delay budget.  It is the literal answer to the paper's title:
  performance-*constrained* scheduling.

The script compares all three system-driven schedulers on the codes
CPUSPEED handles worst (MG, BT) and best (FT), then shows the β budget
knob trading delay for energy on CG.
"""

from repro.core import (
    BetaConfig,
    BetaDaemonStrategy,
    CpuspeedDaemonStrategy,
    NoDvsStrategy,
    PredictiveDaemonStrategy,
    run_workload,
)
from repro.workloads import get_workload


def compare(code: str, klass: str = "C") -> None:
    w = get_workload(code, klass=klass)
    base = run_workload(w, NoDvsStrategy())
    print(f"=== {w.tag} ===")
    for label, strategy in (
        ("cpuspeed (paper)", CpuspeedDaemonStrategy()),
        ("predictive", PredictiveDaemonStrategy()),
        ("beta, 5% budget", BetaDaemonStrategy(BetaConfig(delta=0.05))),
    ):
        m = run_workload(w, strategy)
        d, e = m.normalized_against(base)
        print(f"  {label:<18} delay {d:5.3f}   energy {e:5.3f}")
    print()


def beta_budget_knob(code: str = "CG") -> None:
    w = get_workload(code, klass="C")
    base = run_workload(w, NoDvsStrategy())
    print(f"=== beta budget knob on {w.tag} ===")
    for delta in (0.02, 0.05, 0.10, 0.20):
        m = run_workload(w, BetaDaemonStrategy(BetaConfig(delta=delta)))
        d, e = m.normalized_against(base)
        print(
            f"  budget {delta:4.0%} -> delay {d:5.3f} (within budget: "
            f"{'yes' if d <= 1 + delta + 0.04 else 'NO'})   energy {e:5.3f}"
        )
    print()


def main() -> None:
    for code in ("MG", "BT", "FT"):
        compare(code)
    beta_budget_knob()
    print("takeaways: the beta daemon honors its delay budget on every")
    print("code (cpuspeed pays 27-42% on MG/BT); the predictive daemon")
    print("turns FT's phase structure into INTERNAL-grade savings with")
    print("no source changes.")


if __name__ == "__main__":
    main()
