#!/usr/bin/env python
"""Heterogeneous per-rank scheduling for CG (paper Section 5.3.2).

CG's trace (Figure 12) shows *asymmetric* rank behaviour: ranks 4-7
spend a larger share of their time communicating/waiting than ranks
0-3.  Phase-based scheduling fails here (cycles are too short), but the
asymmetry itself is exploitable: run the wait-heavy ranks at a lower
static speed (Figure 13).

This script profiles CG, shows the per-rank asymmetry, applies the
paper's INTERNAL I (1200/800) and INTERNAL II (1000/800) policies, and
compares them with the plain EXTERNAL settings (Figure 14).
"""

from repro.core import (
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    InternalStrategy,
    RankPolicy,
    run_workload,
)
from repro.trace.stats import analyze
from repro.workloads import get_workload


def main() -> None:
    cg = get_workload("CG", klass="C", nprocs=8)

    # Step 1: per-rank profile (Figure 12, observation 4).
    profiled = run_workload(cg, trace=True)
    stats = analyze(profiled.trace)
    print("=== per-rank comm-to-comp ratios (Figure 12) ===")
    for prof in stats.ranks:
        group = "0-3 (compute-heavy)" if prof.rank < 4 else "4-7 (comm-heavy)"
        print(f"rank {prof.rank}: ratio {prof.comm_to_comp_ratio:.2f}   [{group}]")
    print()

    # Step 2: Figure 13's instrumentation —
    #   if (myrank .ge. 0 .and. myrank .le. 3) call set_cpuspeed(high)
    #   else                                   call set_cpuspeed(low)
    policies = {
        "internal I  (1200/800)": RankPolicy.split(4, high_mhz=1200, low_mhz=800),
        "internal II (1000/800)": RankPolicy.split(4, high_mhz=1000, low_mhz=800),
    }

    baseline = run_workload(cg)
    print("=== comparison (Figure 14) ===")
    print(f"{'schedule':<24} {'delay':>7} {'energy':>7}")
    for label, policy in policies.items():
        m = run_workload(cg, InternalStrategy(policy, label=label))
        d, e = m.normalized_against(baseline)
        print(f"{label:<24} {d:>7.3f} {e:>7.3f}")
    for mhz in (600, 800, 1000, 1200):
        m = run_workload(cg, ExternalStrategy(mhz=mhz))
        d, e = m.normalized_against(baseline)
        print(f"{'external ' + str(mhz):<24} {d:>7.3f} {e:>7.3f}")
    m = run_workload(cg, CpuspeedDaemonStrategy())
    d, e = m.normalized_against(baseline)
    print(f"{'cpuspeed (auto)':<24} {d:>7.3f} {e:>7.3f}")
    print()
    print("as in the paper: heterogeneous internal scheduling trades better")
    print("delay for less saving — no significant advantage over a plain")
    print("external setting at 800 MHz, because CG synchronizes every cycle.")


if __name__ == "__main__":
    main()
