#!/usr/bin/env python
"""INTERNAL scheduling walkthrough for FT (paper Section 5.3.1).

Reproduces the paper's method end to end:

1. **Performance profiling** — run FT with the MPE-like tracer and draw
   the observations of Figure 9 (comm-bound ~2:1, all-to-all dominant,
   iterations long enough to amortize DVS transitions, balanced load).
2. **Scheduling design** — based on those observations, wrap the
   all-to-all phase in ``set_cpuspeed(low)`` / ``set_cpuspeed(high)``
   (Figure 10).
3. **Verification** — measure the instrumented run against the no-DVS
   baseline, the best EXTERNAL settings and CPUSPEED (Figure 11).
"""

from repro.core import (
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    InternalStrategy,
    PhasePolicy,
    run_workload,
)
from repro.trace.jumpshot import render_timeline
from repro.trace.stats import analyze
from repro.workloads import get_workload


def main() -> None:
    ft = get_workload("FT", klass="C", nprocs=8)

    # ------------------------------------------------------------------
    # Step 1: profile (the -mpilog / Jumpshot step)
    # ------------------------------------------------------------------
    profiled = run_workload(ft, trace=True)
    stats = analyze(profiled.trace)
    print("=== performance profile (Figure 9 observations) ===")
    print(f"comm-to-comp ratio : {stats.comm_to_comp_ratio:.2f}  (paper: ~2:1)")
    print(f"dominant operation : {stats.dominant_ops(1)[0][0]}")
    print(
        "mean all-to-all    : "
        f"{stats.mean_event_duration('alltoall'):.2f}s "
        "(>> 20us transition cost)"
    )
    print(f"load imbalance     : {stats.imbalance:.2f}  (1.0 = balanced)")
    print()
    print(render_timeline(profiled.trace, width=96, t_end=profiled.trace.t_min + 20))
    print()

    # ------------------------------------------------------------------
    # Step 2: design — Figure 10's source instrumentation
    # ------------------------------------------------------------------
    policy = PhasePolicy({"alltoall"}, low_mhz=600, high_mhz=1400)
    print("=== scheduling design (Figure 10) ===")
    print("call set_cpuspeed(600)   ! before mpi_alltoall")
    print("call mpi_alltoall(...)")
    print("call set_cpuspeed(1400)  ! after mpi_alltoall")
    print()

    # ------------------------------------------------------------------
    # Step 3: verify against the alternatives (Figure 11)
    # ------------------------------------------------------------------
    baseline = run_workload(ft)
    rows = [("no-dvs (baseline)", baseline)]
    rows.append(("internal 1400/600", run_workload(ft, InternalStrategy(policy))))
    for mhz in (600, 800, 1000, 1200):
        rows.append((f"external {mhz}", run_workload(ft, ExternalStrategy(mhz=mhz))))
    rows.append(("cpuspeed (auto)", run_workload(ft, CpuspeedDaemonStrategy())))

    print("=== verification (Figure 11) ===")
    print(f"{'schedule':<20} {'delay':>7} {'energy':>7}")
    for label, m in rows:
        d, e = m.normalized_against(baseline)
        print(f"{label:<20} {d:>7.3f} {e:>7.3f}")
    print()
    d_int, e_int = rows[1][1].normalized_against(baseline)
    print(
        f"internal scheduling saves {1 - e_int:.0%} energy with "
        f"{d_int - 1:+.1%} delay — the paper's headline result."
    )


if __name__ == "__main__":
    main()
