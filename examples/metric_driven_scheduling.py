#!/usr/bin/env python
"""Metric-driven EXTERNAL scheduling (paper Section 4.5 / Figures 6-7).

The paper's workflow for user-driven external control:

1. run the PowerPack microbenchmarks across the frequency sweep to see
   how each workload *category* (CPU-, memory-, communication-bound)
   responds to DVS;
2. profile the target application across the sweep;
3. let a fused energy-performance metric (EDP / ED2P / ED3P) pick the
   operating point — more delay-weight means a more conservative pick;
4. set that frequency cluster-wide before launching.

Here we do all four steps for CG and show how the chosen point moves
with the metric.
"""

from repro.core import ED2P, ED3P, EDP, ExternalStrategy, run_workload
from repro.core.metrics import select_operating_point
from repro.experiments.runner import frequency_sweep
from repro.workloads import get_workload


def microbenchmark_database() -> None:
    """Step 1: category sensitivities from the PowerPack microbenchmarks."""
    print("microbenchmark DVS sensitivity (normalized delay at 600 MHz):")
    for name, kwargs in (
        ("UB-CPU", dict(seconds=5.0)),
        ("UB-MEM", dict(seconds=5.0)),
        ("UB-COMM", dict(nprocs=2, rounds=20, nbytes=1e6)),
    ):
        sweep = frequency_sweep(get_workload(name, **kwargs), [600, 1400])
        d, e = sweep.normalized[600.0]
        print(f"  {name:<8} delay x{d:.2f}   energy x{e:.2f}")
    print()


def main() -> None:
    microbenchmark_database()

    cg = get_workload("CG", klass="C", nprocs=8)
    print(f"profiling {cg.tag} across the frequency sweep...")
    sweep = frequency_sweep(cg)
    for mhz, (d, e) in sorted(sweep.normalized.items()):
        print(f"  {mhz:6.0f} MHz: delay {d:.3f}  energy {e:.3f}")
    print()

    for metric in (EDP, ED2P, ED3P):
        mhz = select_operating_point(sweep.normalized, metric)
        d, e = sweep.normalized[mhz]
        # This is what ExternalStrategy(profile=..., metric=...) automates:
        strategy = ExternalStrategy(profile=sweep.normalized, metric=metric)
        assert strategy.mhz == mhz
        print(
            f"{metric.name:>5} selects {mhz:6.0f} MHz -> "
            f"{1 - e:5.1%} energy saved at {d - 1:+5.1%} delay"
        )
    print()
    print("more delay-weight (EDP -> ED3P) = more conservative selection,")
    print("exactly the paper's lever for performance-constrained scheduling.")


if __name__ == "__main__":
    main()
