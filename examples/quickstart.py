#!/usr/bin/env python
"""Quickstart: compare all three DVS scheduling strategies on FT.

This is the paper's headline experiment (Figure 11) in ~30 lines: run
NAS FT on the simulated NEMO cluster under

* no DVS (the normalization baseline),
* the CPUSPEED daemon (system-driven, external),
* EXTERNAL static setting at 600 MHz (user-driven, external),
* INTERNAL phase scheduling: 600 MHz during the all-to-all, 1400 MHz
  otherwise (user-driven, internal — Figure 10's instrumentation).

Expected output shape: INTERNAL saves ~1/3 of the energy with no
noticeable delay, EXTERNAL@600 saves slightly more but pays ~14 %
delay, CPUSPEED sits in between.
"""

from repro.core import (
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    InternalStrategy,
    NoDvsStrategy,
    PhasePolicy,
    run_workload,
)
from repro.workloads import get_workload


def main() -> None:
    ft = get_workload("FT", klass="C", nprocs=8)

    strategies = [
        NoDvsStrategy(),
        CpuspeedDaemonStrategy(),
        ExternalStrategy(mhz=600),
        InternalStrategy(
            PhasePolicy({"alltoall"}, low_mhz=600, high_mhz=1400),
            label="FT 1400/600",
        ),
    ]

    baseline = run_workload(ft, strategies[0])
    print(f"workload: {ft.tag}")
    print(f"{'strategy':<28} {'delay':>7} {'energy':>7} {'saved':>7} {'DVS calls':>10}")
    for strategy in strategies:
        m = run_workload(ft, strategy)
        d, e = m.normalized_against(baseline)
        print(
            f"{strategy.describe():<28} {d:>7.3f} {e:>7.3f} "
            f"{1 - e:>6.1%} {m.dvs_transitions:>10}"
        )


if __name__ == "__main__":
    main()
