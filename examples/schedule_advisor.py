#!/usr/bin/env python
"""The schedule advisor — automating the paper's whole methodology.

The paper closes with: "our techniques are largely manual and more work
is needed to fully automate the process."  This package's
:class:`~repro.core.advisor.ScheduleAdvisor` is that automation: one
call profiles the application, sweeps external settings, derives
internal policies from the trace (phase-based and rank-heterogeneous),
runs the daemon, and ranks everything by the user's fused metric.

Here we advise three very different codes — FT (long comm phases), CG
(rank asymmetry) and EP (nothing to exploit) — under ED3P, plus one run
under a hard "no slowdown" constraint.
"""

from repro.core import ED3P, ScheduleAdvisor
from repro.workloads import get_workload


def main() -> None:
    advisor = ScheduleAdvisor(metric=ED3P)

    for code in ("FT", "CG", "EP"):
        workload = get_workload(code, klass="B")
        advice = advisor.advise(workload)
        print(advice.render())
        best = advice.best
        print(
            f"-> {best.label}: {best.energy_saving:.0%} energy saved "
            f"at {best.delay_increase:+.1%} delay\n"
        )

    # A performance-constrained user: never slow down at all.
    strict = ScheduleAdvisor(metric=ED3P, max_delay_increase=0.005)
    advice = strict.advise(get_workload("FT", klass="B"))
    print(advice.render())
    print(
        "\nwith the 0.5% delay cap the advisor still finds the internal"
        "\nall-to-all schedule — energy savings without performance loss,"
        "\nthe paper's stated goal."
    )


if __name__ == "__main__":
    main()
