"""repro — reproduction of *Performance-constrained Distributed DVS
Scheduling for Scientific Applications on Power-aware Clusters*
(Ge, Feng, Cameron — SC'05).

The package simulates the paper's NEMO power-aware cluster end to end —
DVS-capable Pentium M nodes, Fast Ethernet fabric, a virtual MPI layer,
NPB-like workload models, ACPI/Baytech measurement channels — and
implements the paper's contribution on top: the CPUSPEED daemon,
EXTERNAL and INTERNAL distributed DVS scheduling strategies, fused
energy-performance metrics (EDP/ED2P/ED3P) for operating-point
selection, and the Type I-IV application taxonomy.

Quickstart::

    from repro.core import run_workload, InternalStrategy, PhasePolicy
    from repro.workloads import get_workload

    ft = get_workload("FT", klass="C")
    baseline = run_workload(ft)
    internal = run_workload(
        ft, InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400))
    )
    delay, energy = internal.normalized_against(baseline)
    print(f"{1 - energy:.0%} energy saved at {delay - 1:+.1%} delay")

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
