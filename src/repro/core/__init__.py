"""The paper's primary contribution: distributed DVS scheduling.

* :mod:`repro.core.metrics` — fused energy-performance metrics
  (EDP, ED2P, ED3P) and metric-driven operating-point selection
  (paper Section 4.5).
* :mod:`repro.core.crescendo` — energy-delay crescendos and the
  Type I–IV application taxonomy (paper Section 5.2 / Figure 8).
* :mod:`repro.core.strategies` — the three scheduling strategies:
  CPUSPEED daemon, EXTERNAL static setting, INTERNAL source-level
  control (paper Section 3).
* :mod:`repro.core.framework` — the PowerPack-style experiment runner
  producing directly-measured (delay, energy) results.
"""

from repro.core.metrics import (
    EDP,
    ED2P,
    ED3P,
    FusedMetric,
    normalize_profile,
    select_operating_point,
)
from repro.core.crescendo import Crescendo, CrescendoType, classify_crescendo
from repro.core.framework import Measurement, run_workload
from repro.core.strategies import (
    BetaConfig,
    BetaDaemonStrategy,
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    InternalStrategy,
    NoDvsStrategy,
    PhasePolicy,
    PowerCapConfig,
    PowerCapStrategy,
    PredictiveConfig,
    PredictiveDaemonStrategy,
    RankPolicy,
    Strategy,
)
from repro.core.strategies.auto import (
    WorkloadProfile,
    derive_phase_policy,
    derive_rank_policy,
    profile_workload,
)
from repro.core.advisor import Advice, CandidateResult, ScheduleAdvisor

__all__ = [
    "Advice",
    "BetaConfig",
    "BetaDaemonStrategy",
    "CandidateResult",
    "Crescendo",
    "CrescendoType",
    "CpuspeedDaemonStrategy",
    "ED2P",
    "ED3P",
    "EDP",
    "ExternalStrategy",
    "FusedMetric",
    "InternalStrategy",
    "Measurement",
    "NoDvsStrategy",
    "PhasePolicy",
    "PowerCapConfig",
    "PowerCapStrategy",
    "PredictiveConfig",
    "PredictiveDaemonStrategy",
    "RankPolicy",
    "Strategy",
    "ScheduleAdvisor",
    "WorkloadProfile",
    "classify_crescendo",
    "derive_phase_policy",
    "derive_rank_policy",
    "normalize_profile",
    "profile_workload",
    "run_workload",
    "select_operating_point",
]
