"""Schedule advisor — "middleware that alleviates users from thinking
about power" (paper Sections 6-7).

Given a workload and a user-chosen fused metric, the advisor runs the
paper's full methodology automatically:

1. one profiling run (trace + phase recording),
2. the EXTERNAL frequency sweep with metric-driven selection,
3. automatically derived INTERNAL candidates (phase-based and
   rank-heterogeneous, when the profile justifies them),
4. a CPUSPEED daemon run,

then evaluates every candidate by direct measurement and ranks them by
the metric.  The result records the whole comparison, so a user can see
*why* a schedule was chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.workloads.base import Workload
from repro.core.framework import Measurement
from repro.core.metrics import ED3P, FusedMetric
from repro.core.strategies import (
    BetaConfig,
    BetaDaemonStrategy,
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    InternalStrategy,
    NoDvsStrategy,
    PredictiveDaemonStrategy,
    Strategy,
)
from repro.core.strategies.auto import (
    WorkloadProfile,
    derive_phase_policy,
    derive_rank_policy,
    profile_workload,
)

__all__ = ["CandidateResult", "Advice", "ScheduleAdvisor"]


@dataclass
class CandidateResult:
    """One evaluated scheduling candidate."""

    label: str
    strategy: Strategy
    norm_delay: float
    norm_energy: float
    metric_value: float
    measurement: Measurement

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.norm_energy

    @property
    def delay_increase(self) -> float:
        return self.norm_delay - 1.0


@dataclass
class Advice:
    """The advisor's output: a ranked comparison plus the winner."""

    workload: str
    metric: str
    candidates: list[CandidateResult]
    profile: WorkloadProfile
    max_delay_increase: Optional[float] = None

    @property
    def best(self) -> CandidateResult:
        return self.candidates[0]

    def render(self) -> str:
        lines = [
            f"Schedule advice for {self.workload} (metric: {self.metric}"
            + (
                f", delay cap {self.max_delay_increase:+.0%})"
                if self.max_delay_increase is not None
                else ")"
            )
        ]
        lines.append(
            f"{'rank':<5} {'schedule':<34} {'delay':>7} {'energy':>7} {self.metric:>8}"
        )
        for i, c in enumerate(self.candidates, start=1):
            marker = " <- recommended" if i == 1 else ""
            if (
                self.max_delay_increase is not None
                and c.delay_increase > self.max_delay_increase + 1e-9
            ):
                # Violators already rank after every compliant candidate;
                # say *why* instead of letting them sit there silently.
                marker = (
                    f" !! exceeds delay cap: measured "
                    f"{c.delay_increase:+.1%} > allowed "
                    f"{self.max_delay_increase:+.1%}"
                )
            lines.append(
                f"{i:<5} {c.label:<34} {c.norm_delay:>7.3f} "
                f"{c.norm_energy:>7.3f} {c.metric_value:>8.4f}{marker}"
            )
        return "\n".join(lines)


class ScheduleAdvisor:
    """Automated strategy selection for one workload."""

    def __init__(
        self,
        metric: FusedMetric = ED3P,
        frequencies_mhz: Optional[Sequence[float]] = None,
        include_daemon: bool = True,
        include_future_daemons: bool = False,
        include_optimal: bool = False,
        max_delay_increase: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.metric = metric
        self.frequencies_mhz = frequencies_mhz
        self.include_daemon = include_daemon
        #: also evaluate the beyond-the-paper schedulers (predictive and
        #: beta-adaptive daemons).
        self.include_future_daemons = include_future_daemons
        #: also run the offline gear-plan optimizer
        #: (:func:`repro.optimize.optimize_gear_plan`) and enter its
        #: winning plan as a candidate.  The optimizer's delta is the
        #: advisor's delay cap (default 0.05 when no cap is set).
        self.include_optimal = include_optimal
        #: optional hard performance constraint: candidates above this
        #: normalized-delay increase are ranked after all compliant ones.
        self.max_delay_increase = max_delay_increase
        self.seed = seed

    # ------------------------------------------------------------------
    def advise(self, workload: Workload) -> Advice:
        # Imported here: repro.experiments depends on repro.core, so a
        # module-level import would be circular.
        from repro.experiments.runner import frequency_sweep

        profile = profile_workload(workload, seed=self.seed)
        baseline = profile.measurement

        candidates: list[tuple[str, Strategy]] = [("no-dvs", NoDvsStrategy())]

        # EXTERNAL: metric-selected static frequency from a sweep.
        sweep = frequency_sweep(workload, self.frequencies_mhz, seed=self.seed)
        external = ExternalStrategy(profile=sweep.normalized, metric=self.metric)
        candidates.append((external.describe(), external))

        # INTERNAL: automatically derived policies, when justified.
        phase_policy = derive_phase_policy(profile)
        if phase_policy is not None:
            candidates.append(
                (
                    f"auto-internal phases {sorted(phase_policy.low_phases)}",
                    InternalStrategy(phase_policy, label="auto-phase"),
                )
            )
        rank_policy = derive_rank_policy(profile)
        if rank_policy is not None:
            candidates.append(
                ("auto-internal per-rank speeds",
                 InternalStrategy(rank_policy, label="auto-rank"))
            )

        if self.include_daemon:
            candidates.append(("cpuspeed daemon", CpuspeedDaemonStrategy()))
        if self.include_future_daemons:
            candidates.append(("predictive daemon", PredictiveDaemonStrategy()))
            delta = self.max_delay_increase if self.max_delay_increase else 0.05
            candidates.append(
                (f"beta daemon (delta={delta:g})",
                 BetaDaemonStrategy(BetaConfig(delta=delta)))
            )
        if self.include_optimal and workload.phases:
            from repro.optimize import optimize_gear_plan

            delta = self.max_delay_increase if self.max_delay_increase else 0.05
            plan = optimize_gear_plan(workload, delta=delta, seed=self.seed)
            candidates.append(
                (f"computed plan (delta={delta:g})", plan.strategy)
            )

        # Candidate evaluation is one grid through the current runner:
        # map_sweep batches the static candidates through the
        # straightline tiers (bit-identical to per-point run_workload)
        # and memoizes each point, so concurrent advisors — the
        # schedule-advisor service — share fills.
        from repro.experiments.parallel import RunTask, current_runner

        measured: dict[int, Measurement] = {}
        tasks: list[tuple[int, RunTask]] = []
        for i, (_label, strategy) in enumerate(candidates):
            if isinstance(strategy, ExternalStrategy) and strategy.mhz in sweep.raw:
                measured[i] = sweep.raw[strategy.mhz]  # reuse the sweep's run
            else:
                tasks.append((i, RunTask(workload, strategy, self.seed)))
        for (i, _task), m in zip(
            tasks, current_runner().map_sweep([t for _, t in tasks])
        ):
            measured[i] = m

        results = []
        for i, (label, strategy) in enumerate(candidates):
            m = measured[i]
            d, e = m.normalized_against(baseline)
            results.append(
                CandidateResult(label, strategy, d, e, self.metric(d, e), m)
            )

        results.sort(key=self._rank_key)
        return Advice(
            workload=workload.tag,
            metric=self.metric.name,
            candidates=results,
            profile=profile,
            max_delay_increase=self.max_delay_increase,
        )

    def _rank_key(self, c: CandidateResult):
        violates = (
            self.max_delay_increase is not None
            and c.delay_increase > self.max_delay_increase + 1e-9
        )
        return (violates, c.metric_value, c.norm_delay)
