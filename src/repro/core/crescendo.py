"""Energy-delay crescendos and the Type I–IV taxonomy (paper Figure 8).

A *crescendo* is the frequency sweep of normalized delay and energy.
The paper groups the NPB codes into four types:

* **Type I** (EP): near-zero energy benefit, linear delay increase.
* **Type II** (BT, MG, LU): energy falls about as fast as delay rises.
* **Type III** (FT, CG, SP): energy falls faster than delay rises.
* **Type IV** (IS): near-zero delay increase, linear energy saving.

Types III and IV save energy under external DVS; Types I and II do not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Tuple

__all__ = ["CrescendoType", "Crescendo", "classify_crescendo"]


class CrescendoType(enum.Enum):
    """The paper's four energy-delay crescendo categories."""

    TYPE_I = "I"
    TYPE_II = "II"
    TYPE_III = "III"
    TYPE_IV = "IV"

    @property
    def saves_energy(self) -> bool:
        """Whether external DVS is worthwhile for this category."""
        return self in (CrescendoType.TYPE_III, CrescendoType.TYPE_IV)


@dataclass(frozen=True)
class Crescendo:
    """A normalized frequency sweep for one code.

    ``points`` maps frequency (MHz) to normalized ``(delay, energy)``;
    the fastest frequency is the (1.0, 1.0) baseline.
    """

    code: str
    points: Mapping[float, Tuple[float, float]]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("a crescendo needs at least two operating points")

    @property
    def frequencies(self) -> tuple[float, ...]:
        return tuple(sorted(self.points))

    @property
    def max_delay_increase(self) -> float:
        """Delay increase at the slowest point (``D(f_min) - 1``)."""
        return self.points[self.frequencies[0]][0] - 1.0

    @property
    def max_energy_saving(self) -> float:
        """Energy saving at the slowest point (``1 - E(f_min)``)."""
        return 1.0 - self.points[self.frequencies[0]][1]

    @property
    def best_energy_saving(self) -> float:
        """Largest saving anywhere on the sweep."""
        return max(1.0 - e for _d, e in self.points.values())

    def classify(
        self,
        flat_threshold: float = 0.06,
        type3_ratio: float = 0.75,
    ) -> CrescendoType:
        """Classify per the paper's taxonomy.

        ``flat_threshold`` bounds "near zero" energy benefit / delay
        increase; ``type3_ratio`` is the delay/energy slope ratio below
        which energy clearly falls faster than delay rises (Type III).
        """
        d_up = self.max_delay_increase
        e_down = self.max_energy_saving
        if e_down <= flat_threshold:
            return CrescendoType.TYPE_I
        if d_up <= flat_threshold:
            return CrescendoType.TYPE_IV
        if d_up <= type3_ratio * e_down:
            return CrescendoType.TYPE_III
        return CrescendoType.TYPE_II


def classify_crescendo(
    code: str, points: Mapping[float, Tuple[float, float]]
) -> CrescendoType:
    """Convenience wrapper: classify a normalized sweep directly."""
    return Crescendo(code, points).classify()
