"""Experiment runner: application × strategy → measured (delay, energy).

One call builds a fresh NEMO-like cluster, installs the strategy
(static settings / daemons / source hooks), launches the workload's
rank program, and measures delay and energy — exactly, plus optionally
through the paper's ACPI and Baytech channels and the MPE-like tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.sim.engine import Environment
from repro.faults.injector import FaultInjector, resolve_injector
from repro.faults.spec import FaultSpec
from repro.hardware.cluster import Cluster, nemo_cluster
from repro.hardware.network import NetworkParameters
from repro.hardware.opoints import OperatingPointTable, PENTIUM_M_TABLE
from repro.hardware.power import NEMO_POWER, NodePowerParameters
from repro.mpi.launcher import launch
from repro.powerpack.collector import DataCollector, EnergyReport
from repro.trace.events import TraceLog
from repro.workloads.base import CompositeHooks, NO_HOOKS, PhaseHooks, Workload
from repro.core.strategies.base import NoDvsStrategy, Strategy

__all__ = ["Measurement", "run_workload", "straightline_ineligibility"]


@dataclass
class Measurement:
    """Directly measured outcome of one run."""

    workload: str
    strategy: str
    elapsed_s: float
    energy_j: float
    per_node_energy_j: dict[int, float]
    dvs_transitions: int
    time_at_mhz: dict[float, float]
    acpi_energy_j: Optional[float] = None
    baytech_energy_j: Optional[float] = None
    trace: Optional[TraceLog] = None
    report: Optional[EnergyReport] = None
    extras: dict = field(default_factory=dict)

    def normalized_against(self, baseline: "Measurement") -> tuple[float, float]:
        """(normalized delay, normalized energy) vs a no-DVS baseline."""
        if baseline.elapsed_s <= 0 or baseline.energy_j <= 0:
            raise ValueError("invalid baseline measurement")
        return (
            self.elapsed_s / baseline.elapsed_s,
            self.energy_j / baseline.energy_j,
        )

    def __str__(self) -> str:
        return (
            f"{self.workload} under {self.strategy}: "
            f"{self.elapsed_s:.2f}s, {self.energy_j:.0f}J, "
            f"{self.dvs_transitions} transitions"
        )


def straightline_ineligibility(
    workload: Workload,
    strategy: Strategy,
    *,
    cluster: Optional[Cluster] = None,
    trace: bool = False,
    measurement_channels: bool = False,
    extra_hooks: Optional[PhaseHooks] = None,
    injector: Optional[FaultInjector] = None,
) -> Optional[str]:
    """Why this run cannot use the straightline tier (``None`` = it can).

    The returned string is the fallback reason ``run_workload`` raises
    for strict ``engine="straightline"`` requests; callers wiring their
    own dispatch (the sweep batcher) use the ``None``/non-``None``
    distinction.  Faults are checked before the gear plan so a fault
    environment reports as such even when the strategy itself lowers.
    """
    if cluster is not None:
        return "caller-supplied cluster"
    if trace:
        return "tracing requested"
    if measurement_channels:
        return "measurement channels requested"
    if extra_hooks is not None:
        return "extra phase hooks installed"
    if injector is not None:
        return "fault injection active"
    if strategy.gear_plan(workload) is None and strategy.controller() is None:
        return "strategy has no static gear plan (dynamic DVS)"
    return None


def run_workload(
    workload: Workload,
    strategy: Optional[Strategy] = None,
    seed: int = 0,
    trace: bool = False,
    measurement_channels: bool = False,
    network_params: Optional[NetworkParameters] = None,
    power: NodePowerParameters = NEMO_POWER,
    opoints: OperatingPointTable = PENTIUM_M_TABLE,
    transition_latency_s: float = 20e-6,
    cluster: Optional[Cluster] = None,
    extra_hooks: Optional[PhaseHooks] = None,
    faults: Union[FaultSpec, FaultInjector, None] = None,
    engine: str = "auto",
) -> Measurement:
    """Run ``workload`` under ``strategy`` on a fresh cluster.

    Parameters
    ----------
    engine:
        Simulation tier.  ``"auto"`` (default) uses the straightline
        direct accumulator (:mod:`repro.sim.straightline`) when the run
        qualifies — a strategy with a static gear plan
        (:meth:`Strategy.gear_plan` non-``None``) *or* a stateful
        sampled controller (:meth:`Strategy.controller` non-``None``;
        the CPUSPEED, predictive, β and power-cap daemons), no
        faults/trace/channels, default cluster and hooks — and the
        event engine otherwise; the tiers produce bit-for-bit
        identical measurements on the supported subset.  A zero-rate
        :class:`~repro.faults.spec.FaultSpec` (``is_noop()``) does not
        count as faults here: it provably injects nothing.
        ``"event"`` forces the event engine; ``"straightline"`` forces
        the fast tier and raises when the run is ineligible.
    faults:
        Optional fault environment (a
        :class:`~repro.faults.spec.FaultSpec`, or a ready injector to
        inspect afterwards).  Faults that actually fired are reported
        in ``Measurement.extras["faults"]``; a zero-rate spec leaves
        the result bit-for-bit identical to ``faults=None``.
    measurement_channels:
        Also measure through the simulated ACPI batteries and Baytech
        strip (slower; adds sampling processes).  The exact meters are
        always read.
    trace:
        Attach an MPE-like :class:`TraceLog` (returned on the
        measurement).
    cluster:
        Reuse a prepared cluster instead of building one (advanced; the
        cluster must be fresh — meters accumulate from construction).
    extra_hooks:
        Additional :class:`PhaseHooks` composed with the strategy's own
        (e.g. a :class:`~repro.trace.phasestats.PhaseRecorder` profiling
        the run the strategy is scheduling).
    """
    strategy = strategy or NoDvsStrategy()
    injector = resolve_injector(faults)
    # A zero-rate spec provably injects nothing (a run under it is
    # bit-for-bit a clean run — tests/faults/test_determinism.py), so
    # it doesn't pin the run to the event engine; paths that do build
    # a cluster still carry the (inert) injector along.
    inert_faults = isinstance(faults, FaultSpec) and faults.is_noop()

    if engine not in ("auto", "event", "straightline"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine != "event":
        reason = straightline_ineligibility(
            workload,
            strategy,
            cluster=cluster,
            trace=trace,
            measurement_channels=measurement_channels,
            extra_hooks=extra_hooks,
            injector=None if inert_faults else injector,
        )
        if reason is None:
            # Imported lazily: the straightline tier sits on top of the
            # workload/strategy layers and must not load with repro.sim.
            from repro.sim.straightline import (
                StraightlineUnsupported,
                run_straightline,
                try_run_straightline,
            )

            if engine == "straightline":
                return run_straightline(
                    workload,
                    strategy,
                    seed=seed,
                    network_params=network_params,
                    power=power,
                    opoints=opoints,
                    transition_latency_s=transition_latency_s,
                )
            fast = try_run_straightline(
                workload,
                strategy,
                seed=seed,
                network_params=network_params,
                power=power,
                opoints=opoints,
                transition_latency_s=transition_latency_s,
            )
            if fast is not None:
                return fast
        elif engine == "straightline":
            from repro.sim.straightline import StraightlineUnsupported

            raise StraightlineUnsupported(
                f"run configuration requires the event engine: {reason}"
            )

    if cluster is None:
        env = Environment()
        cluster = nemo_cluster(
            env,
            n_nodes=workload.nprocs,
            power=power,
            opoints=opoints,
            network_params=network_params,
            transition_latency_s=transition_latency_s,
            with_batteries=measurement_channels,
            seed=seed,
            injector=injector,
        )
    else:
        env = cluster.env
        if len(cluster) < workload.nprocs:
            raise ValueError(
                f"cluster has {len(cluster)} nodes; workload needs {workload.nprocs}"
            )
    node_ids = list(range(workload.nprocs))

    hooks = strategy.hooks(workload)
    if extra_hooks is not None:
        hooks = CompositeHooks(hooks, extra_hooks) if hooks is not NO_HOOKS else extra_hooks
    tracer = TraceLog() if trace else None
    collector = (
        DataCollector(cluster, node_ids, injector=injector)
        if measurement_channels
        else None
    )

    strategy.setup(cluster, node_ids)
    begin_energy = {nid: cluster[nid].energy_j() for nid in node_ids}
    begin_transitions = sum(cluster[nid].cpu.stats.transitions for nid in node_ids)
    if collector is not None:
        collector.begin()

    handle = launch(
        cluster,
        workload.make_program(hooks),
        nprocs=workload.nprocs,
        node_ids=node_ids,
        cost=workload.cost_model(),
        tracer=tracer,
        injector=injector,
    )
    env.run(handle.done)
    handle.check()
    strategy.teardown(cluster)

    report = collector.end() if collector is not None else None
    per_node = {
        nid: cluster[nid].energy_j() - begin_energy[nid] for nid in node_ids
    }
    time_at: dict[float, float] = {}
    transitions = -begin_transitions
    for nid in node_ids:
        cpu = cluster[nid].cpu
        cpu.busy_seconds()  # flush accounting to `now`
        transitions += cpu.stats.transitions
        for mhz, secs in cpu.stats.time_at_mhz.items():
            time_at[mhz] = time_at.get(mhz, 0.0) + secs

    # Degradation report: attached only when a fault actually fired, so
    # clean and zero-rate runs stay equal (extras == {}) to pre-fault
    # baselines.
    extras: dict = {}
    if injector is not None and injector.log.any:
        extras["faults"] = injector.log.as_dict()

    return Measurement(
        workload=workload.tag,
        strategy=strategy.describe(),
        elapsed_s=handle.elapsed(),
        energy_j=sum(per_node.values()),
        per_node_energy_j=per_node,
        dvs_transitions=transitions,
        time_at_mhz=time_at,
        acpi_energy_j=report.total_acpi_j if report is not None else None,
        baytech_energy_j=report.total_baytech_j if report is not None else None,
        trace=tracer,
        report=report,
        extras=extras,
    )
