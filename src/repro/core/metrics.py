"""Energy-performance efficiency metrics (paper Section 4.5).

When the operating point changes, both energy and delay move; a fused
metric ranks the trade-off.  The paper uses ED2P (``E·D²``) and ED3P
(``E·D³``) — the higher the delay exponent, the more the metric
penalises performance loss, so ED3P selects more conservative
frequencies than ED2P (compare Figures 6 and 7).

All metrics operate on *normalized* delay and energy: values divided by
the measurement at the highest frequency, as the paper does throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

__all__ = [
    "FusedMetric",
    "EDP",
    "ED2P",
    "ED3P",
    "normalize_profile",
    "select_operating_point",
    "pareto_front",
]


@dataclass(frozen=True)
class FusedMetric:
    """``E · D^weight`` — energy-delay product family.

    ``weight`` = 1 is EDP (workstation-class), 2 is ED2P (server-class,
    Brooks et al.), 3 is ED3P (the paper's performance-constrained
    choice for HPC).
    """

    delay_weight: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.delay_weight < 0:
            raise ValueError("delay weight must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", f"ED{self.delay_weight:g}P")

    def __call__(self, delay: float, energy: float) -> float:
        """Metric value for normalized (delay, energy)."""
        if delay <= 0 or energy < 0:
            raise ValueError(f"invalid normalized point ({delay}, {energy})")
        return energy * delay**self.delay_weight

    def __str__(self) -> str:
        return self.name


#: Energy-delay product (E·D).
EDP = FusedMetric(1.0, "EDP")
#: Energy-delay-squared product (E·D²).
ED2P = FusedMetric(2.0, "ED2P")
#: Energy-delay-cubed product (E·D³) — the paper's headline metric.
ED3P = FusedMetric(3.0, "ED3P")


def normalize_profile(
    profile: Mapping[float, Tuple[float, float]],
    reference_mhz: float | None = None,
) -> dict[float, tuple[float, float]]:
    """Normalize a raw ``{mhz: (delay_s, energy_j)}`` profile.

    Division is by the value at ``reference_mhz`` (default: the highest
    frequency present — the paper's no-DVS baseline).
    """
    if not profile:
        raise ValueError("empty profile")
    ref = reference_mhz if reference_mhz is not None else max(profile)
    if ref not in profile:
        raise KeyError(f"reference frequency {ref} MHz not in profile")
    ref_delay, ref_energy = profile[ref]
    if ref_delay <= 0 or ref_energy <= 0:
        raise ValueError("reference delay/energy must be positive")
    return {
        mhz: (delay / ref_delay, energy / ref_energy)
        for mhz, (delay, energy) in profile.items()
    }


def pareto_front(
    normalized: Mapping[float, Tuple[float, float]],
) -> list[float]:
    """Frequencies on the energy-delay Pareto front, sorted by delay.

    A point is dominated when another point has both lower-or-equal
    delay and lower-or-equal energy (and is strictly better in one).
    Any fused-metric optimum lies on this front, so it is the complete
    menu of defensible operating points for a code.
    """
    if not normalized:
        raise ValueError("empty profile")
    points = sorted(normalized.items(), key=lambda kv: (kv[1][0], kv[1][1]))
    front: list[float] = []
    best_energy = float("inf")
    for mhz, (delay, energy) in points:
        if energy < best_energy - 1e-12:
            front.append(mhz)
            best_energy = energy
    return front


def select_operating_point(
    normalized: Mapping[float, Tuple[float, float]],
    metric: FusedMetric = ED3P,
) -> float:
    """Choose the frequency minimising ``metric`` (paper Section 5.2).

    Ties (within numerical noise) break toward the *best-performing*
    point, exactly as the paper specifies: "If two points have the same
    ED³ value, choose the point with best performance."
    """
    if not normalized:
        raise ValueError("empty profile")
    best_mhz = None
    best_value = float("inf")
    best_delay = float("inf")
    for mhz in sorted(normalized):
        delay, energy = normalized[mhz]
        value = metric(delay, energy)
        tie = abs(value - best_value) <= 1e-12 * max(1.0, abs(best_value))
        if value < best_value - 1e-12 or (tie and delay < best_delay):
            best_mhz, best_value, best_delay = mhz, value, delay
    assert best_mhz is not None
    return best_mhz
