"""The three distributed DVS scheduling strategies (paper Section 3)."""

from repro.core.strategies.base import (
    GearPlan,
    NoDvsStrategy,
    SampledController,
    Strategy,
)
from repro.core.strategies.cpuspeed import CpuspeedConfig, CpuspeedDaemonStrategy
from repro.core.strategies.beta import BetaConfig, BetaDaemonStrategy
from repro.core.strategies.external import ExternalStrategy
from repro.core.strategies.powercap import PowerCapConfig, PowerCapStrategy
from repro.core.strategies.predictive import (
    PredictiveConfig,
    PredictiveDaemonStrategy,
)
from repro.core.strategies.internal import (
    InternalStrategy,
    PhasePolicy,
    RankPolicy,
)
# NOTE: repro.core.strategies.auto is exported via repro.core (it
# depends on the framework, which depends on this package — importing
# it here would be circular).

__all__ = [
    "BetaConfig",
    "BetaDaemonStrategy",
    "CpuspeedConfig",
    "CpuspeedDaemonStrategy",
    "ExternalStrategy",
    "GearPlan",
    "InternalStrategy",
    "NoDvsStrategy",
    "PhasePolicy",
    "PowerCapConfig",
    "PowerCapStrategy",
    "PredictiveConfig",
    "PredictiveDaemonStrategy",
    "RankPolicy",
    "SampledController",
    "Strategy",
]
