"""Automated INTERNAL scheduling (the paper's Section 7 future work).

The paper designs its INTERNAL schedules by hand: read the Jumpshot
trace, find long communication phases (FT) or rank asymmetry (CG),
insert ``set_cpuspeed`` calls.  This module automates exactly that
workflow from one profiling run:

* :func:`derive_phase_policy` — find phases that are (a) dominated by
  communication, (b) long enough to amortize the DVS transition cost,
  and (c) a meaningful share of the runtime; schedule them at a low
  operating point (the FT recipe, automated).
* :func:`derive_rank_policy` — measure per-rank slack relative to the
  busiest rank and assign each rank the slowest operating point that
  still hides its extra compute time inside the slack (the CG recipe,
  automated; in spirit of Chen et al.'s critical-path scaling).
* :func:`profile_workload` — the shared profiling run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.opoints import OperatingPointTable, PENTIUM_M_TABLE
from repro.trace.phasestats import PhaseProfile, PhaseRecorder, profile_phases
from repro.trace.stats import analyze
from repro.workloads.base import Workload
from repro.core.framework import Measurement, run_workload
from repro.core.strategies.base import NoDvsStrategy
from repro.core.strategies.internal import PhasePolicy, RankPolicy

__all__ = [
    "WorkloadProfile",
    "profile_workload",
    "derive_phase_policy",
    "derive_rank_policy",
]


@dataclass
class WorkloadProfile:
    """Everything one profiling run yields."""

    measurement: Measurement
    phases: dict[str, PhaseProfile]
    #: busy seconds per rank (compute share of the run)
    rank_compute_s: dict[int, float]
    #: explicitly blocked/idle seconds per rank
    rank_wait_s: dict[int, float]
    #: time inside MPI (active + blocked) per rank
    rank_comm_s: dict[int, float]

    def rank_slack_s(self, rank: int) -> float:
        """Estimated absorbable slack of one rank.

        Explicit wait/idle time plus the rank's *excess* MPI time over
        the least-communicating rank — the blocked share hiding inside
        blocking sends/receives (Figure 12's asymmetry signal).
        """
        min_comm = min(self.rank_comm_s.values(), default=0.0)
        return self.rank_wait_s.get(rank, 0.0) + (
            self.rank_comm_s.get(rank, 0.0) - min_comm
        )


def profile_workload(workload: Workload, seed: int = 0) -> WorkloadProfile:
    """Run once at full speed with tracing + phase recording."""
    recorder = PhaseRecorder()
    m = run_workload(
        workload, NoDvsStrategy(), seed=seed, trace=True, extra_hooks=recorder
    )
    phases = profile_phases(recorder, m.trace)
    stats = analyze(m.trace)
    compute = {p.rank: p.compute_s for p in stats.ranks}
    wait = {p.rank: p.wait_s + p.idle_s for p in stats.ranks}
    comm = {p.rank: p.comm_s + p.wait_s for p in stats.ranks}
    return WorkloadProfile(m, phases, compute, wait, comm)


def derive_phase_policy(
    profile: WorkloadProfile,
    opoints: OperatingPointTable = PENTIUM_M_TABLE,
    transition_latency_s: float = 20e-6,
    min_comm_fraction: float = 0.6,
    min_amortization: float = 1000.0,
    min_runtime_share: float = 0.05,
) -> Optional[PhasePolicy]:
    """Automate the FT recipe (Figure 10).

    Returns ``None`` when no phase qualifies — the honest outcome for
    codes like EP or LU, where the paper also finds nothing to scale.
    """
    low_phases = set()
    for name, phase in profile.phases.items():
        long_enough = phase.mean_seconds >= min_amortization * transition_latency_s
        if phase.is_communication_phase and long_enough and (
            phase.share_of_runtime >= min_runtime_share
        ):
            if phase.comm_fraction >= min_comm_fraction:
                low_phases.add(name)
    if not low_phases:
        return None
    return PhasePolicy(
        low_phases,
        low_mhz=opoints.slowest.frequency_mhz,
        high_mhz=opoints.fastest.frequency_mhz,
        min_phase_seconds=min_amortization * transition_latency_s,
    )


def derive_rank_policy(
    profile: WorkloadProfile,
    opoints: OperatingPointTable = PENTIUM_M_TABLE,
    min_slack_fraction: float = 0.05,
    aggressiveness: float = 3.0,
) -> Optional[RankPolicy]:
    """Automate the CG recipe (Figure 13) / critical-path scaling.

    For each rank, :meth:`WorkloadProfile.rank_slack_s` estimates how
    much it waits on others.  Slowing a rank from ``f_max`` to ``f``
    stretches its compute by ``compute * (f_max/f - 1)``; the policy
    picks the slowest operating point whose stretch stays within
    ``aggressiveness * slack`` (1.0 = strictly hide inside the slack;
    the default trades a little delay for more energy, as the paper's
    hand-designed CG schedules do).  Ranks without meaningful slack
    stay at full speed.  Returns ``None`` when no rank has slack to
    exploit (balanced codes).
    """
    if aggressiveness <= 0:
        raise ValueError("aggressiveness must be positive")
    f_max = opoints.fastest.frequency_hz
    speeds: dict[int, float] = {}
    any_scaled = False
    for rank, compute in profile.rank_compute_s.items():
        slack = profile.rank_slack_s(rank)
        total = compute + slack
        if total <= 0 or compute <= 0 or slack / total < min_slack_fraction:
            speeds[rank] = opoints.fastest.frequency_mhz
            continue
        budget = aggressiveness * slack
        chosen = opoints.fastest
        for point in opoints:  # slow -> fast; take the first that fits
            stretch = compute * (f_max / point.frequency_hz - 1.0)
            if stretch <= budget:
                chosen = point
                break
        speeds[rank] = chosen.frequency_mhz
        if chosen is not opoints.fastest:
            any_scaled = True
    if not any_scaled:
        return None
    return RankPolicy(speeds)
