"""Strategy interface shared by the three scheduling approaches."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload

__all__ = ["GearPlan", "SampledController", "Strategy", "NoDvsStrategy"]


@dataclass(frozen=True)
class GearPlan:
    """A strategy's DVS behaviour, lowered to static data.

    A gear plan states — as a deterministic, data-independent function
    of (rank, phase) — every operating point the strategy will ever set:
    the per-rank speed applied during :meth:`Strategy.setup` and the
    exact ``set_cpuspeed`` calls its hooks would issue at each hook
    site.  Strategies that can produce one (no-DVS, EXTERNAL, both
    INTERNAL policy shapes) qualify for the piecewise-static
    straightline tier (:mod:`repro.sim.straightline`); strategies whose
    speed choices depend on simulation state (daemons, predictive
    schedulers) cannot, and return ``None`` from
    :meth:`Strategy.gear_plan`.

    Attributes
    ----------
    start_mhz:
        Homogeneous frequency set at setup time (``None`` = leave every
        node at the cluster default, the fastest point).
    start_mhz_per_rank:
        Heterogeneous setup frequencies, one per participating rank
        (mutually exclusive with ``start_mhz``).
    init_calls:
        Per-rank tuple of ``set_cpuspeed`` MHz arguments issued from the
        ``on_init`` hook (empty = the strategy has no init hook call).
    begin_calls / end_calls:
        ``(phase, (mhz, ...))`` pairs: the ``set_cpuspeed`` calls issued
        when the named phase begins / ends on any rank.
    """

    start_mhz: Optional[float] = None
    start_mhz_per_rank: Optional[tuple[float, ...]] = None
    init_calls: tuple[tuple[float, ...], ...] = ()
    begin_calls: tuple[tuple[str, tuple[float, ...]], ...] = ()
    end_calls: tuple[tuple[str, tuple[float, ...]], ...] = ()

    @property
    def static(self) -> bool:
        """Whether the plan performs no in-run DVS calls at all."""
        return not (
            any(self.init_calls)
            or any(calls for _, calls in self.begin_calls)
            or any(calls for _, calls in self.end_calls)
        )

    def calls_at(self, kind: str, phase: str, rank: int) -> tuple[float, ...]:
        """The ``set_cpuspeed`` MHz calls at one hook site."""
        if kind == "init":
            return self.init_calls[rank] if self.init_calls else ()
        table = self.begin_calls if kind == "begin" else self.end_calls
        for name, calls in table:
            if name == phase:
                return calls
        return ()


@dataclass(frozen=True)
class SampledController:
    """A daemon strategy lowered to a poll-driven transition function.

    Daemons (CPUSPEED, the predictive scheduler) cannot publish a
    :class:`GearPlan` — their speed choices depend on observed
    utilization — but their *control structure* is still static: one
    autonomous loop per node that wakes every ``interval_s`` seconds,
    reads the node's cumulative busy time, and issues zero or more
    ``set_speed_index`` calls.  That shape is what the sampled-control
    straightline tier (:mod:`repro.sim.straightline`) executes without
    an event heap: between polls the run is gear-static, so segments
    accumulate directly; at each tick the per-node controller decides
    the transitions.

    ``make()`` builds one fresh per-node controller (the daemon body's
    local state).  A controller exposes::

        step(now, busy_seconds, index, max_index) -> tuple[int, ...]

    returning, in call order, the exact operating-point indices the
    daemon would pass to ``CpuCore.set_speed_index`` at this poll
    (an index equal to the current one is the engine's no-op).  The
    arithmetic inside ``step`` must replicate the daemon generator's
    float expressions operation-for-operation — the tier's bit-exact
    equivalence contract extends through it.
    """

    interval_s: float
    make: Callable[[], object]


class Strategy(abc.ABC):
    """A distributed DVS scheduling strategy.

    The framework drives a strategy through three touch points:

    * :meth:`hooks` — instrumentation handed to the workload program
      (only the INTERNAL strategy uses this; it is how ``set_cpuspeed``
      calls are "inserted into the source", Figure 3).
    * :meth:`setup` — before the job starts: set static frequencies
      (EXTERNAL) or start per-node daemon processes (CPUSPEED).
    * :meth:`teardown` — after the job: stop daemons.
    """

    #: short display name, e.g. ``"cpuspeed"``.
    name: str = "?"

    def hooks(self, workload: Workload) -> PhaseHooks:
        """Source-level instrumentation (default: none)."""
        return NO_HOOKS

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        """Lower this strategy's DVS behaviour to a :class:`GearPlan`.

        ``workload`` is required to lower hook calls (the plan names the
        workload's phases); plans with no hook calls (no-DVS, EXTERNAL)
        ignore it.  Returns ``None`` when the strategy's speed choices
        depend on simulation state — daemons, predictive schedulers —
        which keeps such runs on the event engine.  The default is
        conservative: ``None``.
        """
        return None

    def controller(self) -> Optional[SampledController]:
        """Lower this strategy's daemon to a :class:`SampledController`.

        Returns ``None`` (the conservative default) when the strategy
        is not an interval-polling per-node daemon — or when its loop
        does something the sampled-control tier cannot replay (waits on
        events other than the poll timer, reads state beyond the node's
        busy counter and gear).  Strategies with a :meth:`gear_plan`
        don't need one; daemons that provide one become eligible for
        the straightline tier's sampled-control executor.
        """
        return None

    def is_static(self) -> bool:
        """Whether this strategy leaves operating points fixed after setup.

        Delegates to :meth:`gear_plan`: a strategy is static exactly
        when it has a workload-independent gear plan with no in-run
        ``set_cpuspeed`` calls — so this predicate can never diverge
        from the plan the straightline tier executes.
        """
        plan = self.gear_plan(None)
        return plan is not None and plan.static

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        """Prepare the participating nodes before launch."""

    def teardown(self, cluster: Cluster) -> None:
        """Undo :meth:`setup` after the job completes."""

    def describe(self) -> str:
        """One-line human description for reports."""
        return self.name

    def __repr__(self) -> str:
        return f"<Strategy {self.describe()}>"


class NoDvsStrategy(Strategy):
    """Baseline: every node pinned at the highest operating point.

    This is the paper's normalization reference ("energy and delay
    values without any DVS activity").
    """

    name = "no-dvs"

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        return GearPlan()

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            cluster[nid].cpu.set_speed_index(cluster.opoints.max_index)
