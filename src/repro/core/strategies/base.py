"""Strategy interface shared by the three scheduling approaches."""

from __future__ import annotations

import abc
from typing import Sequence

from repro.hardware.cluster import Cluster
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload

__all__ = ["Strategy", "NoDvsStrategy"]


class Strategy(abc.ABC):
    """A distributed DVS scheduling strategy.

    The framework drives a strategy through three touch points:

    * :meth:`hooks` — instrumentation handed to the workload program
      (only the INTERNAL strategy uses this; it is how ``set_cpuspeed``
      calls are "inserted into the source", Figure 3).
    * :meth:`setup` — before the job starts: set static frequencies
      (EXTERNAL) or start per-node daemon processes (CPUSPEED).
    * :meth:`teardown` — after the job: stop daemons.
    """

    #: short display name, e.g. ``"cpuspeed"``.
    name: str = "?"

    def hooks(self, workload: Workload) -> PhaseHooks:
        """Source-level instrumentation (default: none)."""
        return NO_HOOKS

    def is_static(self) -> bool:
        """Whether this strategy leaves operating points fixed after setup.

        Static strategies (the no-DVS baseline, EXTERNAL) qualify for
        the straightline fast tier (:mod:`repro.sim.straightline`);
        anything that changes speed mid-run — daemons, source hooks,
        predictive schedulers — must run on the event engine.  The
        default is conservative: ``False``.
        """
        return False

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        """Prepare the participating nodes before launch."""

    def teardown(self, cluster: Cluster) -> None:
        """Undo :meth:`setup` after the job completes."""

    def describe(self) -> str:
        """One-line human description for reports."""
        return self.name

    def __repr__(self) -> str:
        return f"<Strategy {self.describe()}>"


class NoDvsStrategy(Strategy):
    """Baseline: every node pinned at the highest operating point.

    This is the paper's normalization reference ("energy and delay
    values without any DVS activity").
    """

    name = "no-dvs"

    def is_static(self) -> bool:
        return True

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            cluster[nid].cpu.set_speed_index(cluster.opoints.max_index)
