"""Strategy interface shared by the three scheduling approaches."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload

__all__ = ["GearPlan", "SampledController", "Strategy", "NoDvsStrategy"]


@dataclass(frozen=True)
class GearPlan:
    """A strategy's DVS behaviour, lowered to static data.

    A gear plan states — as a deterministic, data-independent function
    of (rank, phase) — every operating point the strategy will ever set:
    the per-rank speed applied during :meth:`Strategy.setup` and the
    exact ``set_cpuspeed`` calls its hooks would issue at each hook
    site.  Strategies that can produce one (no-DVS, EXTERNAL, both
    INTERNAL policy shapes) qualify for the piecewise-static
    straightline tier (:mod:`repro.sim.straightline`); strategies whose
    speed choices depend on simulation state (daemons, predictive
    schedulers) cannot, and return ``None`` from
    :meth:`Strategy.gear_plan`.

    Attributes
    ----------
    start_mhz:
        Homogeneous frequency set at setup time (``None`` = leave every
        node at the cluster default, the fastest point).
    start_mhz_per_rank:
        Heterogeneous setup frequencies, one per participating rank
        (mutually exclusive with ``start_mhz``).
    init_calls:
        Per-rank tuple of ``set_cpuspeed`` MHz arguments issued from the
        ``on_init`` hook (empty = the strategy has no init hook call).
    begin_calls / end_calls:
        ``(phase, (mhz, ...))`` pairs: the ``set_cpuspeed`` calls issued
        when the named phase begins / ends on any rank.
    rank_begin_calls / rank_end_calls:
        ``(phase, ((mhz, ...) per rank))`` pairs: heterogeneous phase
        calls — the calls a *specific rank* issues when the named phase
        begins / ends on it.  This is the shape the optimizer's
        per-rank-group, per-phase plans lower to; ranks the table
        covers take precedence over the homogeneous
        ``begin_calls``/``end_calls`` entry for the same phase.
    """

    start_mhz: Optional[float] = None
    start_mhz_per_rank: Optional[tuple[float, ...]] = None
    init_calls: tuple[tuple[float, ...], ...] = ()
    begin_calls: tuple[tuple[str, tuple[float, ...]], ...] = ()
    end_calls: tuple[tuple[str, tuple[float, ...]], ...] = ()
    rank_begin_calls: tuple[
        tuple[str, tuple[tuple[float, ...], ...]], ...
    ] = ()
    rank_end_calls: tuple[
        tuple[str, tuple[tuple[float, ...], ...]], ...
    ] = ()

    @property
    def static(self) -> bool:
        """Whether the plan performs no in-run DVS calls at all."""
        return not (
            any(self.init_calls)
            or any(calls for _, calls in self.begin_calls)
            or any(calls for _, calls in self.end_calls)
            or any(
                any(per_rank)
                for _, per_rank in self.rank_begin_calls + self.rank_end_calls
            )
        )

    def calls_at(self, kind: str, phase: str, rank: int) -> tuple[float, ...]:
        """The ``set_cpuspeed`` MHz calls at one hook site."""
        if kind == "init":
            return self.init_calls[rank] if self.init_calls else ()
        rank_table = (
            self.rank_begin_calls if kind == "begin" else self.rank_end_calls
        )
        for name, per_rank in rank_table:
            if name == phase:
                return per_rank[rank]
        table = self.begin_calls if kind == "begin" else self.end_calls
        for name, calls in table:
            if name == phase:
                return calls
        return ()


@dataclass(frozen=True)
class SampledController:
    """A daemon strategy lowered to a stateful poll-driven controller.

    Daemons (CPUSPEED, the predictive scheduler, the β daemon, the
    power-cap coordinator) cannot publish a :class:`GearPlan` — their
    speed choices depend on observed state — but their *control
    structure* is still static: wake every ``interval_s`` seconds,
    read one per-node window observation, update explicit carried
    state, and issue zero or more ``set_speed_index`` calls.  That
    shape is what the stateful-controller straightline tier
    (:mod:`repro.sim.straightline`) executes without an event heap:
    between polls the run is gear-static, so segments accumulate
    directly; at each tick the controllers decide the transitions.

    ``observes`` names the per-node window observation the tier
    samples at each tick — each replicated bit-for-bit against the
    engine counter the daemon would read:

    * ``"busy"`` — ``CpuCore.busy_seconds()`` (an accounting touch on
      every node, exactly as the daemons' own reads are);
    * ``"cycles"`` — ``CpuCore.cycles_retired_now()`` (no touch: a
      hardware counter read is not an accounting boundary);
    * ``"power"`` — ``Node.power_w()`` plus the activity key it was
      computed from, as ``(power_w, dyn, mem, nic)`` (no touch).

    **Per-node form** — ``make()`` builds one fresh controller per
    node (the daemon body's local state, carried across windows).  A
    controller exposes::

        step(now, sample, index, max_index) -> tuple[int, ...]

    returning, in call order, the exact operating-point indices the
    daemon would pass to ``CpuCore.set_speed_index`` at this poll (an
    index equal to the current one is the engine's no-op).  An
    optional ``bind(opoints, power_params)`` hook is called once
    before the run for controllers whose arithmetic reads the
    operating-point table.

    **Global-reduction form** — ``make_global()`` builds one
    cluster-wide controller for coordinator daemons (the power-cap
    budget redistribution).  Each tick the tier gathers every node's
    sample in node order, then scatters the setpoints the reduction
    emits::

        decide(now, samples, indices) -> iterable[(node, target)]

    where ``samples``/``indices`` are node-ordered lists and the
    returned setpoints are applied in iteration order (the engine's
    coordinator loop order).  Optional hooks: ``bind(opoints,
    power_params, nprocs)`` before the run, and when both forms are
    present, the per-node controllers act as *summarizers* — their
    ``carry(now, sample, index, max_index)`` return value replaces
    the raw sample handed to ``decide``.

    ``start_index`` optionally replicates setup-time speed calls (the
    power-cap pre-shed): called as ``start_index(opoints,
    power_params, nprocs)``, it returns the uniform post-setup
    operating-point index (default: the fastest point, untouched).

    The arithmetic inside every hook must replicate the daemon's
    float expressions operation-for-operation — the tier's bit-exact
    equivalence contract extends through it.
    """

    interval_s: float
    make: Optional[Callable[[], object]] = None
    observes: str = "busy"
    make_global: Optional[Callable[[], object]] = None
    start_index: Optional[Callable[..., int]] = None


class Strategy(abc.ABC):
    """A distributed DVS scheduling strategy.

    The framework drives a strategy through three touch points:

    * :meth:`hooks` — instrumentation handed to the workload program
      (only the INTERNAL strategy uses this; it is how ``set_cpuspeed``
      calls are "inserted into the source", Figure 3).
    * :meth:`setup` — before the job starts: set static frequencies
      (EXTERNAL) or start per-node daemon processes (CPUSPEED).
    * :meth:`teardown` — after the job: stop daemons.
    """

    #: short display name, e.g. ``"cpuspeed"``.
    name: str = "?"

    def hooks(self, workload: Workload) -> PhaseHooks:
        """Source-level instrumentation (default: none)."""
        return NO_HOOKS

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        """Lower this strategy's DVS behaviour to a :class:`GearPlan`.

        ``workload`` is required to lower hook calls (the plan names the
        workload's phases); plans with no hook calls (no-DVS, EXTERNAL)
        ignore it.  Returns ``None`` when the strategy's speed choices
        depend on simulation state — daemons, predictive schedulers —
        which keeps such runs on the event engine.  The default is
        conservative: ``None``.
        """
        return None

    def controller(self) -> Optional[SampledController]:
        """Lower this strategy's daemon to a :class:`SampledController`.

        Returns ``None`` (the conservative default) when the strategy
        is not an interval-polling daemon — or when its loop does
        something the stateful-controller tier cannot replay (waits on
        events other than the poll timer, reads observations beyond
        the supported per-node samples).  Strategies with a
        :meth:`gear_plan` don't need one; daemons that provide one —
        per-node (CPUSPEED, predictive, β) or coordinator-style via
        the global-reduction form (power-cap) — become eligible for
        the straightline tier's stateful-controller executor.
        """
        return None

    def is_static(self) -> bool:
        """Whether this strategy leaves operating points fixed after setup.

        Delegates to :meth:`gear_plan`: a strategy is static exactly
        when it has a workload-independent gear plan with no in-run
        ``set_cpuspeed`` calls — so this predicate can never diverge
        from the plan the straightline tier executes.
        """
        plan = self.gear_plan(None)
        return plan is not None and plan.static

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        """Prepare the participating nodes before launch."""

    def teardown(self, cluster: Cluster) -> None:
        """Undo :meth:`setup` after the job completes."""

    def describe(self) -> str:
        """One-line human description for reports."""
        return self.name

    def __repr__(self) -> str:
        return f"<Strategy {self.describe()}>"


class NoDvsStrategy(Strategy):
    """Baseline: every node pinned at the highest operating point.

    This is the paper's normalization reference ("energy and delay
    values without any DVS activity").
    """

    name = "no-dvs"

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        return GearPlan()

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            cluster[nid].cpu.set_speed_index(cluster.opoints.max_index)
