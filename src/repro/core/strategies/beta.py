"""β-adaptive, performance-constrained DVS daemon.

The paper's title promises *performance-constrained* scheduling; its
future work asks for "better prediction methods more suitable to
high-performance computing applications".  The approach the follow-up
literature converged on (Hsu & Feng's β-adaptation; Ge et al.'s own
CPU MISER) reads hardware performance counters instead of /proc
utilization:

1. over each window, estimate the **frequency-sensitive share**
   ``w_on`` of execution time from the retired-cycle counter
   (``on-chip seconds = Δcycles / f``; everything else — memory stalls,
   network waits — does not scale with the clock);
2. given a user delay constraint ``D(f) ≤ 1 + δ`` and the model
   ``D(f) = w_on · f_max/f + (1 − w_on)``, the slowest admissible
   frequency is ``f* = f_max · w_on / (δ + w_on)``;
3. set the slowest operating point **at or above** ``f*``.

Unlike utilization heuristics, this distinguishes a memory-stalled CPU
(busy in /proc but insensitive to frequency) from an on-chip-bound one
— exactly the failure mode that makes CPUSPEED mispredict MG and BT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster
from repro.hardware.cpu import CpuCore
from repro.hardware.opoints import OperatingPointTable
from repro.core.strategies.base import SampledController, Strategy

__all__ = ["BetaConfig", "BetaDaemonStrategy", "required_frequency_ratio"]


def required_frequency_ratio(w_on: float, delta: float) -> float:
    """Slowest admissible ``f / f_max`` for sensitivity ``w_on`` and
    delay budget ``δ`` (from ``D(f) = w_on·f_max/f + 1 − w_on ≤ 1+δ``).
    """
    if not 0.0 <= w_on <= 1.0:
        raise ValueError("w_on must lie in [0, 1]")
    if delta < 0.0:
        raise ValueError("delay budget must be non-negative")
    if w_on == 0.0:
        return 0.0
    return w_on / (delta + w_on)


@dataclass(frozen=True)
class BetaConfig:
    """β-daemon tuning."""

    #: user delay budget: execution time may grow by at most this
    #: fraction (the performance constraint).
    delta: float = 0.05
    interval_s: float = 1.0
    #: EMA smoothing of the w_on estimate across windows.
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must lie in (0, 1]")


class BetaDaemonStrategy(Strategy):
    """Per-node counter-driven, delay-budgeted DVS daemon."""

    name = "beta"

    def __init__(self, config: Optional[BetaConfig] = None) -> None:
        self.config = config or BetaConfig()
        self._daemons: list[Process] = []

    def describe(self) -> str:
        return f"beta-daemon(delta={self.config.delta:g})"

    # ------------------------------------------------------------------
    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            cpu = cluster[nid].cpu
            self._daemons.append(
                cluster.env.process(self._daemon(cpu), name=f"beta@{nid}")
            )

    def teardown(self, cluster: Cluster) -> None:
        for proc in self._daemons:
            if proc.is_alive:
                proc.interrupt("stop")
        self._daemons.clear()

    # ------------------------------------------------------------------
    @staticmethod
    def pick_point(opoints: OperatingPointTable, ratio: float) -> int:
        """Index of the slowest point with ``f/f_max >= ratio``."""
        f_max = opoints.fastest.frequency_hz
        for index, point in enumerate(opoints):  # slow -> fast
            if point.frequency_hz / f_max >= ratio - 1e-12:
                return index
        return opoints.max_index

    def _daemon(self, cpu: CpuCore):
        cfg = self.config
        env = cpu.env
        prev_cycles = cpu.cycles_retired_now()
        prev_time = env.now
        w_on_ema: Optional[float] = None
        try:
            while True:
                yield env.timeout(cfg.interval_s)
                now = env.now
                cycles = cpu.cycles_retired_now()
                window = now - prev_time
                if window <= 0:
                    continue
                # On-chip share of the window at the *current* clock.
                onchip_s = (cycles - prev_cycles) / cpu.frequency_hz
                w_on = min(1.0, max(0.0, onchip_s / window))
                prev_cycles, prev_time = cycles, now
                w_on_ema = (
                    w_on
                    if w_on_ema is None
                    else (1 - cfg.smoothing) * w_on_ema + cfg.smoothing * w_on
                )
                ratio = required_frequency_ratio(w_on_ema, cfg.delta)
                cpu.set_speed_index(self.pick_point(cpu.opoints, ratio))
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def controller(self) -> Optional[SampledController]:
        """The daemon as a stateful cycle-counter controller.

        The β daemon reads the retired-cycle counter, not
        ``busy_seconds()`` — a hardware counter read is no accounting
        touch — so the controller observes ``"cycles"``.
        """
        return SampledController(
            interval_s=self.config.interval_s,
            make=self._make_controller,
            observes="cycles",
        )

    def _make_controller(self) -> "_BetaController":
        return _BetaController(self.config)


class _BetaController:
    """One node's β-daemon state, stepped by the straightline tier.

    Replicates :meth:`BetaDaemonStrategy._daemon`'s loop body float
    expression for float expression — the tier's bit-exact equivalence
    contract extends through the controller arithmetic.  The carried
    state is exactly the generator's locals: the previous window's
    counter reading and timestamp, and the EMA of the on-chip share.
    """

    __slots__ = ("cfg", "opoints", "prev_cycles", "prev_time", "w_on_ema")

    def __init__(self, config: BetaConfig) -> None:
        self.cfg = config
        self.opoints: Optional[OperatingPointTable] = None
        # The daemon samples the counter before its first wait; both
        # reads happen at t=0 on a parked CPU: zero, zero.
        self.prev_cycles = 0.0
        self.prev_time = 0.0
        self.w_on_ema: Optional[float] = None

    def bind(self, opoints: OperatingPointTable, power_params) -> None:
        self.opoints = opoints

    def step(self, now: float, cycles: float, index: int,
             max_index: int) -> tuple[int, ...]:
        cfg = self.cfg
        window = now - self.prev_time
        if window <= 0:
            return ()
        opoints = self.opoints
        # On-chip share of the window at the *current* clock.
        onchip_s = (cycles - self.prev_cycles) / opoints[index].frequency_hz
        w_on = min(1.0, max(0.0, onchip_s / window))
        self.prev_cycles, self.prev_time = cycles, now
        ema = self.w_on_ema
        ema = (
            w_on
            if ema is None
            else (1 - cfg.smoothing) * ema + cfg.smoothing * w_on
        )
        self.w_on_ema = ema
        ratio = required_frequency_ratio(ema, cfg.delta)
        return (BetaDaemonStrategy.pick_point(opoints, ratio),)
