"""Strategy #1 — the CPUSPEED daemon (paper Section 3.1).

System-driven, external control: an autonomous per-node process polls
/proc-style CPU utilization every ``interval`` seconds and migrates the
operating point with the paper's threshold algorithm::

    while true:
        poll %CPU-usage
        if   %CPU < minimum-threshold:   S = 0         (jump to slowest)
        elif %CPU > maximum-threshold:   S = m         (jump to fastest)
        elif %CPU < CPU-usage-threshold: S = max(S-1, 0)
        else:                            S = min(S+1, m)
        set-cpu-speed(speed[S]); sleep(interval)

Two presets mirror the versions the paper evaluates: v1.1 (Fedora 2,
0.1 s interval — effectively never leaves top speed on NPB codes) and
v1.2.1 (Fedora 3, 2 s interval — the version Figure 5 reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster
from repro.hardware.cpu import CpuCore
from repro.core.strategies.base import SampledController, Strategy

__all__ = ["CpuspeedConfig", "CpuspeedDaemonStrategy"]


@dataclass(frozen=True)
class CpuspeedConfig:
    """Daemon tuning knobs.

    Thresholds are percentages of the polling window spent busy.
    """

    interval_s: float = 2.0
    minimum_threshold: float = 50.0
    usage_threshold: float = 80.0
    maximum_threshold: float = 95.0
    #: robustness against (injected) SpeedStep failures: how many times
    #: one poll's transition is re-issued, and the initial sleep before
    #: each retry (doubled per attempt — exponential backoff).
    max_retries: int = 3
    retry_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not (
            0
            <= self.minimum_threshold
            <= self.usage_threshold
            <= self.maximum_threshold
            <= 100
        ):
            raise ValueError(
                "need 0 <= minimum <= usage <= maximum <= 100 thresholds"
            )
        if self.max_retries < 0 or self.retry_backoff_s <= 0:
            raise ValueError("need max_retries >= 0 and a positive backoff")

    @classmethod
    def v1_1(cls) -> "CpuspeedConfig":
        """Fedora Core 2 default: 0.1 s interval, low thresholds.

        The paper observes v1.1 "always chooses the highest CPU speed
        for most NPB codes": its thresholds sit so low that any NPB
        utilization saturates them.
        """
        return cls(
            interval_s=0.1,
            minimum_threshold=5.0,
            usage_threshold=15.0,
            maximum_threshold=30.0,
        )

    @classmethod
    def v1_2_1(cls) -> "CpuspeedConfig":
        """Fedora Core 3 default: 2 s transition interval."""
        return cls(interval_s=2.0)


class CpuspeedDaemonStrategy(Strategy):
    """Run one CPUSPEED daemon per participating node."""

    name = "cpuspeed"

    def __init__(self, config: Optional[CpuspeedConfig] = None) -> None:
        self.config = config or CpuspeedConfig.v1_2_1()
        self._daemons: list[Process] = []

    def describe(self) -> str:
        return f"cpuspeed(interval={self.config.interval_s:g}s)"

    # ------------------------------------------------------------------
    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        env = cluster.env
        for nid in node_ids:
            cpu = cluster[nid].cpu
            proc = env.process(self._daemon(cpu), name=f"cpuspeed@{nid}")
            self._daemons.append(proc)

    def teardown(self, cluster: Cluster) -> None:
        for proc in self._daemons:
            if proc.is_alive:
                proc.interrupt("stop")
        self._daemons.clear()

    # ------------------------------------------------------------------
    def _daemon(self, cpu: CpuCore):
        cfg = self.config
        env = cpu.env
        prev_busy = cpu.busy_seconds()
        prev_time = env.now
        try:
            while True:
                yield env.timeout(cfg.interval_s)
                busy = cpu.busy_seconds()
                now = env.now
                window = now - prev_time
                usage = 100.0 * (busy - prev_busy) / window if window > 0 else 0.0
                prev_busy, prev_time = busy, now
                index = self._next_index(cpu.index, cpu.opoints.max_index, usage)
                ok = cpu.set_speed_index(index)
                # Failed (injected) transition: retry with exponential
                # backoff instead of silently sticking until next poll.
                # The clean path never enters this loop, so it adds no
                # events to fault-free runs.
                backoff = cfg.retry_backoff_s
                for _ in range(cfg.max_retries):
                    if ok:
                        break
                    yield env.timeout(backoff)
                    backoff *= 2.0
                    if cpu.injector is not None:
                        cpu.injector.log.dvs_retries += 1
                    ok = cpu.set_speed_index(index)
        except Interrupt:
            return

    def _next_index(self, current: int, max_index: int, usage_pct: float) -> int:
        """The paper's threshold/saturation rule."""
        cfg = self.config
        if usage_pct < cfg.minimum_threshold:
            return 0
        if usage_pct > cfg.maximum_threshold:
            return max_index
        if usage_pct < cfg.usage_threshold:
            return max(current - 1, 0)
        return min(current + 1, max_index)

    # ------------------------------------------------------------------
    def controller(self) -> SampledController:
        """Expose the daemon as a pure per-node transition function.

        The clean-run daemon is exactly: poll every ``interval_s``,
        compute the window's %CPU, apply :meth:`_next_index`, issue one
        ``set_speed_index`` call.  (The retry/backoff loop only runs
        after an *injected* transition failure, and fault environments
        never reach the sampled tier.)
        """
        return SampledController(
            interval_s=self.config.interval_s,
            make=self._make_controller,
        )

    def _make_controller(self) -> "_CpuspeedController":
        return _CpuspeedController(self)


class _CpuspeedController:
    """Per-node sampled-control replica of the daemon's clean path.

    ``step`` repeats the generator body's float arithmetic verbatim:
    the usage expression, then the threshold rule.  The daemon samples
    ``busy_seconds()`` once at creation (t=0, reading 0.0) before its
    first sleep, which the initial ``prev_busy``/``prev_time`` mirror.
    """

    __slots__ = ("prev_busy", "prev_time", "min_t", "use_t", "max_t")

    def __init__(self, strategy: CpuspeedDaemonStrategy) -> None:
        cfg = strategy.config
        self.prev_busy = 0.0
        self.prev_time = 0.0
        self.min_t = cfg.minimum_threshold
        self.use_t = cfg.usage_threshold
        self.max_t = cfg.maximum_threshold

    def step(
        self, now: float, busy: float, index: int, max_index: int
    ) -> tuple[int, ...]:
        window = now - self.prev_time
        usage = 100.0 * (busy - self.prev_busy) / window if window > 0 else 0.0
        self.prev_busy = busy
        self.prev_time = now
        # _next_index's threshold/saturation rule, inlined for the
        # per-node-per-poll hot path (comparisons only: bit-identical).
        if usage < self.min_t:
            return (0,)
        if usage > self.max_t:
            return (max_index,)
        if usage < self.use_t:
            return (index - 1,) if index > 0 else (0,)
        return (index + 1,) if index < max_index else (max_index,)
