"""Strategy #2 — EXTERNAL command-line scheduling (paper Section 3.2).

User-driven, external control: set every participating node to one
static operating point before launch (``psetcpuspeed 600`` in the
paper's Figure 3) — or, metric-driven, select that point from a
previously measured profile using a fused energy-performance metric
(how Figures 6/7 are produced).

A heterogeneous variant (different static speed per node) is also
provided; the paper notes it is straightforward but needs the profiling
that the INTERNAL approach performs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from repro.hardware.cluster import Cluster
from repro.core.metrics import ED3P, FusedMetric, select_operating_point
from repro.core.strategies.base import GearPlan, Strategy
from repro.workloads.base import Workload

__all__ = ["ExternalStrategy"]


class ExternalStrategy(Strategy):
    """Static cluster-wide (or per-node) frequency setting.

    Exactly one of the configuration styles must be used:

    * ``mhz=...`` — explicit homogeneous setting;
    * ``per_node_mhz=[...]`` — explicit heterogeneous settings;
    * ``profile={mhz: (norm_delay, norm_energy)}, metric=ED3P`` —
      metric-driven selection from a measured profile.
    """

    name = "external"

    def __init__(
        self,
        mhz: Optional[float] = None,
        per_node_mhz: Optional[Sequence[float]] = None,
        profile: Optional[Mapping[float, Tuple[float, float]]] = None,
        metric: FusedMetric = ED3P,
    ) -> None:
        styles = sum(x is not None for x in (mhz, per_node_mhz, profile))
        if styles != 1:
            raise ValueError(
                "configure exactly one of mhz=, per_node_mhz= or profile="
            )
        self.metric = metric
        self.per_node_mhz = list(per_node_mhz) if per_node_mhz is not None else None
        if profile is not None:
            mhz = select_operating_point(profile, metric)
            self.selected_from_profile = True
        else:
            self.selected_from_profile = False
        self.mhz = mhz

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        if self.per_node_mhz is not None:
            return GearPlan(
                start_mhz_per_rank=tuple(float(m) for m in self.per_node_mhz)
            )
        assert self.mhz is not None
        return GearPlan(start_mhz=float(self.mhz))

    def describe(self) -> str:
        if self.per_node_mhz is not None:
            return f"external(per-node {self.per_node_mhz})"
        if self.selected_from_profile:
            return f"external({self.metric.name}->{self.mhz:g}MHz)"
        return f"external({self.mhz:g}MHz)"

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        if self.per_node_mhz is not None:
            if len(self.per_node_mhz) != len(node_ids):
                raise ValueError(
                    f"{len(node_ids)} participating nodes but "
                    f"{len(self.per_node_mhz)} frequencies configured"
                )
            for nid, mhz in zip(node_ids, self.per_node_mhz):
                cluster[nid].cpu.set_speed_mhz(mhz)
        else:
            assert self.mhz is not None
            for nid in node_ids:
                cluster[nid].cpu.set_speed_mhz(self.mhz)
