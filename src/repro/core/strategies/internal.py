"""Strategy #3 — INTERNAL source-level scheduling (paper Section 3.3).

User-driven, internal control: ``set_cpuspeed`` calls inserted in the
application around phases.  Two policy shapes cover the paper's two
case studies:

* :class:`PhasePolicy` — FT (Figure 10): drop to ``low_mhz`` when a
  named phase (the all-to-all) begins, restore ``high_mhz`` when it
  ends.
* :class:`RankPolicy` — CG (Figure 13): set a static per-rank speed at
  MPI_Init time (heterogeneous scheduling for asymmetric codes).

Policies are :class:`~repro.workloads.base.PhaseHooks`, i.e. exactly
the instrumentation surface every workload program exposes at the
source locations where the paper inserts its API calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.mpi.communicator import RankContext
from repro.workloads.base import PhaseHooks, Workload
from repro.core.strategies.base import GearPlan, Strategy

__all__ = ["PhasePolicy", "RankPolicy", "SplitSpeeds", "InternalStrategy"]


class PhasePolicy(PhaseHooks):
    """Scale down during named phases, restore afterwards.

    Parameters
    ----------
    low_phases:
        Phase names that run at ``low_mhz`` (e.g. ``{"alltoall"}``).
    low_mhz / high_mhz:
        The two operating points (paper FT: 600 / 1400).
    min_phase_seconds:
        Optional guard: policies can refuse to switch for phases known
        to be shorter than the transition cost is worth (0 disables).
    """

    def __init__(
        self,
        low_phases: Iterable[str],
        low_mhz: float = 600.0,
        high_mhz: float = 1400.0,
        min_phase_seconds: float = 0.0,
    ) -> None:
        self.low_phases = frozenset(low_phases)
        if not self.low_phases:
            raise ValueError("need at least one phase to scale down")
        self.low_mhz = low_mhz
        self.high_mhz = high_mhz
        self.min_phase_seconds = min_phase_seconds
        self._phase_t0: dict[tuple[int, str], float] = {}

    def on_init(self, ctx: RankContext) -> None:
        ctx.set_cpuspeed(self.high_mhz)

    def phase_begin(self, ctx: RankContext, phase: str) -> None:
        if phase in self.low_phases:
            ctx.set_cpuspeed(self.low_mhz)

    def phase_end(self, ctx: RankContext, phase: str) -> None:
        if phase in self.low_phases:
            ctx.set_cpuspeed(self.high_mhz)

    def __repr__(self) -> str:
        return (
            f"PhasePolicy({sorted(self.low_phases)}, "
            f"low={self.low_mhz:g}, high={self.high_mhz:g})"
        )


@dataclass(frozen=True)
class SplitSpeeds:
    """Rank→MHz rule behind :meth:`RankPolicy.split`.

    A plain dataclass (not a closure) so split policies pickle into
    parallel workers and carry their configuration into cache keys.
    """

    n_high: int
    high_mhz: float
    low_mhz: float

    def __call__(self, rank: int) -> float:
        return self.high_mhz if rank < self.n_high else self.low_mhz


class RankPolicy(PhaseHooks):
    """Static heterogeneous per-rank speeds set at MPI_Init.

    ``speed_of`` maps a rank to its MHz; the convenience constructor
    :meth:`split` reproduces the paper's CG policy (Figure 13): the
    first ``n_high`` ranks at ``high_mhz``, the rest at ``low_mhz``.
    """

    def __init__(self, speed_of: Callable[[int], float] | Mapping[int, float]) -> None:
        if isinstance(speed_of, Mapping):
            self.speeds: Optional[dict[int, float]] = dict(speed_of)
            self.speed_rule: Optional[Callable[[int], float]] = None
        else:
            self.speeds = None
            self.speed_rule = speed_of

    def _speed_of(self, rank: int) -> float:
        if self.speeds is not None:
            return self.speeds[rank]
        assert self.speed_rule is not None
        return self.speed_rule(rank)

    @classmethod
    def split(
        cls, n_high: int, high_mhz: float, low_mhz: float
    ) -> "RankPolicy":
        """Ranks ``< n_high`` run at ``high_mhz``, others at ``low_mhz``."""
        return cls(SplitSpeeds(n_high, high_mhz, low_mhz))

    def on_init(self, ctx: RankContext) -> None:
        ctx.set_cpuspeed(self._speed_of(ctx.rank))

    def __repr__(self) -> str:
        if self.speeds is not None:
            return f"RankPolicy({self.speeds!r})"
        return f"RankPolicy({self.speed_rule!r})"


class InternalStrategy(Strategy):
    """Wrap a phase/rank policy as a scheduling strategy."""

    name = "internal"

    def __init__(self, policy: PhaseHooks, label: Optional[str] = None) -> None:
        self.policy = policy
        self.label = label

    def describe(self) -> str:
        if self.label:
            return f"internal[{self.label}]"
        return f"internal({self.policy!r})"

    def hooks(self, workload: Workload) -> PhaseHooks:
        if isinstance(self.policy, PhasePolicy):
            unknown = self.policy.low_phases - set(workload.phases)
            if unknown:
                raise ValueError(
                    f"policy targets phases {sorted(unknown)} that "
                    f"{workload.tag} never announces (has {workload.phases})"
                )
        return self.policy

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        """Lower the policy's hook calls to a static (rank, phase) table.

        Only the exact stock policy shapes are lowered — a subclass may
        override hook behaviour arbitrarily, so it conservatively stays
        on the event engine.  A :class:`PhasePolicy` with
        ``min_phase_seconds > 0`` would gate its calls on measured phase
        durations, which is not static either.
        """
        if workload is None:
            return None
        policy = self.policy
        if type(policy) is PhasePolicy and policy.min_phase_seconds == 0.0:
            self.hooks(workload)  # same phase validation as the event path
            low = tuple(sorted(policy.low_phases))
            return GearPlan(
                init_calls=((float(policy.high_mhz),),) * workload.nprocs,
                begin_calls=tuple((p, (float(policy.low_mhz),)) for p in low),
                end_calls=tuple((p, (float(policy.high_mhz),)) for p in low),
            )
        if type(policy) is RankPolicy:
            try:
                return GearPlan(
                    init_calls=tuple(
                        (float(policy._speed_of(r)),)
                        for r in range(workload.nprocs)
                    )
                )
            except Exception:
                # A rank the mapping doesn't cover, a rule that raises:
                # let the event engine surface the genuine error.
                return None
        return None
