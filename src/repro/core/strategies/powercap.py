"""Cluster-wide power capping.

The paper motivates power-aware scheduling with machine-room realities
(a petaflop machine drawing ~100 MW, Section 1).  Facilities enforce
those realities as *power caps*: the cluster may not exceed a budget,
whatever the workload does.  This strategy is the follow-on literature's
answer (GEOPM-style centralized capping) built on the same actuation
the paper uses:

* a coordinator samples every node's power each interval;
* while the cluster is over budget, it steps down the
  highest-powered node (one operating point per offender per interval);
* while comfortably under budget (below ``cap * headroom``), it steps
  the slowest node back up.

The cap is enforced on *observed* power; transitions take effect
immediately, so overshoot is bounded by one interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster
from repro.core.strategies.base import Strategy

__all__ = ["PowerCapConfig", "PowerCapStrategy"]


@dataclass(frozen=True)
class PowerCapConfig:
    """Cap controller tuning."""

    #: cluster power budget in watts (participating nodes only).
    cap_w: float
    interval_s: float = 0.5
    #: step back up only when below ``cap_w * headroom``.
    headroom: float = 0.92
    #: how many nodes may be stepped *up* per interval (shedding is
    #: always immediate for every offender).
    max_steps_per_interval: int = 2
    #: raise speed only if the node would stay under budget even at
    #: full activity (True keeps worst-case power under the cap; False
    #: reacts to instantaneous power and may overshoot transiently).
    conservative_raise: bool = True

    def __post_init__(self) -> None:
        if self.cap_w <= 0:
            raise ValueError("cap must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.headroom <= 1:
            raise ValueError("headroom must lie in (0, 1]")
        if self.max_steps_per_interval < 1:
            raise ValueError("need at least one step per interval")


class PowerCapStrategy(Strategy):
    """Keep the participating nodes' total power under a budget."""

    name = "powercap"

    def __init__(self, config: PowerCapConfig) -> None:
        self.config = config
        self._proc: Optional[Process] = None
        #: samples of (time, total power) taken by the controller.
        self.power_samples: list[tuple[float, float]] = []

    def describe(self) -> str:
        return f"powercap({self.config.cap_w:.0f}W)"

    # ------------------------------------------------------------------
    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        # Pre-shed: start every node at the fastest uniform point whose
        # worst-case total stays under the cap, so the budget holds from
        # t=0 rather than after the first control interval.
        nodes = [cluster[nid] for nid in node_ids]
        for index in range(cluster.opoints.max_index, -1, -1):
            worst = sum(self._worst_case_node_w(n, index) for n in nodes)
            if worst <= self.config.cap_w or index == 0:
                for node in nodes:
                    node.cpu.set_speed_index(index)
                break
        self._proc = cluster.env.process(
            self._controller(cluster, list(node_ids)), name="powercap"
        )

    def teardown(self, cluster: Cluster) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    # ------------------------------------------------------------------
    def _controller(self, cluster: Cluster, node_ids: list[int]):
        cfg = self.config
        env = cluster.env
        nodes = [cluster[nid] for nid in node_ids]
        try:
            while True:
                yield env.timeout(cfg.interval_s)
                total = sum(node.power_w() for node in nodes)
                self.power_samples.append((env.now, total))
                worst = self._worst_case_total(nodes)
                if total > cfg.cap_w:
                    # shed: every node above the floor steps down, the
                    # biggest consumers first, until projected under cap
                    offenders = sorted(
                        (n for n in nodes if n.cpu.index > 0),
                        key=lambda n: n.power_w(),
                        reverse=True,
                    )
                    projected = total
                    for node in offenders:
                        before = node.power_w()
                        node.cpu.step_down()
                        projected -= before - node.power_w()
                        if projected <= cfg.cap_w * cfg.headroom:
                            break
                elif total < cfg.cap_w * cfg.headroom:
                    # recover performance: speed the slowest nodes up,
                    # against the worst-case (full activity) budget so a
                    # phase change cannot blow the cap
                    candidates = sorted(
                        (n for n in nodes if n.cpu.index < n.cpu.opoints.max_index),
                        key=lambda n: n.cpu.frequency_hz,
                    )
                    budget = cfg.cap_w - (
                        worst if cfg.conservative_raise else total
                    )
                    stepped = 0
                    for node in candidates:
                        if stepped >= cfg.max_steps_per_interval:
                            break
                        delta = self._worst_case_step_delta(node)
                        if delta > budget:
                            continue
                        node.cpu.step_up()
                        budget -= delta
                        stepped += 1
        except Interrupt:
            return

    # ------------------------------------------------------------------
    @staticmethod
    def _worst_case_node_w(node, index: int) -> float:
        """Node power at operating point ``index``, flat out."""
        op = node.cpu.opoints[index]
        return node.power_params.node_power_w(
            op, cpu_activity=1.0, mem_activity=0.6, nic_activity=0.5
        )

    def _worst_case_total(self, nodes) -> float:
        return sum(self._worst_case_node_w(n, n.cpu.index) for n in nodes)

    def _worst_case_step_delta(self, node) -> float:
        current = self._worst_case_node_w(node, node.cpu.index)
        raised = self._worst_case_node_w(node, node.cpu.index + 1)
        return raised - current

    def max_observed_power_w(self) -> float:
        return max((p for _t, p in self.power_samples), default=0.0)

    def mean_observed_power_w(self) -> float:
        if not self.power_samples:
            return 0.0
        return sum(p for _t, p in self.power_samples) / len(self.power_samples)
