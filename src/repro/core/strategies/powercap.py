"""Cluster-wide power capping.

The paper motivates power-aware scheduling with machine-room realities
(a petaflop machine drawing ~100 MW, Section 1).  Facilities enforce
those realities as *power caps*: the cluster may not exceed a budget,
whatever the workload does.  This strategy is the follow-on literature's
answer (GEOPM-style centralized capping) built on the same actuation
the paper uses:

* a coordinator samples every node's power each interval;
* while the cluster is over budget, it steps down the
  highest-powered node (one operating point per offender per interval);
* while comfortably under budget (below ``cap * headroom``), it steps
  the slowest node back up.

The cap is enforced on *observed* power; transitions take effect
immediately, so overshoot is bounded by one interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster
from repro.core.strategies.base import SampledController, Strategy

__all__ = ["PowerCapConfig", "PowerCapStrategy"]


@dataclass(frozen=True)
class PowerCapConfig:
    """Cap controller tuning."""

    #: cluster power budget in watts (participating nodes only).
    cap_w: float
    interval_s: float = 0.5
    #: step back up only when below ``cap_w * headroom``.
    headroom: float = 0.92
    #: how many nodes may be stepped *up* per interval (shedding is
    #: always immediate for every offender).
    max_steps_per_interval: int = 2
    #: raise speed only if the node would stay under budget even at
    #: full activity (True keeps worst-case power under the cap; False
    #: reacts to instantaneous power and may overshoot transiently).
    conservative_raise: bool = True

    def __post_init__(self) -> None:
        if self.cap_w <= 0:
            raise ValueError("cap must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.headroom <= 1:
            raise ValueError("headroom must lie in (0, 1]")
        if self.max_steps_per_interval < 1:
            raise ValueError("need at least one step per interval")


class PowerCapStrategy(Strategy):
    """Keep the participating nodes' total power under a budget."""

    name = "powercap"

    def __init__(self, config: PowerCapConfig) -> None:
        self.config = config
        self._proc: Optional[Process] = None
        #: samples of (time, total power) taken by the controller.
        self.power_samples: list[tuple[float, float]] = []

    def describe(self) -> str:
        return f"powercap({self.config.cap_w:.0f}W)"

    # ------------------------------------------------------------------
    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        # Pre-shed: start every node at the fastest uniform point whose
        # worst-case total stays under the cap, so the budget holds from
        # t=0 rather than after the first control interval.
        nodes = [cluster[nid] for nid in node_ids]
        for index in range(cluster.opoints.max_index, -1, -1):
            worst = sum(self._worst_case_node_w(n, index) for n in nodes)
            if worst <= self.config.cap_w or index == 0:
                for node in nodes:
                    node.cpu.set_speed_index(index)
                break
        self._proc = cluster.env.process(
            self._controller(cluster, list(node_ids)), name="powercap"
        )

    def teardown(self, cluster: Cluster) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    # ------------------------------------------------------------------
    def _controller(self, cluster: Cluster, node_ids: list[int]):
        cfg = self.config
        env = cluster.env
        nodes = [cluster[nid] for nid in node_ids]
        try:
            while True:
                yield env.timeout(cfg.interval_s)
                total = sum(node.power_w() for node in nodes)
                self.power_samples.append((env.now, total))
                worst = self._worst_case_total(nodes)
                if total > cfg.cap_w:
                    # shed: every node above the floor steps down, the
                    # biggest consumers first, until projected under cap
                    offenders = sorted(
                        (n for n in nodes if n.cpu.index > 0),
                        key=lambda n: n.power_w(),
                        reverse=True,
                    )
                    projected = total
                    for node in offenders:
                        before = node.power_w()
                        node.cpu.step_down()
                        projected -= before - node.power_w()
                        if projected <= cfg.cap_w * cfg.headroom:
                            break
                elif total < cfg.cap_w * cfg.headroom:
                    # recover performance: speed the slowest nodes up,
                    # against the worst-case (full activity) budget so a
                    # phase change cannot blow the cap
                    candidates = sorted(
                        (n for n in nodes if n.cpu.index < n.cpu.opoints.max_index),
                        key=lambda n: n.cpu.frequency_hz,
                    )
                    budget = cfg.cap_w - (
                        worst if cfg.conservative_raise else total
                    )
                    stepped = 0
                    for node in candidates:
                        if stepped >= cfg.max_steps_per_interval:
                            break
                        delta = self._worst_case_step_delta(node)
                        if delta > budget:
                            continue
                        node.cpu.step_up()
                        budget -= delta
                        stepped += 1
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def controller(self) -> Optional[SampledController]:
        """The coordinator as a stateful global-reduction controller.

        The cap loop is exactly the tier's reduction shape: gather
        every node's instantaneous power (plus the activity key it was
        computed from, so the shed projection can reprice a
        stepped-down offender), decide the cluster-wide budget
        redistribution, scatter the setpoints.  ``start_index``
        replicates the setup-time pre-shed.
        """
        return SampledController(
            interval_s=self.config.interval_s,
            observes="power",
            make_global=self._make_reduction,
            start_index=self._start_index,
        )

    def _make_reduction(self) -> "_PowerCapReduction":
        return _PowerCapReduction(self)

    def _start_index(self, opoints, power_params, nprocs: int) -> int:
        """:meth:`setup`'s pre-shed on a homogeneous cluster.

        Every term of the engine's per-node worst-case sum is the same
        pure-function value, so one evaluation per index reproduces
        the sum bit-for-bit.
        """
        for index in range(opoints.max_index, -1, -1):
            w = power_params.node_power_w(
                opoints[index],
                cpu_activity=1.0, mem_activity=0.6, nic_activity=0.5,
            )
            worst = sum(w for _ in range(nprocs))
            if worst <= self.config.cap_w or index == 0:
                return index
        return 0  # pragma: no cover - loop always returns at index 0

    # ------------------------------------------------------------------
    @staticmethod
    def _worst_case_node_w(node, index: int) -> float:
        """Node power at operating point ``index``, flat out."""
        op = node.cpu.opoints[index]
        return node.power_params.node_power_w(
            op, cpu_activity=1.0, mem_activity=0.6, nic_activity=0.5
        )

    def _worst_case_total(self, nodes) -> float:
        return sum(self._worst_case_node_w(n, n.cpu.index) for n in nodes)

    def _worst_case_step_delta(self, node) -> float:
        current = self._worst_case_node_w(node, node.cpu.index)
        raised = self._worst_case_node_w(node, node.cpu.index + 1)
        return raised - current

    def max_observed_power_w(self) -> float:
        return max((p for _t, p in self.power_samples), default=0.0)

    def mean_observed_power_w(self) -> float:
        if not self.power_samples:
            return 0.0
        return sum(p for _t, p in self.power_samples) / len(self.power_samples)


class _PowerCapReduction:
    """The coordinator's per-tick budget redistribution, heap-free.

    Replicates :meth:`PowerCapStrategy._controller`'s loop body float
    expression for float expression, over node-ordered samples of
    ``(power_w, dyn, mem, nic)``.  ``worst_tab`` pre-evaluates
    ``_worst_case_node_w`` per operating point — a pure function, so
    each table entry is the engine's fresh per-node evaluation
    bit-for-bit; sums over it run in the engine's node order.  The
    observable controller state (``power_samples`` on the strategy,
    which reports ``max``/``mean`` observed power) is appended exactly
    as the daemon does.
    """

    __slots__ = ("strategy", "cfg", "opoints", "power", "worst_tab",
                 "freq_tab", "max_index", "_memo")

    def __init__(self, strategy: PowerCapStrategy) -> None:
        self.strategy = strategy
        self.cfg = strategy.config
        self._memo: dict[tuple, float] = {}

    def bind(self, opoints, power_params, nprocs: int) -> None:
        self.opoints = opoints
        self.power = power_params
        self.max_index = opoints.max_index
        self.worst_tab = [
            power_params.node_power_w(
                op, cpu_activity=1.0, mem_activity=0.6, nic_activity=0.5
            )
            for op in opoints
        ]
        self.freq_tab = [op.frequency_hz for op in opoints]

    def _node_w(self, index: int, dyn: float, mem: float, nic: float) -> float:
        key = (index, dyn, mem, nic)
        p = self._memo.get(key)
        if p is None:
            p = self.power.node_power_w(self.opoints[index], dyn, mem, nic)
            self._memo[key] = p
        return p

    def decide(self, now, samples, indices):
        cfg = self.cfg
        powers = [s[0] for s in samples]
        total = sum(powers)
        self.strategy.power_samples.append((now, total))
        worst_tab = self.worst_tab
        worst = sum(worst_tab[i] for i in indices)
        out: list[tuple[int, int]] = []
        if total > cfg.cap_w:
            # shed: every node above the floor steps down, the biggest
            # consumers first, until projected under cap.  sorted() is
            # stable either way, so ties keep node order like the
            # engine's node-list sort.
            offenders = sorted(
                (n for n in range(len(indices)) if indices[n] > 0),
                key=powers.__getitem__,
                reverse=True,
            )
            projected = total
            for n in offenders:
                before = powers[n]
                s = samples[n]
                # The gear change leaves the activity state untouched,
                # so the engine's post-step power_w() re-read is the
                # same key at the lower point.
                after = self._node_w(indices[n] - 1, s[1], s[2], s[3])
                out.append((n, indices[n] - 1))
                projected -= before - after
                if projected <= cfg.cap_w * cfg.headroom:
                    break
        elif total < cfg.cap_w * cfg.headroom:
            # recover performance: speed the slowest nodes up, against
            # the worst-case (full activity) budget so a phase change
            # cannot blow the cap.
            freq_tab = self.freq_tab
            candidates = sorted(
                (n for n in range(len(indices)) if indices[n] < self.max_index),
                key=lambda n: freq_tab[indices[n]],
            )
            budget = cfg.cap_w - (worst if cfg.conservative_raise else total)
            stepped = 0
            for n in candidates:
                if stepped >= cfg.max_steps_per_interval:
                    break
                delta = worst_tab[indices[n] + 1] - worst_tab[indices[n]]
                if delta > budget:
                    continue
                out.append((n, indices[n] + 1))
                budget -= delta
                stepped += 1
        return out
