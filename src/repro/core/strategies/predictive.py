"""Predictive daemon — the paper's future-work scheduler.

Section 7: "Our continuing goal is to improve energy savings while
maintaining performance through better prediction methods more suitable
to high-performance computing applications."  The CPUSPEED daemon fails
on scientific codes for two reasons the paper identifies: its window is
long (2 s — it lags every phase change) and its response is incremental
(one operating point per poll).  This daemon fixes both and optionally
adds phase-duration learning:

* **reactive mode** — poll at sub-phase granularity (default 100 ms)
  and jump *directly* to the target point, with hysteresis so single
  noisy samples don't cause transitions;
* **predictive mode** — additionally learn the typical duration of busy
  and slack runs (EMA over observed run lengths).  When the current run
  has lasted its learned duration, pre-emptively switch to the speed of
  the *next* expected phase, so the clock is already high when compute
  resumes — removing the reactive lag that costs delay on codes like
  MG and BT.

Both are system-driven and external, like CPUSPEED: they observe only
/proc-style utilization, no application changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster
from repro.hardware.cpu import CpuCore
from repro.core.strategies.base import SampledController, Strategy

__all__ = ["PredictiveConfig", "PredictiveDaemonStrategy"]


@dataclass(frozen=True)
class PredictiveConfig:
    """Tuning of the predictive daemon."""

    interval_s: float = 0.1
    #: below this busy fraction a sample reads "slack".
    low_threshold: float = 0.55
    #: above this busy fraction a sample reads "busy".
    high_threshold: float = 0.85
    #: consecutive agreeing samples required before switching.
    hysteresis_samples: int = 2
    #: consecutive ambiguous (mid-band) samples before drifting one
    #: operating point down (codes that never separate into clean
    #: busy/slack phases, like CG, still deserve savings).
    drift_samples: int = 5
    #: EMA factor for learned run lengths.
    learning_rate: float = 0.3
    #: enable phase-duration prediction (else purely reactive).
    predictive: bool = True
    #: pre-switch when the run has lasted this fraction of its learned
    #: duration.
    preswitch_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not 0 <= self.low_threshold <= self.high_threshold <= 1:
            raise ValueError("need 0 <= low <= high <= 1 thresholds")
        if self.hysteresis_samples < 1:
            raise ValueError("hysteresis needs at least one sample")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning rate must lie in (0, 1]")
        if self.preswitch_fraction <= 0:
            raise ValueError("preswitch fraction must be positive")
        if self.drift_samples < 1:
            raise ValueError("drift needs at least one sample")


class _NodeState:
    """Per-node phase tracker."""

    __slots__ = (
        "prev_busy",
        "prev_time",
        "phase",
        "run_started",
        "agree_count",
        "candidate",
        "learned_busy_s",
        "learned_slack_s",
        "preswitched",
        "mid_count",
    )

    def __init__(self, now: float, busy: float) -> None:
        self.prev_busy = busy
        self.prev_time = now
        self.phase = "busy"
        self.run_started = now
        self.agree_count = 0
        self.candidate: Optional[str] = None
        self.learned_busy_s: Optional[float] = None
        self.learned_slack_s: Optional[float] = None
        self.preswitched = False
        self.mid_count = 0


class PredictiveDaemonStrategy(Strategy):
    """Fast-reacting, optionally phase-predicting DVS daemon."""

    name = "predictive"

    def __init__(self, config: Optional[PredictiveConfig] = None) -> None:
        self.config = config or PredictiveConfig()
        self._daemons: list[Process] = []

    def describe(self) -> str:
        mode = "predictive" if self.config.predictive else "reactive"
        return f"{mode}-daemon(interval={self.config.interval_s:g}s)"

    # ------------------------------------------------------------------
    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            cpu = cluster[nid].cpu
            self._daemons.append(
                cluster.env.process(self._daemon(cpu), name=f"predictive@{nid}")
            )

    def teardown(self, cluster: Cluster) -> None:
        for proc in self._daemons:
            if proc.is_alive:
                proc.interrupt("stop")
        self._daemons.clear()

    # ------------------------------------------------------------------
    def _learn(self, state: _NodeState, phase: str, duration: float) -> None:
        rate = self.config.learning_rate
        if phase == "busy":
            prev = state.learned_busy_s
            state.learned_busy_s = (
                duration if prev is None else (1 - rate) * prev + rate * duration
            )
        else:
            prev = state.learned_slack_s
            state.learned_slack_s = (
                duration if prev is None else (1 - rate) * prev + rate * duration
            )

    def _enter_phase(self, cpu: CpuCore, state: _NodeState, phase: str, now: float) -> None:
        self._learn(state, state.phase, now - state.run_started)
        state.phase = phase
        state.run_started = now
        state.preswitched = False
        if phase == "busy":
            cpu.set_speed_index(cpu.opoints.max_index)
        else:
            cpu.set_speed_index(0)

    def controller(self) -> SampledController:
        """Expose the daemon as a pure per-node transition function."""
        return SampledController(
            interval_s=self.config.interval_s,
            make=self._make_controller,
        )

    def _make_controller(self) -> "_PredictiveController":
        return _PredictiveController(self)

    def _daemon(self, cpu: CpuCore):
        cfg = self.config
        env = cpu.env
        state = _NodeState(env.now, cpu.busy_seconds())
        try:
            while True:
                yield env.timeout(cfg.interval_s)
                now = env.now
                busy = cpu.busy_seconds()
                window = now - state.prev_time
                util = (busy - state.prev_busy) / window if window > 0 else 0.0
                state.prev_busy, state.prev_time = busy, now

                # classify this sample
                if util >= cfg.high_threshold:
                    sample = "busy"
                    state.mid_count = 0
                elif util <= cfg.low_threshold:
                    sample = "slack"
                    state.mid_count = 0
                else:
                    # Ambiguous band: phases too fine (or mixed) for the
                    # sampler to separate.  Drift down slowly — the
                    # CPUSPEED-style response — while extremes still get
                    # immediate jumps.
                    sample = state.phase
                    state.mid_count += 1
                    if state.mid_count >= cfg.drift_samples:
                        state.mid_count = 0
                        cpu.step_down()

                # hysteresis: require agreement before switching
                if sample != state.phase:
                    if sample == state.candidate:
                        state.agree_count += 1
                    else:
                        state.candidate = sample
                        state.agree_count = 1
                    if state.agree_count >= cfg.hysteresis_samples:
                        self._enter_phase(cpu, state, sample, now)
                        state.candidate = None
                        state.agree_count = 0
                    continue
                state.candidate = None
                state.agree_count = 0

                # prediction: pre-switch near the learned end of a run
                if cfg.predictive and not state.preswitched:
                    learned = (
                        state.learned_busy_s
                        if state.phase == "busy"
                        else state.learned_slack_s
                    )
                    if learned is not None and learned > 0:
                        elapsed = now - state.run_started
                        if elapsed >= cfg.preswitch_fraction * learned:
                            # prepare for the opposite phase
                            if state.phase == "slack":
                                cpu.set_speed_index(cpu.opoints.max_index)
                            else:
                                cpu.set_speed_index(0)
                            state.preswitched = True
        except Interrupt:
            return


class _PredictiveController:
    """Per-node sampled-control replica of :meth:`_daemon`'s loop body.

    One ``step`` call is one poll.  The returned tuple lists, in call
    order, every ``set_speed_index`` target the generator would issue
    this poll: the mid-band drift's ``step_down`` (relative to the
    pre-poll gear — the poll's first and only earlier call), then
    either the hysteresis phase entry *or* (never both — drifting
    implies the sample agrees with the current phase) the predictive
    pre-switch.  All float expressions — the utilization window, the
    EMA learning in :meth:`PredictiveDaemonStrategy._learn`, the
    pre-switch comparison — are the daemon's own, via the strategy's
    methods where they exist.
    """

    __slots__ = ("strategy", "state")

    def __init__(self, strategy: PredictiveDaemonStrategy) -> None:
        self.strategy = strategy
        # The daemon builds its state at t=0, before the job starts:
        # env.now == 0.0 and busy_seconds() reads 0.0.
        self.state = _NodeState(0.0, 0.0)

    def step(
        self, now: float, busy: float, index: int, max_index: int
    ) -> tuple[int, ...]:
        cfg = self.strategy.config
        state = self.state
        calls: list[int] = []
        window = now - state.prev_time
        util = (busy - state.prev_busy) / window if window > 0 else 0.0
        state.prev_busy, state.prev_time = busy, now

        # classify this sample
        if util >= cfg.high_threshold:
            sample = "busy"
            state.mid_count = 0
        elif util <= cfg.low_threshold:
            sample = "slack"
            state.mid_count = 0
        else:
            sample = state.phase
            state.mid_count += 1
            if state.mid_count >= cfg.drift_samples:
                state.mid_count = 0
                calls.append(max(index - 1, 0))  # cpu.step_down()

        # hysteresis: require agreement before switching
        if sample != state.phase:
            if sample == state.candidate:
                state.agree_count += 1
            else:
                state.candidate = sample
                state.agree_count = 1
            if state.agree_count >= cfg.hysteresis_samples:
                # _enter_phase (learn, flip phase, jump to the target)
                self.strategy._learn(state, state.phase, now - state.run_started)
                state.phase = sample
                state.run_started = now
                state.preswitched = False
                calls.append(max_index if sample == "busy" else 0)
                state.candidate = None
                state.agree_count = 0
            return tuple(calls)
        state.candidate = None
        state.agree_count = 0

        # prediction: pre-switch near the learned end of a run
        if cfg.predictive and not state.preswitched:
            learned = (
                state.learned_busy_s
                if state.phase == "busy"
                else state.learned_slack_s
            )
            if learned is not None and learned > 0:
                elapsed = now - state.run_started
                if elapsed >= cfg.preswitch_fraction * learned:
                    calls.append(0 if state.phase == "busy" else max_index)
                    state.preswitched = True
        return tuple(calls)
