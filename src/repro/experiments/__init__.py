"""Reproduction harness for every table and figure in the paper.

* :mod:`repro.experiments.calibration` — the paper's published numbers
  (Table 2, figure claims) used as references in reports and tests.
* :mod:`repro.experiments.runner` — grid runners (frequency sweeps,
  strategy comparisons) with normalization.
* :mod:`repro.experiments.tables` / :mod:`repro.experiments.figures` —
  one function per paper table/figure, returning structured results.
* :mod:`repro.experiments.parallel` — the parallel experiment engine
  every grid helper routes through (worker pools + measurement cache).
* :mod:`repro.experiments.report` — plain-text rendering.
* :mod:`repro.experiments.cli` — ``repro-experiments`` entry point.
"""

from repro.experiments.parallel import ParallelRunner, RunTask, current_runner, use
from repro.experiments.runner import (
    SweepResult,
    frequency_sweep,
    normalized_point,
    run_baseline,
)
from repro.experiments import calibration, figures, tables, report

__all__ = [
    "ParallelRunner",
    "RunTask",
    "SweepResult",
    "calibration",
    "current_runner",
    "figures",
    "frequency_sweep",
    "normalized_point",
    "report",
    "run_baseline",
    "tables",
    "use",
]
