"""Reproduction harness for every table and figure in the paper.

* :mod:`repro.experiments.calibration` — the paper's published numbers
  (Table 2, figure claims) used as references in reports and tests.
* :mod:`repro.experiments.runner` — grid runners (frequency sweeps,
  strategy comparisons) with normalization.
* :mod:`repro.experiments.tables` / :mod:`repro.experiments.figures` —
  one function per paper table/figure, returning structured results.
* :mod:`repro.experiments.report` — plain-text rendering.
* :mod:`repro.experiments.cli` — ``repro-experiments`` entry point.
"""

from repro.experiments.runner import (
    SweepResult,
    frequency_sweep,
    normalized_point,
    run_baseline,
)
from repro.experiments import calibration, figures, tables, report

__all__ = [
    "SweepResult",
    "calibration",
    "figures",
    "frequency_sweep",
    "normalized_point",
    "report",
    "run_baseline",
    "tables",
]
