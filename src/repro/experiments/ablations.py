"""Ablation studies on the design choices DESIGN.md calls out.

The paper leaves several axes to "future work"; these studies sweep
them on the simulator:

* :func:`daemon_interval_study` — the v1.1 → v1.2.1 change was the
  polling interval: sweep it (the paper's Section 5.1 motivation).
* :func:`daemon_threshold_study` — "we intend to study the affects of
  varying thresholds" (Section 5.1).
* :func:`transition_latency_study` — INTERNAL scheduling granularity vs
  DVS mode-transition cost (Section 3.3's trade-off).
* :func:`network_speed_study` — how comm-phase savings shrink as the
  fabric gets faster (the substrate choice behind NEMO's 100 Mb study).
* :func:`scaling_study` — savings vs node count for one code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.network import NetworkParameters
from repro.experiments.parallel import RunTask, current_runner
from repro.core.strategies import (
    CpuspeedConfig,
    CpuspeedDaemonStrategy,
    InternalStrategy,
    NoDvsStrategy,
    PhasePolicy,
)
from repro.workloads import get_workload

__all__ = [
    "AblationPoint",
    "daemon_interval_study",
    "daemon_threshold_study",
    "transition_latency_study",
    "network_speed_study",
    "scaling_study",
]


@dataclass(frozen=True)
class AblationPoint:
    """One swept setting and its normalized outcome."""

    setting: float
    norm_delay: float
    norm_energy: float

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.norm_energy


def _normalized(workload, strategy, seed=0, **kwargs):
    base, m = _normalized_many([(workload, strategy, kwargs)], seed=seed)[0]
    return m.normalized_against(base)


def _normalized_many(configs, seed=0):
    """Run (baseline, strategy) for every (workload, strategy, kwargs)
    triple as one flat batch; returns [(baseline, measurement), ...]."""
    tasks = []
    for workload, strategy, kwargs in configs:
        tasks.append(RunTask(workload, NoDvsStrategy(), seed, dict(kwargs)))
        tasks.append(RunTask(workload, strategy, seed, dict(kwargs)))
    results = current_runner().map_sweep(tasks)
    return [(results[2 * i], results[2 * i + 1]) for i in range(len(configs))]


def daemon_interval_study(
    code: str = "FT",
    klass: str = "B",
    intervals_s: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 4.0, 8.0),
    seed: int = 0,
) -> list[AblationPoint]:
    """CPUSPEED polling interval sweep on one code.

    Too short and the daemon reacts to noise inside phases (v1.1's
    regime); too long and it lags every phase change.
    """
    workload = get_workload(code, klass=klass)
    configs = [
        (workload, CpuspeedDaemonStrategy(CpuspeedConfig(interval_s=interval)), {})
        for interval in intervals_s
    ]
    return [
        AblationPoint(interval, *m.normalized_against(base))
        for interval, (base, m) in zip(intervals_s, _normalized_many(configs, seed=seed))
    ]


def daemon_threshold_study(
    code: str = "MG",
    klass: str = "B",
    usage_thresholds: Sequence[float] = (60.0, 70.0, 80.0, 90.0),
    seed: int = 0,
) -> list[AblationPoint]:
    """Step-down threshold sweep (paper's stated future work).

    Lower thresholds keep the daemon fast (less saving, less delay);
    higher thresholds make it slide toward the slowest point.
    """
    workload = get_workload(code, klass=klass)
    configs = []
    for usage in usage_thresholds:
        config = CpuspeedConfig(
            interval_s=2.0,
            minimum_threshold=min(50.0, usage - 10.0),
            usage_threshold=usage,
            maximum_threshold=max(95.0, usage + 5.0),
        )
        configs.append((workload, CpuspeedDaemonStrategy(config), {}))
    return [
        AblationPoint(usage, *m.normalized_against(base))
        for usage, (base, m) in zip(
            usage_thresholds, _normalized_many(configs, seed=seed)
        )
    ]


def transition_latency_study(
    code: str = "FT",
    klass: str = "B",
    latencies_s: Sequence[float] = (10e-6, 100e-6, 1e-3, 10e-3, 100e-3),
    low_phase: Optional[str] = None,
    seed: int = 0,
) -> list[AblationPoint]:
    """INTERNAL phase scheduling vs DVS transition cost.

    At 10 us (SpeedStep) the FT policy is free; by ~100 ms per
    transition the policy's delay cost eats the gains — the paper's
    granularity condition ("period duration outweighs voltage state
    transition costs") made quantitative.
    """
    workload = get_workload(code, klass=klass)
    phase = low_phase or ("alltoall" if "alltoall" in workload.phases else workload.phases[-1])
    policy = PhasePolicy({phase}, low_mhz=600, high_mhz=1400)
    configs = [
        (
            workload,
            InternalStrategy(policy, label=f"lat={latency:g}"),
            {"transition_latency_s": latency},
        )
        for latency in latencies_s
    ]
    return [
        AblationPoint(latency, *m.normalized_against(base))
        for latency, (base, m) in zip(latencies_s, _normalized_many(configs, seed=seed))
    ]


def network_speed_study(
    code: str = "FT",
    klass: str = "B",
    bandwidth_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    seed: int = 0,
) -> list[AblationPoint]:
    """How INTERNAL comm-phase savings change with fabric bandwidth.

    Faster networks shrink the communication share, and with it the
    slack DVS exploits — total energy saving falls even though the
    policy stays optimal for its phase.
    """
    workload = get_workload(code, klass=klass)
    base_params = NetworkParameters()
    phase = "alltoall" if "alltoall" in workload.phases else workload.phases[-1]
    policy = PhasePolicy({phase}, low_mhz=600, high_mhz=1400)
    configs = [
        (
            workload,
            InternalStrategy(policy, label=f"bw x{scale:g}"),
            {
                "network_params": NetworkParameters(
                    bandwidth_Bps=base_params.bandwidth_Bps * scale,
                    latency_s=base_params.latency_s,
                )
            },
        )
        for scale in bandwidth_scales
    ]
    return [
        AblationPoint(scale, *m.normalized_against(base))
        for scale, (base, m) in zip(
            bandwidth_scales, _normalized_many(configs, seed=seed)
        )
    ]


def scaling_study(
    code: str = "FT",
    klass: str = "B",
    node_counts: Sequence[int] = (2, 4, 8, 16),
    seed: int = 0,
) -> list[AblationPoint]:
    """Savings vs node count under INTERNAL scheduling for one code."""
    configs = []
    for n in node_counts:
        workload = get_workload(code, klass=klass, nprocs=n)
        phase = "alltoall" if "alltoall" in workload.phases else workload.phases[-1]
        policy = PhasePolicy({phase}, low_mhz=600, high_mhz=1400)
        configs.append((workload, InternalStrategy(policy), {}))
    return [
        AblationPoint(float(n), *m.normalized_against(base))
        for n, (base, m) in zip(node_counts, _normalized_many(configs, seed=seed))
    ]
