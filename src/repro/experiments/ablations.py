"""Ablation studies on the design choices DESIGN.md calls out.

The paper leaves several axes to "future work"; these studies sweep
them on the simulator:

* :func:`daemon_interval_study` — the v1.1 → v1.2.1 change was the
  polling interval: sweep it (the paper's Section 5.1 motivation).
* :func:`daemon_threshold_study` — "we intend to study the affects of
  varying thresholds" (Section 5.1).
* :func:`transition_latency_study` — INTERNAL scheduling granularity vs
  DVS mode-transition cost (Section 3.3's trade-off).
* :func:`network_speed_study` — how comm-phase savings shrink as the
  fabric gets faster (the substrate choice behind NEMO's 100 Mb study).
* :func:`scaling_study` — savings vs node count for one code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.network import NetworkParameters
from repro.core.framework import run_workload
from repro.core.strategies import (
    CpuspeedConfig,
    CpuspeedDaemonStrategy,
    InternalStrategy,
    NoDvsStrategy,
    PhasePolicy,
)
from repro.workloads import get_workload

__all__ = [
    "AblationPoint",
    "daemon_interval_study",
    "daemon_threshold_study",
    "transition_latency_study",
    "network_speed_study",
    "scaling_study",
]


@dataclass(frozen=True)
class AblationPoint:
    """One swept setting and its normalized outcome."""

    setting: float
    norm_delay: float
    norm_energy: float

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.norm_energy


def _normalized(workload, strategy, seed=0, **kwargs):
    base = run_workload(workload, NoDvsStrategy(), seed=seed, **kwargs)
    m = run_workload(workload, strategy, seed=seed, **kwargs)
    return m.normalized_against(base)


def daemon_interval_study(
    code: str = "FT",
    klass: str = "B",
    intervals_s: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 4.0, 8.0),
    seed: int = 0,
) -> list[AblationPoint]:
    """CPUSPEED polling interval sweep on one code.

    Too short and the daemon reacts to noise inside phases (v1.1's
    regime); too long and it lags every phase change.
    """
    workload = get_workload(code, klass=klass)
    points = []
    for interval in intervals_s:
        strategy = CpuspeedDaemonStrategy(CpuspeedConfig(interval_s=interval))
        d, e = _normalized(workload, strategy, seed=seed)
        points.append(AblationPoint(interval, d, e))
    return points


def daemon_threshold_study(
    code: str = "MG",
    klass: str = "B",
    usage_thresholds: Sequence[float] = (60.0, 70.0, 80.0, 90.0),
    seed: int = 0,
) -> list[AblationPoint]:
    """Step-down threshold sweep (paper's stated future work).

    Lower thresholds keep the daemon fast (less saving, less delay);
    higher thresholds make it slide toward the slowest point.
    """
    workload = get_workload(code, klass=klass)
    points = []
    for usage in usage_thresholds:
        config = CpuspeedConfig(
            interval_s=2.0,
            minimum_threshold=min(50.0, usage - 10.0),
            usage_threshold=usage,
            maximum_threshold=max(95.0, usage + 5.0),
        )
        d, e = _normalized(workload, CpuspeedDaemonStrategy(config), seed=seed)
        points.append(AblationPoint(usage, d, e))
    return points


def transition_latency_study(
    code: str = "FT",
    klass: str = "B",
    latencies_s: Sequence[float] = (10e-6, 100e-6, 1e-3, 10e-3, 100e-3),
    low_phase: Optional[str] = None,
    seed: int = 0,
) -> list[AblationPoint]:
    """INTERNAL phase scheduling vs DVS transition cost.

    At 10 us (SpeedStep) the FT policy is free; by ~100 ms per
    transition the policy's delay cost eats the gains — the paper's
    granularity condition ("period duration outweighs voltage state
    transition costs") made quantitative.
    """
    workload = get_workload(code, klass=klass)
    phase = low_phase or ("alltoall" if "alltoall" in workload.phases else workload.phases[-1])
    policy = PhasePolicy({phase}, low_mhz=600, high_mhz=1400)
    points = []
    for latency in latencies_s:
        d, e = _normalized(
            workload,
            InternalStrategy(policy, label=f"lat={latency:g}"),
            seed=seed,
            transition_latency_s=latency,
        )
        points.append(AblationPoint(latency, d, e))
    return points


def network_speed_study(
    code: str = "FT",
    klass: str = "B",
    bandwidth_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    seed: int = 0,
) -> list[AblationPoint]:
    """How INTERNAL comm-phase savings change with fabric bandwidth.

    Faster networks shrink the communication share, and with it the
    slack DVS exploits — total energy saving falls even though the
    policy stays optimal for its phase.
    """
    workload = get_workload(code, klass=klass)
    base_params = NetworkParameters()
    phase = "alltoall" if "alltoall" in workload.phases else workload.phases[-1]
    policy = PhasePolicy({phase}, low_mhz=600, high_mhz=1400)
    points = []
    for scale in bandwidth_scales:
        params = NetworkParameters(
            bandwidth_Bps=base_params.bandwidth_Bps * scale,
            latency_s=base_params.latency_s,
        )
        d, e = _normalized(
            workload,
            InternalStrategy(policy, label=f"bw x{scale:g}"),
            seed=seed,
            network_params=params,
        )
        points.append(AblationPoint(scale, d, e))
    return points


def scaling_study(
    code: str = "FT",
    klass: str = "B",
    node_counts: Sequence[int] = (2, 4, 8, 16),
    seed: int = 0,
) -> list[AblationPoint]:
    """Savings vs node count under INTERNAL scheduling for one code."""
    points = []
    for n in node_counts:
        workload = get_workload(code, klass=klass, nprocs=n)
        phase = "alltoall" if "alltoall" in workload.phases else workload.phases[-1]
        policy = PhasePolicy({phase}, low_mhz=600, high_mhz=1400)
        d, e = _normalized(workload, InternalStrategy(policy), seed=seed)
        points.append(AblationPoint(float(n), d, e))
    return points
