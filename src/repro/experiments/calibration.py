"""Published reference values from the paper.

``PAPER_TABLE2`` transcribes Table 2 ("Energy-performance profiles of
NPB benchmarks"): per code and CPU-speed column, (normalized delay,
normalized energy).  The "auto" column is the CPUSPEED daemon.  The
paper prints only partial results; missing cells are ``None``.

The figure-level claims quoted in Section 5 are collected in
``PAPER_CLAIMS`` and used by EXPERIMENTS.md generation and the
reproduction tests (shape checks, not exact-number checks).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "FREQUENCIES_MHZ",
    "PAPER_TABLE2",
    "PAPER_CRESCENDO_TYPES",
    "PAPER_CLAIMS",
    "table2_profile",
]

#: The static external frequencies of Table 2 (MHz).
FREQUENCIES_MHZ = (600.0, 800.0, 1000.0, 1200.0, 1400.0)

#: code -> column -> (normalized delay, normalized energy).
#: Columns: "auto" (CPUSPEED) and the five static frequencies.
PAPER_TABLE2: dict[str, dict[str, Optional[tuple[float, float]]]] = {
    "BT": {
        "auto": (1.36, 0.89),
        "600": (1.52, 0.79),
        "800": (1.27, 0.82),
        "1000": (1.14, 0.87),
        "1200": (1.05, 0.96),
        "1400": (1.00, 1.00),
    },
    "CG": {
        "auto": (1.14, 0.65),
        "600": (1.14, 0.65),
        "800": (1.08, 0.72),
        "1000": (1.04, 0.80),
        "1200": (1.02, 0.93),
        "1400": (1.00, 1.00),
    },
    "EP": {
        "auto": (1.01, 0.97),
        "600": (2.35, 1.15),
        "800": (1.75, 1.03),
        "1000": (1.40, 1.02),
        "1200": (1.17, 1.03),
        "1400": (1.00, 1.00),
    },
    "FT": {
        "auto": (1.04, 0.76),
        "600": (1.13, 0.62),
        "800": (1.07, 0.70),
        "1000": (1.04, 0.80),
        "1200": (1.02, 0.93),
        "1400": (1.00, 1.00),
    },
    "IS": {
        "auto": (1.02, 0.75),
        "600": (1.04, 0.68),
        "800": (1.01, 0.73),
        "1000": (0.91, 0.75),
        "1200": (1.03, 0.94),
        "1400": (1.00, 1.00),
    },
    "LU": {
        "auto": (1.01, 0.96),
        "600": (1.58, 0.79),
        "800": (1.32, 0.82),
        "1000": (1.18, 0.88),
        "1200": (1.07, 0.95),
        "1400": (1.00, 1.00),
    },
    "MG": {
        "auto": (1.32, 0.87),
        "600": (1.39, 0.76),
        "800": (1.21, 0.79),
        "1000": (1.10, 0.85),
        "1200": (1.04, 0.97),
        "1400": (1.00, 1.00),
    },
    # The SP row is cut off in the published table; delay values are
    # printed, energies (except the trivial 1400 column) are not.
    "SP": {
        "auto": (1.13, None),
        "600": (1.18, None),
        "800": (1.08, None),
        "1000": (1.03, None),
        "1200": (0.99, None),
        "1400": (1.00, 1.00),
    },
}

#: Paper Figure 8's four-way classification.
PAPER_CRESCENDO_TYPES = {
    "EP": "I",
    "BT": "II",
    "MG": "II",
    "LU": "II",
    "FT": "III",
    "CG": "III",
    "SP": "III",
    "IS": "IV",
}

#: Section-5 quantitative claims (fractions, approximate).
PAPER_CLAIMS = {
    # Figure 5 / Section 5.1 — CPUSPEED v1.2.1
    "cpuspeed": {
        "LU": {"energy_saving": 0.04, "delay_increase": 0.01},
        "EP": {"energy_saving": 0.03, "delay_increase": 0.01},
        "IS": {"energy_saving": 0.25, "delay_increase": 0.02},
        "FT": {"energy_saving": 0.24, "delay_increase": 0.04},
        "SP": {"energy_saving": 0.31, "delay_increase": 0.13},
        "CG": {"energy_saving": 0.35, "delay_increase": 0.14},
        "MG": {"energy_saving": 0.21, "delay_increase": 0.32},
        "BT": {"energy_saving": 0.23, "delay_increase": 0.36},
    },
    # Figure 6 / Section 5.2 — EXTERNAL with ED3P selection
    "external_ed3p": {
        "FT": {"energy_saving": 0.30, "delay_increase": 0.07},
        "CG": {"energy_saving": 0.20, "delay_increase": 0.04},
        "SP": {"energy_saving": 0.09, "delay_increase": -0.01},
        "IS": {"energy_saving": 0.25, "delay_increase": -0.09},
        "BT": {"energy_saving": 0.0, "delay_increase": 0.0},
        "EP": {"energy_saving": 0.0, "delay_increase": 0.0},
        "LU": {"energy_saving": 0.0, "delay_increase": 0.0},
        "MG": {"energy_saving": 0.0, "delay_increase": 0.0},
    },
    # Figure 7 — EXTERNAL with ED2P selection
    "external_ed2p": {
        "FT": {"energy_saving": 0.38, "delay_increase": 0.13},
        "CG": {"energy_saving": 0.28, "delay_increase": 0.08},
        "SP": {"energy_saving": 0.19, "delay_increase": 0.03},
    },
    # Figure 11 — FT INTERNAL (1400/600 around all-to-all)
    "ft_internal": {"energy_saving": 0.36, "delay_increase": 0.00},
    # Figure 14 — CG INTERNAL heterogeneous rank speeds
    "cg_internal_I": {"energy_saving": 0.23, "delay_increase": 0.08},
    "cg_internal_II": {"energy_saving": 0.16, "delay_increase": 0.08},
    # Figure 2 — swim single-node crescendo
    "swim": {
        "delay_at_600": 1.25,
        "saving_at_1200": 0.08,
        "delay_at_1200": 1.01,
    },
    # Figure 1 — Pentium III node power breakdown
    "power_breakdown": {"cpu_share_load": 0.35, "cpu_share_idle": 0.15},
}


def table2_profile(code: str) -> dict[float, tuple[float, float]]:
    """Paper Table 2 static-frequency profile for ``code``.

    Returns ``{mhz: (norm_delay, norm_energy)}`` for the cells the
    paper publishes (missing-energy cells are skipped).
    """
    row = PAPER_TABLE2[code.upper()]
    out = {}
    for col, cell in row.items():
        if col == "auto" or cell is None:
            continue
        delay, energy = cell
        if energy is None:
            continue
        out[float(col)] = (delay, energy)
    return out
