"""Full reproduction campaign — everything, one artifact.

Runs every table and figure (plus fidelity scoring and, optionally, the
extension benches) and writes a single markdown report.  This is the
"rebuild the paper" button:

    repro-experiments report            # writes REPORT.md
    python -m repro.experiments.campaign --out REPORT.md -j 4

The whole campaign runs through one
:class:`~repro.experiments.parallel.ParallelRunner`, so sweep points
shared between figures (and each workload's no-DVS baseline) simulate
exactly once, ``--jobs`` fans independent runs over worker processes,
and ``--cache-dir`` persists every point across campaigns.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.experiments import figures, report, tables
from repro.experiments.parallel import ParallelRunner, use
from repro.faults import FaultSpec, parse_fault_spec
from repro.experiments.plotting import crescendo_chart
from repro.experiments.validation import score_table2

__all__ = ["run_campaign", "main"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def run_campaign(
    klass: str = "C",
    seed: int = 0,
    codes: Optional[Sequence[str]] = None,
    with_charts: bool = True,
    with_optimal: bool = False,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    faults: Optional["FaultSpec"] = None,
) -> str:
    """Regenerate every table/figure; return the markdown report.

    ``jobs`` > 1 fans the simulation grid over worker processes;
    ``cache_dir`` enables the on-disk measurement cache.  Results are
    identical to a serial, uncached campaign in either case.  A
    ``faults`` spec reruns the whole campaign inside that deterministic
    fault environment and appends a degradation section to the report.
    ``with_optimal`` appends the offline gear-plan optimizer's computed
    frontiers for FT and CG (docs/optimizer.md) — extra simulation work
    beyond the paper's own figures, so off by default.
    """
    with ParallelRunner(
        jobs=jobs, cache_dir=cache_dir, faults=faults
    ) as runner, use(runner):
        return _run_campaign_body(
            runner, klass, seed, codes, with_charts, faults, with_optimal
        )


def _run_campaign_body(
    runner: ParallelRunner,
    klass: str,
    seed: int,
    codes: Optional[Sequence[str]],
    with_charts: bool,
    faults: Optional["FaultSpec"] = None,
    with_optimal: bool = False,
) -> str:
    t_start = time.perf_counter()
    parts: list[str] = []
    parts.append(
        "# Reproduction report\n\n"
        "*Performance-constrained Distributed DVS Scheduling for "
        "Scientific Applications on Power-aware Clusters* (SC'05) — "
        f"regenerated on the simulated NEMO cluster (class {klass}, "
        f"seed {seed}).\n"
    )

    # Tables ------------------------------------------------------------
    parts.append(_section("Table 1 — operating points",
                          report.render_table1(tables.table1())))
    rows = tables.table2(codes=codes, klass=klass, seed=seed)
    sweeps = {c: r.sweep for c, r in rows.items()}
    parts.append(_section("Table 2 — energy-performance profiles",
                          report.render_table2(rows)))
    fidelity = score_table2(rows)
    parts.append(_section("Fidelity vs the published Table 2",
                          fidelity.render()))

    # Figures -----------------------------------------------------------
    parts.append(_section(
        "Figure 1 — node power breakdown",
        report.render_breakdown(figures.figure1_power_breakdown()),
    ))
    swim = figures.figure2_swim_crescendo(seed=seed)
    body = report.render_sweep(swim, "swim, one node")
    if with_charts:
        body += "\n\n" + crescendo_chart(swim.normalized, title="swim crescendo")
    parts.append(_section("Figure 2 — swim energy-delay crescendo", body))

    parts.append(_section(
        "Figure 5 — CPUSPEED daemon",
        report.render_comparison(
            figures.figure5_cpuspeed(codes=codes, klass=klass, seed=seed)
        ),
    ))  # baselines dedupe through the campaign runner's memo
    parts.append(_section(
        "Figure 6 — EXTERNAL with ED3P",
        report.render_selection(
            figures.figure6_external_ed3p(codes=codes, klass=klass, seed=seed,
                                          sweeps=sweeps)
        ),
    ))
    parts.append(_section(
        "Figure 7 — EXTERNAL with ED2P",
        report.render_selection(
            figures.figure7_external_ed2p(codes=codes, klass=klass, seed=seed,
                                          sweeps=sweeps)
        ),
    ))
    fig8 = figures.figure8_crescendos(codes=codes, klass=klass, seed=seed,
                                      sweeps=sweeps)
    body = report.render_crescendos(fig8)
    if with_charts:
        for code in sorted(fig8.crescendos):
            body += "\n\n" + crescendo_chart(
                dict(fig8.crescendos[code].points),
                title=f"{code} (Type {fig8.types[code].value})",
                height=10,
            )
    parts.append(_section("Figure 8 — crescendos and taxonomy", body))

    ft_trace = figures.figure9_ft_trace(klass=klass, seed=seed)
    parts.append(_section(
        "Figure 9 — FT trace",
        report.render_trace_observations(ft_trace)
        + "\n\n" + ft_trace.timeline(width=96),
    ))
    parts.append(_section(
        "Figure 11 — FT INTERNAL case study",
        report.render_internal(
            figures.figure11_ft_internal(klass=klass, seed=seed,
                                         sweep=sweeps.get("FT"))
        ),
    ))
    parts.append(_section(
        "Figure 12 — CG trace",
        report.render_trace_observations(
            figures.figure12_cg_trace(klass=klass, seed=seed)
        ),
    ))
    parts.append(_section(
        "Figure 14 — CG INTERNAL case study",
        report.render_internal(
            figures.figure14_cg_internal(klass=klass, seed=seed,
                                         sweep=sweeps.get("CG"))
        ),
    ))

    if with_optimal:
        for code in ("FT", "CG"):
            parts.append(_section(
                f"Computed frontier — {code} (beyond the paper)",
                report.render_optimal(
                    figures.figure_optimal_frontier(code, klass=klass, seed=seed)
                ),
            ))

    if faults is not None:
        parts.append(_section(
            "Fault injection",
            report.render_fault_summary(faults, runner.stats),
        ))

    elapsed = time.perf_counter() - t_start
    parts.append(
        f"---\n\n*Campaign wall time: {elapsed:.1f}s "
        f"({runner.jobs} worker{'s' if runner.jobs != 1 else ''}, "
        f"{runner.stats.render()}); "
        f"mean Table 2 errors: delay {fidelity.mean_delay_error:.3f}, "
        f"energy {fidelity.mean_energy_error:.3f}.*\n"
    )
    return "\n".join(parts)


def write_report(
    path: Union[str, Path],
    klass: str = "C",
    seed: int = 0,
    codes: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    faults: Optional["FaultSpec"] = None,
    with_optimal: bool = False,
) -> Path:
    path = Path(path)
    path.write_text(run_campaign(klass=klass, seed=seed, codes=codes,
                                 jobs=jobs, cache_dir=cache_dir,
                                 faults=faults, with_optimal=with_optimal))
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the full reproduction report."
    )
    parser.add_argument("--out", default="REPORT.md")
    parser.add_argument("--class", dest="klass", default="C")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--codes", nargs="*", default=None)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for independent runs")
    parser.add_argument("--cache-dir", default=None,
                        help="enable the on-disk measurement cache here")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault spec, e.g. 'mild,seed=3' "
                             "(see docs/faults.md)")
    parser.add_argument("--optimal", action="store_true",
                        help="append the computed FT/CG gear-plan frontiers "
                             "(docs/optimizer.md)")
    args = parser.parse_args(argv)
    faults = parse_fault_spec(args.faults) if args.faults else None
    path = write_report(args.out, klass=args.klass, seed=args.seed,
                        codes=args.codes, jobs=args.jobs,
                        cache_dir=args.cache_dir, faults=faults,
                        with_optimal=args.optimal)
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
