"""``repro-experiments`` — regenerate any paper table or figure.

Examples::

    repro-experiments table1
    repro-experiments table2 --codes FT CG --class C
    repro-experiments fig2
    repro-experiments fig5
    repro-experiments fig6 fig7 fig8        # shares one sweep set
    repro-experiments fig9 fig11 fig12 fig14
    repro-experiments all -j 4              # fan runs over 4 workers

Every simulation routes through the parallel experiment engine: the
on-disk measurement cache is on by default (``--no-cache`` to disable,
``--cache-dir`` to relocate, ``--clear-cache`` to wipe it first) and
``--jobs/-j`` fans independent runs over worker processes.  Results
are bit-for-bit identical to a serial, uncached run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import figures, report, tables
from repro.experiments.parallel import ParallelRunner, use

__all__ = ["main"]

KNOWN = (
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "fig14",
    "ablations",
    "advise",
    "optimize",
    "report",
    "serve",
    "all",
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=KNOWN,
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--codes", nargs="*", default=None, help="restrict to these NPB codes"
    )
    parser.add_argument(
        "--class",
        dest="klass",
        default="C",
        help="NPB problem class (default C; T is a fast tiny class)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for independent simulation runs (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="measurement cache root (default $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk measurement cache for this invocation",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="wipe the measurement cache before running",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject deterministic faults into every run: a preset "
            "(none/mild/harsh) and/or comma-separated key=value overrides, "
            "e.g. 'mild,seed=3' or 'fail=0.2,dropout=0.1' (see docs/faults.md)"
        ),
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="also archive the raw sweep measurements to a JSON file",
    )
    optimize = parser.add_argument_group(
        "optimize", "options for the offline gear-plan optimizer (docs/optimizer.md)"
    )
    optimize.add_argument(
        "--delta",
        type=float,
        default=0.05,
        help=(
            "performance constraint for 'optimize': allowed slowdown over "
            "the no-DVS baseline (default 0.05 = 5%%)"
        ),
    )
    optimize.add_argument(
        "--optimal",
        action="store_true",
        help="also enter the computed optimal plan as an 'advise' candidate",
    )
    service = parser.add_argument_group(
        "serve", "options for the schedule-advisor service (docs/service.md)"
    )
    service.add_argument("--host", default="127.0.0.1")
    service.add_argument(
        "--port", type=int, default=8763, help="TCP port (0 picks a free one)"
    )
    service.add_argument(
        "--window-ms",
        type=float,
        default=5.0,
        help="admission batching window in milliseconds (default 5)",
    )
    service.add_argument(
        "--max-queue",
        type=int,
        default=4096,
        help="admission queue bound; beyond it requests get 'overloaded'",
    )
    service.add_argument(
        "--tenant-inflight",
        type=int,
        default=64,
        help="per-tenant in-flight request cap (default 64)",
    )
    service.add_argument(
        "--tenant-qps",
        type=float,
        default=None,
        help="per-tenant sustained queries/s cap (default unlimited)",
    )
    service.add_argument(
        "--no-warm-cache",
        action="store_true",
        help="skip preloading the hot LRU from the cache directory",
    )
    return parser


def _run_ablations(args) -> str:
    from repro.experiments import ablations
    from repro.experiments.report import render_table

    def table(points, label):
        rows = [
            (f"{p.setting:g}", f"{p.norm_delay:.3f}", f"{p.norm_energy:.3f}")
            for p in points
        ]
        return render_table([label, "Norm delay", "Norm energy"], rows)

    sections = [
        ("Ablation: CPUSPEED polling interval (FT)",
         table(ablations.daemon_interval_study(klass=args.klass), "interval (s)")),
        ("Ablation: CPUSPEED usage threshold (MG)",
         table(ablations.daemon_threshold_study(klass=args.klass), "threshold (%)")),
        ("Ablation: DVS transition latency vs INTERNAL FT",
         table(ablations.transition_latency_study(klass=args.klass), "latency (s)")),
        ("Ablation: fabric bandwidth vs INTERNAL FT",
         table(ablations.network_speed_study(klass=args.klass), "bandwidth x")),
        ("Ablation: node count vs INTERNAL FT",
         table(ablations.scaling_study(klass=args.klass), "nodes")),
    ]
    return "\n\n".join(f"{title}\n{body}" for title, body in sections)


def _run_advisor(args) -> str:
    from repro.core import ScheduleAdvisor
    from repro.workloads import get_workload
    from repro.experiments.tables import NPB_CODES

    advisor = ScheduleAdvisor(
        include_optimal=args.optimal,
        max_delay_increase=args.delta if args.optimal else None,
    )
    out = []
    for code in args.codes or ("FT", "CG", "EP"):
        code = code.upper()
        workload = get_workload(code, klass=args.klass, nprocs=NPB_CODES.get(code, 8))
        out.append(advisor.advise(workload).render())
    return "\n\n".join(out)


def _run_optimize(args) -> str:
    from repro.experiments.figures import figure_optimal_frontier
    from repro.experiments.report import render_optimal

    out = []
    for code in args.codes or ("FT", "CG"):
        out.append(
            render_optimal(
                figure_optimal_frontier(
                    code, klass=args.klass, seed=args.seed, delta=args.delta
                )
            )
        )
    return "\n\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    targets = list(args.targets)
    if "all" in targets:
        targets = [
            t for t in KNOWN
            if t not in ("all", "ablations", "advise", "optimize", "report", "serve")
        ]
    if "serve" in targets and len(targets) != 1:
        print("serve runs forever and cannot be combined with other targets")
        return 2

    from repro.experiments.store import default_cache_dir

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    if args.clear_cache and cache_dir is not None:
        from repro.experiments.store import MeasurementCache

        removed = MeasurementCache(cache_dir).clear()
        print(f"[cleared {removed} cached measurements from {cache_dir}]")

    faults = None
    if args.faults:
        from repro.faults import parse_fault_spec

        faults = parse_fault_spec(args.faults)
        if faults.active:
            print(f"[injecting faults: {faults.describe()}]")

    if targets == ["serve"]:
        from repro.service import ServiceConfig, TenantQuota, run_server

        config = ServiceConfig(
            host=args.host,
            port=args.port,
            window_s=args.window_ms / 1000.0,
            max_queue=args.max_queue,
            quota=TenantQuota(
                max_in_flight=args.tenant_inflight, qps=args.tenant_qps
            ),
            jobs=args.jobs,
            cache_dir=cache_dir,
            warm_cache=not args.no_warm_cache,
            faults=faults,
        )
        print(
            f"[schedule-advisor service on {config.host}:{config.port}; "
            f"cache={config.cache_dir or 'off'}, jobs={config.jobs}]"
        )
        run_server(config)
        return 0

    with ParallelRunner(
        jobs=args.jobs, cache_dir=cache_dir, faults=faults
    ) as runner, use(runner):
        return _dispatch(args, targets, runner)


def _dispatch(args, targets, runner) -> int:
    out = []
    sweeps = None
    table2_rows = None

    def ensure_sweeps():
        nonlocal sweeps, table2_rows
        if sweeps is None:
            table2_rows = tables.table2(
                codes=args.codes, klass=args.klass, seed=args.seed
            )
            sweeps = {c: r.sweep for c, r in table2_rows.items()}
        return sweeps

    for target in targets:
        if target == "table1":
            out.append(report.render_table1(tables.table1()))
        elif target == "table2":
            ensure_sweeps()
            out.append(report.render_table2(table2_rows))
        elif target == "fig1":
            out.append(report.render_breakdown(figures.figure1_power_breakdown()))
        elif target == "fig2":
            out.append(
                report.render_sweep(
                    figures.figure2_swim_crescendo(seed=args.seed),
                    "Figure 2: swim energy-delay crescendo",
                )
            )
        elif target == "fig5":
            out.append(
                report.render_comparison(
                    figures.figure5_cpuspeed(
                        codes=args.codes, klass=args.klass, seed=args.seed
                    ),
                    "Figure 5: CPUSPEED daemon (v1.2.1)",
                )
            )
        elif target == "fig6":
            out.append(
                report.render_selection(
                    figures.figure6_external_ed3p(
                        codes=args.codes, klass=args.klass, seed=args.seed,
                        sweeps=ensure_sweeps(),
                    )
                )
            )
        elif target == "fig7":
            out.append(
                report.render_selection(
                    figures.figure7_external_ed2p(
                        codes=args.codes, klass=args.klass, seed=args.seed,
                        sweeps=ensure_sweeps(),
                    )
                )
            )
        elif target == "fig8":
            out.append(
                report.render_crescendos(
                    figures.figure8_crescendos(
                        codes=args.codes, klass=args.klass, seed=args.seed,
                        sweeps=ensure_sweeps(),
                    )
                )
            )
        elif target == "fig9":
            out.append(
                report.render_trace_observations(
                    figures.figure9_ft_trace(klass=args.klass, seed=args.seed)
                )
            )
        elif target == "fig11":
            out.append(
                report.render_internal(
                    figures.figure11_ft_internal(klass=args.klass, seed=args.seed)
                )
            )
        elif target == "fig12":
            out.append(
                report.render_trace_observations(
                    figures.figure12_cg_trace(klass=args.klass, seed=args.seed)
                )
            )
        elif target == "fig14":
            out.append(
                report.render_internal(
                    figures.figure14_cg_internal(klass=args.klass, seed=args.seed)
                )
            )
        elif target == "ablations":
            out.append(_run_ablations(args))
        elif target == "advise":
            out.append(_run_advisor(args))
        elif target == "optimize":
            out.append(_run_optimize(args))
        elif target == "report":
            from repro.experiments.campaign import write_report

            path = write_report(
                "REPORT.md", klass=args.klass, seed=args.seed, codes=args.codes,
                jobs=args.jobs,
                cache_dir=runner.cache.root if runner.cache is not None else None,
                with_optimal=args.optimal,
            )
            out.append(f"[full reproduction report written to {path}]")

    print("\n\n".join(out))
    if runner.cache is not None or runner.stats.lookups:
        print(f"\n[{runner.stats.render()}]")

    if args.json_out and table2_rows is not None:
        from repro.experiments.store import save_json, sweep_to_dict

        payload = {
            code: sweep_to_dict(row.sweep) for code, row in table2_rows.items()
        }
        path = save_json(args.json_out, payload)
        print(f"\n[raw sweep measurements written to {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
