"""Figure regeneration — one function per paper figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.sim.engine import Environment
from repro.hardware.cluster import nemo_cluster
from repro.hardware.power import PENTIUM3_POWER
from repro.hardware.power import PENTIUM3_TABLE  # type: ignore[attr-defined]
from repro.mpi.launcher import launch
from repro.powerpack.profiles import PowerProfile
from repro.trace.events import TraceLog
from repro.trace.stats import TraceStats, analyze
from repro.core.crescendo import Crescendo, CrescendoType
from repro.core.framework import Measurement
from repro.core.metrics import ED2P, ED3P, FusedMetric, select_operating_point
from repro.core.strategies import (
    CpuspeedDaemonStrategy,
    InternalStrategy,
    PhasePolicy,
    RankPolicy,
)
from repro.experiments.calibration import FREQUENCIES_MHZ
from repro.experiments.parallel import RunTask, current_runner
from repro.experiments.runner import SweepResult, frequency_sweep, frequency_sweep_many
from repro.experiments.tables import NPB_CODES
from repro.workloads import get_workload

__all__ = [
    "PowerBreakdownResult",
    "figure1_power_breakdown",
    "figure2_swim_crescendo",
    "StrategyComparison",
    "figure5_cpuspeed",
    "MetricSelectionResult",
    "figure6_external_ed3p",
    "figure7_external_ed2p",
    "CrescendoFigure",
    "figure8_crescendos",
    "TraceFigure",
    "figure9_ft_trace",
    "figure11_ft_internal",
    "figure12_cg_trace",
    "figure14_cg_internal",
    "InternalComparison",
    "OptimalFrontierFigure",
    "figure_optimal_frontier",
]


# ----------------------------------------------------------------------
# Figure 1 — node power breakdown under load vs idle (Pentium III node)
# ----------------------------------------------------------------------
@dataclass
class PowerBreakdownResult:
    """Component power shares under load and at idle."""

    load_fractions: dict[str, float]
    idle_fractions: dict[str, float]

    @property
    def cpu_share_load(self) -> float:
        return self.load_fractions["cpu"]

    @property
    def cpu_share_idle(self) -> float:
        return self.idle_fractions["cpu"]


def figure1_power_breakdown(run_seconds: float = 30.0) -> PowerBreakdownResult:
    """Reproduce Figure 1 on the Pentium III node model.

    Runs swim (memory bound, like the paper's measurement) and samples
    the component breakdown; then samples the same node idle.
    """
    env = Environment()
    cluster = nemo_cluster(
        env, 1, power=PENTIUM3_POWER, opoints=PENTIUM3_TABLE, with_batteries=False
    )
    profile = PowerProfile(cluster, interval_s=0.25)
    swim = get_workload("SWIM", steps=max(2, int(run_seconds / 1.5)))
    profile.start()
    handle = launch(cluster, swim.make_program(), nprocs=1)
    env.run(handle.done)
    handle.check()
    profile.stop()
    load = profile.mean_fractions(0)

    idle_profile = PowerProfile(cluster, interval_s=0.25)
    idle_profile.start()
    env.run(until=env.now + run_seconds)
    idle_profile.stop()
    idle = idle_profile.mean_fractions(0)
    return PowerBreakdownResult(load_fractions=load, idle_fractions=idle)


# ----------------------------------------------------------------------
# Figure 2 — swim single-node energy-delay crescendo
# ----------------------------------------------------------------------
def figure2_swim_crescendo(seed: int = 0) -> SweepResult:
    """Reproduce Figure 2: swim at each fixed frequency on one node."""
    swim = get_workload("SWIM")
    return frequency_sweep(swim, FREQUENCIES_MHZ, seed=seed)


# ----------------------------------------------------------------------
# Figure 5 — CPUSPEED daemon across the NPB suite
# ----------------------------------------------------------------------
@dataclass
class StrategyComparison:
    """Normalized (delay, energy) per code for one strategy."""

    strategy: str
    points: dict[str, tuple[float, float]]
    measurements: dict[str, Measurement] = field(default_factory=dict)

    def sorted_by_delay(self) -> list[tuple[str, float, float]]:
        """The paper sorts Figure 5/6/7 by normalized delay."""
        return sorted(
            ((code, d, e) for code, (d, e) in self.points.items()),
            key=lambda t: t[1],
        )


def figure5_cpuspeed(
    codes: Optional[Sequence[str]] = None,
    klass: str = "C",
    interval_s: float = 2.0,
    seed: int = 0,
    baselines: Optional[Mapping[str, Measurement]] = None,
) -> StrategyComparison:
    """Reproduce Figure 5: CPUSPEED v1.2.1 on the NPB codes.

    ``baselines`` (code → no-DVS measurement) lets a campaign share one
    baseline run per workload across figures; missing baselines are
    simulated here (as one batch alongside the daemon runs).
    """
    from repro.core.strategies.cpuspeed import CpuspeedConfig

    code_list = [c.upper() for c in (codes or NPB_CODES)]
    workloads = {
        code: get_workload(code, klass=klass, nprocs=NPB_CODES[code])
        for code in code_list
    }
    config = CpuspeedConfig(interval_s=interval_s)
    tasks: list[RunTask] = []
    baseline_slots: dict[str, int] = {}
    for code in code_list:
        if baselines is None or code not in baselines:
            baseline_slots[code] = len(tasks)
            tasks.append(RunTask(workloads[code], None, seed))
        tasks.append(RunTask(workloads[code], CpuspeedDaemonStrategy(config), seed))
    results = current_runner().map(tasks)

    points: dict[str, tuple[float, float]] = {}
    measurements: dict[str, Measurement] = {}
    cursor = 0
    for code in code_list:
        if code in baseline_slots:
            baseline = results[cursor]
            cursor += 1
        else:
            baseline = baselines[code]
        auto = results[cursor]
        cursor += 1
        points[code] = auto.normalized_against(baseline)
        measurements[code] = auto
    return StrategyComparison("cpuspeed", points, measurements)


# ----------------------------------------------------------------------
# Figures 6/7 — EXTERNAL scheduling with metric-driven selection
# ----------------------------------------------------------------------
@dataclass
class MetricSelectionResult:
    """Figure 6/7: per code, the metric-selected frequency and outcome."""

    metric: str
    selected_mhz: dict[str, float]
    points: dict[str, tuple[float, float]]
    sweeps: dict[str, SweepResult]

    def sorted_by_delay(self) -> list[tuple[str, float, float]]:
        return sorted(
            ((code, d, e) for code, (d, e) in self.points.items()),
            key=lambda t: t[1],
        )


def _external_with_metric(
    metric: FusedMetric,
    codes: Optional[Sequence[str]],
    klass: str,
    seed: int,
    sweeps: Optional[Mapping[str, SweepResult]] = None,
) -> MetricSelectionResult:
    code_list = [c.upper() for c in (codes or NPB_CODES)]
    fresh = _sweep_missing(code_list, sweeps, klass, seed)
    selected: dict[str, float] = {}
    points: dict[str, tuple[float, float]] = {}
    used_sweeps: dict[str, SweepResult] = {}
    for code in code_list:
        sweep = sweeps[code] if sweeps is not None and code in sweeps else fresh[code]
        used_sweeps[code] = sweep
        mhz = select_operating_point(sweep.normalized, metric)
        selected[code] = mhz
        points[code] = sweep.normalized[mhz]
    return MetricSelectionResult(metric.name, selected, points, used_sweeps)


def _sweep_missing(
    code_list: Sequence[str],
    sweeps: Optional[Mapping[str, SweepResult]],
    klass: str,
    seed: int,
) -> dict[str, SweepResult]:
    """Sweep every code not already covered, as one flat batch."""
    missing = [
        code for code in code_list if sweeps is None or code not in sweeps
    ]
    if not missing:
        return {}
    workloads = {
        code: get_workload(code, klass=klass, nprocs=NPB_CODES[code])
        for code in missing
    }
    by_tag = frequency_sweep_many(
        [workloads[code] for code in missing], FREQUENCIES_MHZ, seed=seed
    )
    return {code: by_tag[workloads[code].tag] for code in missing}


def figure6_external_ed3p(
    codes: Optional[Sequence[str]] = None,
    klass: str = "C",
    seed: int = 0,
    sweeps: Optional[Mapping[str, SweepResult]] = None,
) -> MetricSelectionResult:
    """Reproduce Figure 6: EXTERNAL control with the ED3P metric."""
    return _external_with_metric(ED3P, codes, klass, seed, sweeps)


def figure7_external_ed2p(
    codes: Optional[Sequence[str]] = None,
    klass: str = "C",
    seed: int = 0,
    sweeps: Optional[Mapping[str, SweepResult]] = None,
) -> MetricSelectionResult:
    """Reproduce Figure 7: EXTERNAL control with the ED2P metric."""
    return _external_with_metric(ED2P, codes, klass, seed, sweeps)


# ----------------------------------------------------------------------
# Figure 8 — energy-delay crescendos + Type I–IV classification
# ----------------------------------------------------------------------
@dataclass
class CrescendoFigure:
    crescendos: dict[str, Crescendo]
    types: dict[str, CrescendoType]

    def groups(self) -> dict[str, list[str]]:
        """Codes grouped by type label (paper's four panels)."""
        out: dict[str, list[str]] = {}
        for code, ctype in sorted(self.types.items()):
            out.setdefault(ctype.value, []).append(code)
        return out


def figure8_crescendos(
    codes: Optional[Sequence[str]] = None,
    klass: str = "C",
    seed: int = 0,
    sweeps: Optional[Mapping[str, SweepResult]] = None,
) -> CrescendoFigure:
    """Reproduce Figure 8: per-code crescendos and their categories."""
    code_list = [c.upper() for c in (codes or NPB_CODES)]
    fresh = _sweep_missing(code_list, sweeps, klass, seed)
    crescendos: dict[str, Crescendo] = {}
    types: dict[str, CrescendoType] = {}
    for code in code_list:
        sweep = sweeps[code] if sweeps is not None and code in sweeps else fresh[code]
        cres = Crescendo(code, sweep.normalized)
        crescendos[code] = cres
        types[code] = cres.classify()
    return CrescendoFigure(crescendos, types)


# ----------------------------------------------------------------------
# Figures 9/12 — performance traces (FT, CG)
# ----------------------------------------------------------------------
@dataclass
class TraceFigure:
    code: str
    stats: TraceStats
    log: TraceLog

    @property
    def comm_to_comp_ratio(self) -> float:
        return self.stats.comm_to_comp_ratio

    def timeline(self, width: int = 100) -> str:
        from repro.trace.jumpshot import render_timeline

        return render_timeline(self.log, width=width)


def figure9_ft_trace(klass: str = "C", seed: int = 0) -> TraceFigure:
    """Reproduce Figure 9: FT performance trace and its observations."""
    w = get_workload("FT", klass=klass, nprocs=NPB_CODES["FT"])
    m = current_runner().run(w, trace=True, seed=seed)
    return TraceFigure("FT", analyze(m.trace), m.trace)


def figure12_cg_trace(klass: str = "C", seed: int = 0) -> TraceFigure:
    """Reproduce Figure 12: CG trace (asymmetric rank groups)."""
    w = get_workload("CG", klass=klass, nprocs=NPB_CODES["CG"])
    m = current_runner().run(w, trace=True, seed=seed)
    return TraceFigure("CG", analyze(m.trace), m.trace)


# ----------------------------------------------------------------------
# Figures 11/14 — INTERNAL scheduling case studies
# ----------------------------------------------------------------------
@dataclass
class InternalComparison:
    """Figure 11/14: internal policies vs the external sweep vs auto."""

    code: str
    internal: dict[str, tuple[float, float]]
    external: dict[float, tuple[float, float]]
    auto: tuple[float, float]
    measurements: dict[str, Measurement] = field(default_factory=dict)


def figure11_ft_internal(
    klass: str = "C",
    seed: int = 0,
    high_mhz: float = 1400.0,
    low_mhz: float = 600.0,
    sweep: Optional[SweepResult] = None,
) -> InternalComparison:
    """Reproduce Figure 11: FT under INTERNAL (1400/600 around the
    all-to-all) vs every EXTERNAL setting vs CPUSPEED."""
    w = get_workload("FT", klass=klass, nprocs=NPB_CODES["FT"])
    if sweep is None:
        sweep = frequency_sweep(w, FREQUENCIES_MHZ, seed=seed)
    baseline = sweep.raw[sweep.baseline_mhz]
    policy = PhasePolicy({"alltoall"}, low_mhz=low_mhz, high_mhz=high_mhz)
    internal, auto = current_runner().map([
        RunTask(
            w, InternalStrategy(policy, label=f"{high_mhz:.0f}/{low_mhz:.0f}"), seed
        ),
        RunTask(w, CpuspeedDaemonStrategy(), seed),
    ])
    return InternalComparison(
        code="FT",
        internal={"internal": internal.normalized_against(baseline)},
        external=sweep.normalized,
        auto=auto.normalized_against(baseline),
        measurements={"internal": internal, "auto": auto},
    )


def figure14_cg_internal(
    klass: str = "C",
    seed: int = 0,
    sweep: Optional[SweepResult] = None,
) -> InternalComparison:
    """Reproduce Figure 14: CG under heterogeneous INTERNAL settings.

    INTERNAL I: ranks 0-3 at 1200 MHz, ranks 4-7 at 800 MHz.
    INTERNAL II: ranks 0-3 at 1000 MHz, ranks 4-7 at 800 MHz.
    """
    w = get_workload("CG", klass=klass, nprocs=NPB_CODES["CG"])
    if sweep is None:
        sweep = frequency_sweep(w, FREQUENCIES_MHZ, seed=seed)
    baseline = sweep.raw[sweep.baseline_mhz]
    half = NPB_CODES["CG"] // 2
    settings = (("internal I", 1200.0, 800.0), ("internal II", 1000.0, 800.0))
    tasks = [
        RunTask(
            w,
            InternalStrategy(
                RankPolicy.split(half, high_mhz=high, low_mhz=low), label=label
            ),
            seed,
        )
        for label, high, low in settings
    ]
    tasks.append(RunTask(w, CpuspeedDaemonStrategy(), seed))
    results = current_runner().map(tasks)
    internal: dict[str, tuple[float, float]] = {}
    measurements: dict[str, Measurement] = {}
    for (label, _, _), m in zip(settings, results):
        internal[label] = m.normalized_against(baseline)
        measurements[label] = m
    auto = results[-1]
    measurements["auto"] = auto
    return InternalComparison(
        code="CG",
        internal=internal,
        external=sweep.normalized,
        auto=auto.normalized_against(baseline),
        measurements=measurements,
    )


# ----------------------------------------------------------------------
# Beyond the paper: Figure 11/14 candidates vs the computed frontier
# ----------------------------------------------------------------------
@dataclass
class OptimalFrontierFigure:
    """Hand-picked Figure 11/14 schedules against the optimizer's frontier.

    ``comparison`` holds the paper's shipped candidates (INTERNAL
    policies, the EXTERNAL sweep, CPUSPEED); ``result`` the offline
    optimizer's energy-delay frontier and winner at the same delta.
    Everything is normalized against the same full-speed baseline.
    """

    code: str
    delta: float
    comparison: InternalComparison
    result: "OptimizeResult"  # noqa: F821 — repro.optimize import is lazy


def figure_optimal_frontier(
    code: str = "FT",
    klass: str = "C",
    seed: int = 0,
    delta: float = 0.05,
) -> OptimalFrontierFigure:
    """Compare the shipped Figure 11/14 schedules with the computed plan.

    Runs the paper figure for ``code`` (Figure 11 for FT, Figure 14 for
    CG; a sweep-plus-CPUSPEED comparison for other codes) and the
    offline gear-plan optimizer at the same performance constraint.
    """
    from repro.optimize import optimize_gear_plan

    code = code.upper()
    if code == "FT":
        comparison = figure11_ft_internal(klass=klass, seed=seed)
    elif code == "CG":
        comparison = figure14_cg_internal(klass=klass, seed=seed)
    else:
        w = get_workload(code, klass=klass, nprocs=NPB_CODES.get(code, 8))
        sweep = frequency_sweep(w, FREQUENCIES_MHZ, seed=seed)
        baseline = sweep.raw[sweep.baseline_mhz]
        (auto,) = current_runner().map([RunTask(w, CpuspeedDaemonStrategy(), seed)])
        comparison = InternalComparison(
            code=code,
            internal={},
            external=sweep.normalized,
            auto=auto.normalized_against(baseline),
            measurements={"auto": auto},
        )
    w = get_workload(code, klass=klass, nprocs=NPB_CODES.get(code, 8))
    result = optimize_gear_plan(w, delta=delta, seed=seed)
    return OptimalFrontierFigure(
        code=code, delta=delta, comparison=comparison, result=result
    )
