"""Parallel experiment engine.

Every paper artifact is a grid of *independent* full-cluster
simulations (code × frequency × seed × strategy).  This module fans
those runs out over a :class:`concurrent.futures.ProcessPoolExecutor`
and memoizes each sweep point through the content-addressed
:class:`~repro.experiments.store.MeasurementCache`, while guaranteeing
results that are bit-for-bit identical to the serial path:

* each task carries its own seed and builds a fresh cluster inside the
  worker, so no state is shared between runs in any order;
* results are collected *by submission index*, never by completion
  order;
* only runs whose outputs are fully summarised (no trace, no
  measurement-channel report, no externally supplied cluster or hooks)
  are ever cached or shipped to a worker pool.

The experiment surface (``frequency_sweep``, ``tables.table2``,
``figures.*``, ablations, sensitivity, the campaign) routes every
simulation through the *current runner*: a module-level
:class:`ParallelRunner` installed with :func:`use` (or
:func:`configure`).  The default runner is serial, uncached and
memo-free — exactly the old behavior.

Usage::

    from repro.experiments.parallel import ParallelRunner, use

    with ParallelRunner(jobs=4, cache_dir=".repro-cache") as runner:
        with use(runner):
            rows = tables.table2()          # 48 runs, 4 at a time
    print(runner.stats.render())
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from repro.core.framework import Measurement, run_workload
from repro.core.strategies.base import NoDvsStrategy, Strategy
from repro.workloads.base import Workload

__all__ = [
    "RunTask",
    "ParallelRunner",
    "current_runner",
    "use",
    "configure",
]


@dataclass
class RunTask:
    """One ``run_workload`` invocation, picklable for the worker pool."""

    workload: Workload
    strategy: Optional[Strategy] = None
    seed: int = 0
    #: extra ``run_workload`` keyword arguments (power, opoints, ...).
    kwargs: dict[str, Any] = field(default_factory=dict)

    def cacheable(self) -> bool:
        """Whether the result is fully captured by summary fields.

        Traced runs, measurement-channel runs and runs on a caller
        supplied cluster or with extra hooks carry live objects the
        cache (and the JSON round-trip) cannot reproduce.
        """
        kw = self.kwargs
        return not (
            kw.get("trace")
            or kw.get("measurement_channels")
            or kw.get("cluster") is not None
            or kw.get("extra_hooks") is not None
        )


def _execute(task: RunTask) -> Measurement:
    """Worker entry point — must stay a module-level function."""
    return run_workload(task.workload, task.strategy, seed=task.seed, **task.kwargs)


class ParallelRunner:
    """Runs measurement grids, optionally in parallel and memoized.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs inline with zero
        pool overhead; ``None`` also means serial.
    cache_dir:
        Enable the on-disk measurement cache rooted here (shared
        between runs and between the parallel workers' parent).
    memo:
        Keep an in-process memo of every cacheable result for this
        runner's lifetime, so e.g. a campaign simulates each workload's
        no-DVS baseline exactly once even with the disk cache disabled.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache_dir: Union[str, Path, None] = None,
        memo: bool = True,
    ) -> None:
        from repro.experiments.store import CacheStats, MeasurementCache

        self.jobs = max(1, int(jobs or 1))
        self.cache = MeasurementCache(cache_dir) if cache_dir is not None else None
        self._memo: Optional[dict[str, Measurement]] = {} if memo else None
        self._pool: Optional[ProcessPoolExecutor] = None
        self.stats = CacheStats()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # -- execution -----------------------------------------------------
    def run(
        self,
        workload: Workload,
        strategy: Optional[Strategy] = None,
        seed: int = 0,
        **kwargs: Any,
    ) -> Measurement:
        """Memoized single run (the drop-in for ``run_workload``)."""
        return self.map([RunTask(workload, strategy, seed, kwargs)])[0]

    def map(self, tasks: Sequence[RunTask]) -> list[Measurement]:
        """Run every task, returning results in task order.

        Cache/memo hits are filled in first; the remaining misses run
        in the worker pool (or inline when serial / a single miss) and
        are stored back.
        """
        from repro.experiments.store import UncacheableSpecError, cache_key

        results: list[Optional[Measurement]] = [None] * len(tasks)
        pending: list[tuple[int, RunTask, Optional[str]]] = []
        pending_by_key: dict[str, int] = {}
        #: (result index, position in ``pending``) for duplicate tasks
        #: within this batch — executed once, filled in everywhere.
        duplicates: list[tuple[int, int]] = []
        for index, task in enumerate(tasks):
            key: Optional[str] = None
            if (self._memo is not None or self.cache is not None) and task.cacheable():
                try:
                    # A None strategy runs as no-DVS; share its cache slot.
                    key = cache_key(
                        task.workload,
                        task.strategy if task.strategy is not None else NoDvsStrategy(),
                        task.seed,
                        task.kwargs,
                    )
                except UncacheableSpecError:
                    pending.append((index, task, None))
                    continue
                if self._memo is not None and key in self._memo:
                    results[index] = self._memo[key]
                    self.stats.hits += 1
                    continue
                if self.cache is not None:
                    cached = self.cache.get(key)
                    if cached is not None:
                        results[index] = cached
                        if self._memo is not None:
                            self._memo[key] = cached
                        self.stats.hits += 1
                        continue
                if key in pending_by_key:
                    duplicates.append((index, pending_by_key[key]))
                    self.stats.hits += 1
                    continue
                self.stats.misses += 1
                pending_by_key[key] = len(pending)
            pending.append((index, task, key))

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                pool = self._ensure_pool()
                measured = list(pool.map(_execute, [t for _, t, _ in pending]))
            else:
                measured = [_execute(t) for _, t, _ in pending]
            for (index, _, key), measurement in zip(pending, measured):
                results[index] = measurement
                if key is not None:
                    if self._memo is not None:
                        self._memo[key] = measurement
                    if self.cache is not None:
                        self.cache.put(key, measurement)
                        self.stats.stores += 1
            for index, position in duplicates:
                results[index] = measured[position]
        return results  # type: ignore[return-value]


#: The runner the experiment surface routes through by default: serial,
#: uncached, memo-free — byte-identical to calling run_workload directly.
_DEFAULT = ParallelRunner(jobs=1, cache_dir=None, memo=False)
_current: ParallelRunner = _DEFAULT


def current_runner() -> ParallelRunner:
    """The runner all grid helpers currently route through."""
    return _current


@contextlib.contextmanager
def use(runner: ParallelRunner) -> Iterator[ParallelRunner]:
    """Install ``runner`` as the current runner within the block."""
    global _current
    previous = _current
    _current = runner
    try:
        yield runner
    finally:
        _current = previous


def configure(
    jobs: Optional[int] = 1,
    cache_dir: Union[str, Path, None] = None,
    memo: bool = True,
) -> ParallelRunner:
    """Build a runner (CLI convenience mirroring ``--jobs``/``--cache-dir``)."""
    return ParallelRunner(jobs=jobs, cache_dir=cache_dir, memo=memo)
