"""Parallel experiment engine.

Every paper artifact is a grid of *independent* full-cluster
simulations (code × frequency × seed × strategy).  This module fans
those runs out over a :class:`concurrent.futures.ProcessPoolExecutor`
and memoizes each sweep point through the content-addressed
:class:`~repro.experiments.store.MeasurementCache`, while guaranteeing
results that are bit-for-bit identical to the serial path:

* each task carries its own seed and builds a fresh cluster inside the
  worker, so no state is shared between runs in any order;
* results are collected *by submission index*, never by completion
  order;
* only runs whose outputs are fully summarised (no trace, no
  measurement-channel report, no externally supplied cluster or hooks)
  are ever cached or shipped to a worker pool.

The experiment surface (``frequency_sweep``, ``tables.table2``,
``figures.*``, ablations, sensitivity, the campaign) routes every
simulation through the *current runner*: a module-level
:class:`ParallelRunner` installed with :func:`use` (or
:func:`configure`).  The default runner is serial, uncached and
memo-free — exactly the old behavior.

Usage::

    from repro.experiments.parallel import ParallelRunner, use

    with ParallelRunner(jobs=4, cache_dir=".repro-cache") as runner:
        with use(runner):
            rows = tables.table2()          # 48 runs, 4 at a time
    print(runner.stats.render())
"""

from __future__ import annotations

import contextlib
import threading
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence, Union

from repro.core.framework import Measurement, run_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import MeasurementCache
from repro.core.strategies.base import NoDvsStrategy, Strategy
from repro.faults.spec import FaultSpec
from repro.workloads.base import Workload

__all__ = [
    "RunTask",
    "ParallelRunner",
    "TaskFailedError",
    "current_runner",
    "use",
    "configure",
]


@dataclass
class RunTask:
    """One ``run_workload`` invocation, picklable for the worker pool."""

    workload: Workload
    strategy: Optional[Strategy] = None
    seed: int = 0
    #: extra ``run_workload`` keyword arguments (power, opoints, ...).
    kwargs: dict[str, Any] = field(default_factory=dict)

    def cacheable(self) -> bool:
        """Whether the result is fully captured by summary fields.

        Traced runs, measurement-channel runs and runs on a caller
        supplied cluster or with extra hooks carry live objects the
        cache (and the JSON round-trip) cannot reproduce.  A ``faults``
        kwarg is cacheable only as a value-typed :class:`FaultSpec` —
        a live injector instance carries consumed RNG state no content
        key could capture.
        """
        kw = self.kwargs
        faults = kw.get("faults")
        return not (
            kw.get("trace")
            or kw.get("measurement_channels")
            or kw.get("cluster") is not None
            or kw.get("extra_hooks") is not None
            or (faults is not None and not isinstance(faults, FaultSpec))
        )


class TaskFailedError(RuntimeError):
    """A task exhausted its retries; carries the failing spec + trace."""

    def __init__(self, task: RunTask, attempts: int, detail: str) -> None:
        self.task = task
        self.attempts = attempts
        strategy = task.strategy.describe() if task.strategy is not None else "no-dvs"
        spec = (
            f"workload={task.workload.tag!r} strategy={strategy!r} "
            f"seed={task.seed}"
        )
        if task.kwargs:
            spec += f" kwargs={sorted(task.kwargs)}"
        super().__init__(
            f"run failed after {attempts} attempt(s): {spec}\n{detail}"
        )


class _WorkerError(Exception):
    """Worker-side failure, carrying the formatted traceback as args[0].

    A plain-args Exception subclass so it pickles back to the parent
    intact (arbitrary exceptions raised inside a worker lose their
    traceback at the process boundary).
    """


def _execute(task: RunTask) -> Measurement:
    """Worker entry point — must stay a module-level function."""
    return run_workload(task.workload, task.strategy, seed=task.seed, **task.kwargs)


def _execute_traced(task: RunTask) -> Measurement:
    """Pool entry point: convert any failure into a picklable
    :class:`_WorkerError` so the parent sees the worker's traceback
    instead of an opaque ``BrokenProcessPool``."""
    try:
        return _execute(task)
    except Exception:
        raise _WorkerError(traceback.format_exc()) from None


def _execute_chunk_traced(chunk: Sequence[RunTask]) -> list[Measurement]:
    """Pool entry point for :meth:`ParallelRunner.map_sweep` chunks.

    One pool task measures a whole run of consecutive sweep points —
    amortizing process dispatch and task pickling over many
    (straightline-tier, microsecond-scale) simulations.
    """
    try:
        return [_execute(t) for t in chunk]
    except Exception:
        raise _WorkerError(traceback.format_exc()) from None


class ParallelRunner:
    """Runs measurement grids, optionally in parallel and memoized.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs inline with zero
        pool overhead; ``None`` also means serial.
    cache_dir:
        Enable the on-disk measurement cache rooted here (shared
        between runs and between the parallel workers' parent).  A
        ready :class:`~repro.experiments.store.MeasurementCache` is
        also accepted and used as-is (custom shard layout, pre-warmed
        hot layer).
    memo:
        Keep an in-process memo of every cacheable result for this
        runner's lifetime, so e.g. a campaign simulates each workload's
        no-DVS baseline exactly once even with the disk cache disabled.
    faults:
        Default :class:`~repro.faults.spec.FaultSpec` merged into
        every task that does not set ``faults`` itself — this is how
        ``--faults`` puts a whole campaign (every table and figure)
        under one fault environment.  Part of each task's cache key,
        so faulty and clean runs never alias.
    task_retries:
        How many times one failing/timed-out pool task is re-run
        before :class:`TaskFailedError` (default 1; simulations are
        deterministic, so this mainly absorbs killed workers).
    task_timeout_s:
        Per-task wall-clock ceiling in the pool; on expiry the worker
        pool is recycled and the task counts a failed attempt.  None
        (default) disables the timeout.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache_dir: Union[str, Path, "MeasurementCache", None] = None,
        memo: bool = True,
        faults: Optional[FaultSpec] = None,
        task_retries: int = 1,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        from repro.experiments.store import CacheStats, MeasurementCache

        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        self.jobs = max(1, int(jobs or 1))
        # cache_dir also accepts a ready MeasurementCache, so callers
        # with layout/warming opinions (the advisor service's sharded
        # store) plug one in without a parallel constructor surface.
        if isinstance(cache_dir, MeasurementCache):
            self.cache: Optional[MeasurementCache] = cache_dir
        else:
            self.cache = MeasurementCache(cache_dir) if cache_dir is not None else None
        self.faults = faults
        self.task_retries = task_retries
        self.task_timeout_s = task_timeout_s
        self._memo: Optional[dict[str, Measurement]] = {} if memo else None
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Serializes off-event-loop submissions (:meth:`amap_sweep`):
        #: the runner's pool, memo and cache stats are not safe under
        #: concurrent ``map*`` calls from multiple threads.
        self.submit_lock = threading.Lock()
        self.stats = CacheStats()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # -- execution -----------------------------------------------------
    def run(
        self,
        workload: Workload,
        strategy: Optional[Strategy] = None,
        seed: int = 0,
        **kwargs: Any,
    ) -> Measurement:
        """Memoized single run (the drop-in for ``run_workload``)."""
        return self.map([RunTask(workload, strategy, seed, kwargs)])[0]

    def map(self, tasks: Sequence[RunTask]) -> list[Measurement]:
        """Run every task, returning results in task order.

        Cache/memo hits are filled in first; the remaining misses run
        in the worker pool (or inline when serial / a single miss) and
        are stored back.
        """
        tasks = self._merge_faults(tasks)
        results, pending, duplicates = self._probe(tasks)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                measured = self._map_pool([t for _, t, _ in pending])
            else:
                measured = [_execute(t) for _, t, _ in pending]
            self._store(results, pending, duplicates, measured)
        return self._tally(results)

    def map_sweep(
        self, tasks: Sequence[RunTask], chunk_size: Optional[int] = None
    ) -> list[Measurement]:
        """Like :meth:`map`, but ships *chunks* of consecutive misses
        to each worker as one pool task.

        A frequency sweep over the straightline tier spends more time
        pickling tasks and dispatching futures than simulating; batching
        amortizes that overhead.  Every guarantee of :meth:`map` holds:
        results come back in submission-index order, and each point is
        cached/memoized individually, so a re-run hits per point.  The
        default ``chunk_size`` splits the misses into about four chunks
        per worker (bounded to 32 points) so stragglers still balance.

        Misses that qualify for the straightline tier are additionally
        *batched*: same-workload same-configuration points run together
        through :func:`repro.sim.straightline.run_batch` (inline — the
        vectorized evaluation is far cheaper than pool dispatch), with
        results still bit-for-bit identical to per-point runs.
        Daemon-strategy misses with a sampled controller run inline
        through the sampled-control tier, point by point.  Points
        neither tier can take (other dynamic strategies, faults,
        non-default clusters) flow through the chunked pool path
        unchanged.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        tasks = self._merge_faults(tasks)
        results, pending, duplicates = self._probe(tasks)
        if pending:
            measured: list[Optional[Measurement]] = [None] * len(pending)
            leftover = self._run_batches(pending, measured)
            if leftover:
                misses = [pending[j][1] for j in leftover]
                if self.jobs > 1 and len(misses) > 1:
                    if chunk_size is None:
                        per_worker = -(-len(misses) // (self.jobs * 4))
                        chunk_size = max(1, min(32, per_worker))
                    chunks = [
                        misses[i : i + chunk_size]
                        for i in range(0, len(misses), chunk_size)
                    ]
                    pool_measured = [
                        m
                        for chunk in self._map_pool(chunks, fn=_execute_chunk_traced)
                        for m in chunk
                    ]
                else:
                    pool_measured = [_execute(t) for t in misses]
                for j, m in zip(leftover, pool_measured):
                    measured[j] = m
            self._store(results, pending, duplicates, measured)
        return self._tally(results)

    async def amap_sweep(
        self, tasks: Sequence[RunTask], chunk_size: Optional[int] = None
    ) -> list[Measurement]:
        """:meth:`map_sweep` for asyncio callers (the advisor service).

        The grid runs in a worker thread so the event loop stays
        responsive while simulations execute, and concurrent coroutine
        submissions are *serialized* on ``submit_lock`` — the runner's
        process pool, memo dict and stats counters are shared mutable
        state.  Results are exactly :meth:`map_sweep`'s: submission
        order, bit-identical, individually cached.
        """
        import asyncio

        def _locked() -> list[Measurement]:
            with self.submit_lock:
                return self.map_sweep(tasks, chunk_size)

        return await asyncio.get_running_loop().run_in_executor(None, _locked)

    #: ``run_workload`` kwargs :func:`repro.sim.straightline.run_batch`
    #: understands (``engine``/``faults`` are dispatch-only and dropped).
    _BATCH_KWARGS = frozenset(
        {"network_params", "power", "opoints", "transition_latency_s",
         "engine", "faults"}
    )

    def _run_batches(
        self,
        pending: Sequence[tuple[int, RunTask, Optional[str]]],
        measured: list[Optional[Measurement]],
    ) -> list[int]:
        """Fill batch-evaluable misses into ``measured`` (by pending
        position); returns the positions the pool path must still run.

        A miss is batchable when its kwargs are all straightline-tier
        parameters, no live fault environment applies (``faults=None``
        or a zero-rate spec), the engine isn't pinned to ``"event"``,
        and the strategy lowers to a static gear plan.  Batches group by workload and configuration identity;
        groups of one, and any group the batch tier rejects (divergent
        control flow, unsupported plan), fall back to the per-point
        path — which reproduces genuine errors through the event
        engine exactly as before.

        Misses whose strategy exposes a stateful sampled controller
        instead of a gear plan (the CPUSPEED-style per-node daemons,
        the β daemon, the power-cap coordinator) run *inline* through
        the stateful-controller straightline tier: control flow there
        is data-dependent, so there is nothing to vectorize, but one
        in-process call still beats pool dispatch by orders of
        magnitude.  Points the tier declines at run time flow to the
        pool path (whose ``engine="auto"`` reaches the event engine)
        and count in ``stats.straightline_fallbacks``.
        """
        from repro.sim.straightline import lowering_cache_counters

        lower_h0, lower_m0 = lowering_cache_counters()
        groups: dict[tuple, list[int]] = {}
        leftover: list[int] = []
        sampled: list[int] = []
        for j, (_index, task, _key) in enumerate(pending):
            kw = task.kwargs
            faults = kw.get("faults")
            # A zero-rate spec injects nothing (bit-for-bit a clean
            # run), so it doesn't force the pool/event path; its cache
            # key is unaffected — engine selection only.
            inert = faults is None or (
                isinstance(faults, FaultSpec) and faults.is_noop()
            )
            if (
                not set(kw) <= self._BATCH_KWARGS
                or kw.get("engine", "auto") == "event"
                or not inert
            ):
                leftover.append(j)
                continue
            strategy = task.strategy if task.strategy is not None else NoDvsStrategy()
            try:
                plan = strategy.gear_plan(task.workload)
            except Exception:
                plan = None
            if plan is None:
                if strategy.controller() is not None:
                    sampled.append(j)
                else:
                    leftover.append(j)
                continue
            group = (
                id(task.workload),
                tuple(
                    sorted(
                        (k, id(v))
                        for k, v in kw.items()
                        if k not in ("engine", "faults")
                    )
                ),
            )
            groups.setdefault(group, []).append(j)
        for j in sampled:
            from repro.sim.straightline import try_run_straightline

            task = pending[j][1]
            run_kwargs = {
                k: v
                for k, v in task.kwargs.items()
                if k not in ("engine", "faults")
            }
            info: dict = {}
            fast = try_run_straightline(
                task.workload, task.strategy, seed=task.seed, stats=info,
                **run_kwargs
            )
            if fast is None:
                self.stats.straightline_fallbacks += 1
                self.stats.count_fallback(info.get("fallback_reason"))
                leftover.append(j)
            else:
                measured[j] = fast
                self.stats.controller_runs += 1
                self.stats.reduction_ticks += info.get("reduction_ticks", 0)
        for positions in groups.values():
            if len(positions) < 2:
                leftover.extend(positions)
                continue
            from repro.sim.straightline import run_batch

            first = pending[positions[0]][1]
            run_kwargs = {
                k: v
                for k, v in first.kwargs.items()
                if k not in ("engine", "faults")
            }
            points = [
                (pending[j][1].strategy, pending[j][1].seed) for j in positions
            ]
            batch_info: dict = {}
            try:
                batch = run_batch(
                    first.workload, points, stats=batch_info, **run_kwargs
                )
            except Exception as exc:
                from repro.workloads.compile import CompileError

                self.stats.batch_splits += 1
                self.stats.batch_scalar_reruns += len(positions)
                reason = getattr(exc, "reason", None) or (
                    "compile_error" if isinstance(exc, CompileError)
                    else "unsupported"
                )
                self.stats.count_fallback(reason)
                leftover.extend(positions)
                continue
            finally:
                # Quotient declines inside a successful batch (points
                # re-run per-rank or split) surface per reason too.
                for reason, n in batch_info.get(
                    "fallback_reasons", {}
                ).items():
                    self.stats.count_fallback(reason, n)
            for j, m in zip(positions, batch):
                measured[j] = m
        # Gear-plan lowering reuse over this call (process-wide counter
        # deltas: the in-process tiers above are the only lowerers here).
        lower_h1, lower_m1 = lowering_cache_counters()
        self.stats.lowering_hits += lower_h1 - lower_h0
        self.stats.lowering_misses += lower_m1 - lower_m0
        leftover.sort()
        return leftover

    # -- map/map_sweep shared prologue + epilogue ----------------------
    def _merge_faults(self, tasks: Sequence[RunTask]) -> Sequence[RunTask]:
        if self.faults is None:
            return tasks
        # Runner-level fault environment: merged into every task
        # that doesn't choose its own (an explicit faults=None in
        # task kwargs opts that task out).
        return [
            t if "faults" in t.kwargs else RunTask(
                t.workload, t.strategy, t.seed,
                {**t.kwargs, "faults": self.faults},
            )
            for t in tasks
        ]

    def _probe(
        self, tasks: Sequence[RunTask]
    ) -> tuple[
        list[Optional[Measurement]],
        list[tuple[int, RunTask, Optional[str]]],
        list[tuple[int, int]],
    ]:
        """Fill cache/memo hits; return (results, pending misses, dupes)."""
        from repro.experiments.store import UncacheableSpecError, cache_key

        results: list[Optional[Measurement]] = [None] * len(tasks)
        pending: list[tuple[int, RunTask, Optional[str]]] = []
        pending_by_key: dict[str, int] = {}
        #: (result index, position in ``pending``) for duplicate tasks
        #: within this batch — executed once, filled in everywhere.
        duplicates: list[tuple[int, int]] = []
        for index, task in enumerate(tasks):
            key: Optional[str] = None
            if (self._memo is not None or self.cache is not None) and task.cacheable():
                try:
                    # A None strategy runs as no-DVS; share its cache slot.
                    key = cache_key(
                        task.workload,
                        task.strategy if task.strategy is not None else NoDvsStrategy(),
                        task.seed,
                        task.kwargs,
                    )
                except UncacheableSpecError:
                    pending.append((index, task, None))
                    continue
                if self._memo is not None and key in self._memo:
                    results[index] = self._memo[key]
                    self.stats.hits += 1
                    continue
                if self.cache is not None:
                    cached = self.cache.get(key)
                    if cached is not None:
                        results[index] = cached
                        if self._memo is not None:
                            self._memo[key] = cached
                        self.stats.hits += 1
                        continue
                if key in pending_by_key:
                    duplicates.append((index, pending_by_key[key]))
                    self.stats.hits += 1
                    continue
                self.stats.misses += 1
                pending_by_key[key] = len(pending)
            pending.append((index, task, key))
        return results, pending, duplicates

    def _store(
        self,
        results: list[Optional[Measurement]],
        pending: Sequence[tuple[int, RunTask, Optional[str]]],
        duplicates: Sequence[tuple[int, int]],
        measured: Sequence[Measurement],
    ) -> None:
        """Place fresh measurements into ``results`` and the caches."""
        for (index, _, key), measurement in zip(pending, measured):
            results[index] = measurement
            if key is not None:
                if self._memo is not None:
                    self._memo[key] = measurement
                if self.cache is not None:
                    self.cache.put(key, measurement)
                    self.stats.stores += 1
        for index, position in duplicates:
            results[index] = measured[position]

    def _tally(self, results: list[Optional[Measurement]]) -> list[Measurement]:
        for m in results:
            self.stats.runs += 1
            if m is not None and m.extras.get("faults"):
                self.stats.degraded_runs += 1
        return results  # type: ignore[return-value]

    # -- pool execution with retry / timeout / failure surfacing -------
    def _map_pool(self, tasks: Sequence, fn=_execute_traced) -> list:
        """Run ``tasks`` through ``fn`` in the worker pool, in order.

        ``tasks`` items are either single :class:`RunTask`\\ s (with
        ``fn=_execute_traced``) or chunks of them (``map_sweep``,
        ``fn=_execute_chunk_traced``).  Worker-side exceptions surface
        as :class:`TaskFailedError` (task spec + worker traceback)
        instead of raw pool errors; a timed-out or pool-killing task
        gets the pool recycled and is retried up to ``task_retries``
        times.  Collateral tasks of a broken pool are re-run without
        spending one of their attempts.
        """
        results: list = [None] * len(tasks)
        attempts = [0] * len(tasks)
        remaining = list(range(len(tasks)))
        while remaining:
            pool = self._ensure_pool()
            futures = {i: pool.submit(fn, tasks[i]) for i in remaining}
            retry: list[int] = []
            broken = False

            def _failed(i: int, detail: str) -> None:
                attempts[i] += 1
                if attempts[i] > self.task_retries:
                    # Leave no half-broken pool behind the exception.
                    self._recycle_pool()
                    item = tasks[i]
                    if not isinstance(item, RunTask):  # a map_sweep chunk
                        detail = f"(chunk of {len(item)} tasks) {detail}"
                        item = item[0]
                    raise TaskFailedError(item, attempts[i], detail)
                retry.append(i)

            for i in remaining:
                future = futures[i]
                if broken:
                    # The pool died under an earlier task this round.
                    # Harvest results that finished before the crash;
                    # everything else retries for free.
                    if future.done() and not future.cancelled():
                        try:
                            results[i] = future.result()
                            continue
                        except _WorkerError as exc:
                            _failed(i, exc.args[0])
                            continue
                        except Exception:
                            pass
                    retry.append(i)
                    continue
                try:
                    results[i] = future.result(timeout=self.task_timeout_s)
                except _WorkerError as exc:
                    _failed(i, exc.args[0])
                except FuturesTimeout:
                    broken = True
                    _failed(
                        i,
                        f"no result within task_timeout_s={self.task_timeout_s}; "
                        "hung worker killed and pool recycled",
                    )
                except BrokenExecutor as exc:
                    broken = True
                    _failed(
                        i,
                        f"worker pool broke under this task ({exc!r}): the "
                        "worker died without a Python traceback (killed / "
                        "out-of-memory / interpreter crash)",
                    )
            if broken:
                self._recycle_pool()
            remaining = retry
        return results  # type: ignore[return-value]

    def _recycle_pool(self) -> None:
        """Tear down a broken/hung pool without waiting on its workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in getattr(pool, "_processes", None) or {}:
            try:
                pool._processes[proc].terminate()
            except Exception:  # pragma: no cover - best effort
                pass
        pool.shutdown(wait=False, cancel_futures=True)


#: The runner the experiment surface routes through by default: serial,
#: uncached, memo-free — byte-identical to calling run_workload directly.
_DEFAULT = ParallelRunner(jobs=1, cache_dir=None, memo=False)
_current: ParallelRunner = _DEFAULT


def current_runner() -> ParallelRunner:
    """The runner all grid helpers currently route through."""
    return _current


@contextlib.contextmanager
def use(runner: ParallelRunner) -> Iterator[ParallelRunner]:
    """Install ``runner`` as the current runner within the block."""
    global _current
    previous = _current
    _current = runner
    try:
        yield runner
    finally:
        _current = previous


def configure(
    jobs: Optional[int] = 1,
    cache_dir: Union[str, Path, None] = None,
    memo: bool = True,
    faults: Optional[FaultSpec] = None,
) -> ParallelRunner:
    """Build a runner (CLI convenience mirroring ``--jobs``/``--cache-dir``)."""
    return ParallelRunner(jobs=jobs, cache_dir=cache_dir, memo=memo, faults=faults)
