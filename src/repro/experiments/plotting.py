"""ASCII plotting for terminal reports.

Small, dependency-free renderers used by the CLI and benches to show
the *shape* of figures (crescendos, ablation curves) without matplotlib
— two series per chart, one glyph each, on a labelled grid.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart", "crescendo_chart"]


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    glyphs: str = "*o+x#@",
) -> str:
    """Plot numeric series against shared x values.

    Values are mapped onto a ``width`` x ``height`` character grid with
    min/max autoscaling; each series gets one glyph; the legend and the
    y-range annotate the frame.
    """
    if width < 10 or height < 4:
        raise ValueError("chart too small to be legible")
    if not x or not series:
        raise ValueError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length does not match x")

    all_values = [v for ys in series.values() for v in ys]
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    x_lo, x_hi = min(x), max(x)
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for xi, yi in zip(x, ys):
            col = round((xi - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yi - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:8.3f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{lo:8.3f} +" + "-" * width + "+")
    lines.append(f"{'':9} {x_lo:<10.4g}{'':{max(0, width - 20)}}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def crescendo_chart(
    normalized: Mapping[float, tuple[float, float]],
    title: str = "",
    width: int = 60,
    height: int = 14,
) -> str:
    """Render one code's energy-delay crescendo (Figure 2/8 style)."""
    freqs = sorted(normalized)
    delays = [normalized[f][0] for f in freqs]
    energies = [normalized[f][1] for f in freqs]
    return ascii_chart(
        freqs,
        {"delay": delays, "energy": energies},
        width=width,
        height=height,
        title=title or "energy-delay crescendo (x: MHz)",
    )
