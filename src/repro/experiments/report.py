"""Plain-text rendering of reproduced tables and figures."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import CacheStats
    from repro.faults.spec import FaultSpec

from repro.experiments.calibration import PAPER_TABLE2
from repro.experiments.figures import (
    CrescendoFigure,
    InternalComparison,
    MetricSelectionResult,
    OptimalFrontierFigure,
    PowerBreakdownResult,
    StrategyComparison,
    TraceFigure,
)
from repro.experiments.runner import SweepResult
from repro.experiments.tables import Table2Row

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_sweep",
    "render_comparison",
    "render_selection",
    "render_crescendos",
    "render_trace_observations",
    "render_internal",
    "render_optimal",
    "render_breakdown",
    "render_fault_summary",
    "render_runner_stats",
]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)


def render_table1(points: Sequence[tuple[float, float]]) -> str:
    rows = [(f"{ghz:.1f}GHz", f"{volts:.3f}V") for ghz, volts in points]
    return render_table(
        ["Frequency", "Supply voltage"], rows, "Table 1: operating points"
    )


def _cell(point: Optional[tuple[float, float]]) -> str:
    if point is None:
        return "   -  "
    d, e = point
    return f"{d:.2f}/{e:.2f}"


def render_table2(rows: Mapping[str, Table2Row], with_paper: bool = True) -> str:
    columns = ["auto", "600", "800", "1000", "1200", "1400"]
    headers = ["Code"] + [f"{c} (D/E)" for c in columns]
    body = []
    for code, row in sorted(rows.items()):
        body.append([row.tag] + [_cell(row.columns.get(c)) for c in columns])
        if with_paper and code in PAPER_TABLE2:
            paper = PAPER_TABLE2[code]
            body.append(
                ["  (paper)"]
                + [
                    _cell(paper.get(c)) if paper.get(c) and paper[c][1] is not None
                    else (f"{paper[c][0]:.2f}/  - " if paper.get(c) else "   -  ")
                    for c in columns
                ]
            )
    return render_table(headers, body, "Table 2: energy-performance profiles")


def render_sweep(sweep: SweepResult, title: str = "") -> str:
    rows = [
        (f"{mhz:.0f} MHz", f"{d:.3f}", f"{e:.3f}")
        for mhz, (d, e) in sorted(sweep.normalized.items())
    ]
    return render_table(
        ["Frequency", "Norm delay", "Norm energy"],
        rows,
        title or f"Frequency sweep: {sweep.workload}",
    )


def render_comparison(comp: StrategyComparison, title: str = "") -> str:
    rows = [
        (code, f"{d:.3f}", f"{e:.3f}")
        for code, d, e in comp.sorted_by_delay()
    ]
    return render_table(
        ["Code", "Norm delay", "Norm energy"],
        rows,
        title or f"Strategy: {comp.strategy} (sorted by delay)",
    )


def render_selection(sel: MetricSelectionResult) -> str:
    rows = [
        (code, f"{sel.selected_mhz[code]:.0f} MHz", f"{d:.3f}", f"{e:.3f}")
        for code, d, e in sel.sorted_by_delay()
    ]
    return render_table(
        ["Code", "Selected", "Norm delay", "Norm energy"],
        rows,
        f"EXTERNAL with {sel.metric} (sorted by delay)",
    )


def render_crescendos(fig: CrescendoFigure) -> str:
    rows = []
    for code, cres in sorted(fig.crescendos.items()):
        for mhz in cres.frequencies:
            d, e = cres.points[mhz]
            rows.append(
                (code, f"{mhz:.0f}", f"{d:.3f}", f"{e:.3f}", fig.types[code].value)
            )
    table = render_table(
        ["Code", "MHz", "Norm delay", "Norm energy", "Type"],
        rows,
        "Figure 8: energy-delay crescendos",
    )
    groups = ", ".join(
        f"Type {label}: {' '.join(codes)}" for label, codes in fig.groups().items()
    )
    return table + "\n" + groups


def render_trace_observations(fig: TraceFigure) -> str:
    lines = [f"Trace observations for {fig.code}:"]
    lines.append(
        f"  whole-job comm-to-comp ratio: {fig.comm_to_comp_ratio:.2f}"
    )
    lines.append(f"  rank asymmetry (max/min ratio): {fig.stats.imbalance:.2f}")
    dominant = ", ".join(f"{op} {secs:.1f}s" for op, secs in fig.stats.dominant_ops())
    lines.append(f"  dominant operations: {dominant}")
    for prof in fig.stats.ranks:
        lines.append(
            f"  rank {prof.rank}: compute {prof.compute_s:.1f}s, "
            f"comm {prof.comm_s:.1f}s, wait {prof.wait_s:.1f}s "
            f"(ratio {prof.comm_to_comp_ratio:.2f})"
        )
    return "\n".join(lines)


def render_internal(fig: InternalComparison) -> str:
    rows = []
    for label, (d, e) in fig.internal.items():
        rows.append((label, f"{d:.3f}", f"{e:.3f}"))
    for mhz, (d, e) in sorted(fig.external.items()):
        rows.append((f"external {mhz:.0f}", f"{d:.3f}", f"{e:.3f}"))
    rows.append(("auto (cpuspeed)", f"{fig.auto[0]:.3f}", f"{fig.auto[1]:.3f}"))
    return render_table(
        ["Schedule", "Norm delay", "Norm energy"],
        rows,
        f"INTERNAL vs EXTERNAL vs CPUSPEED: {fig.code}",
    )


def render_optimal(fig: OptimalFrontierFigure) -> str:
    """The shipped Figure 11/14 candidates against the computed frontier."""
    res = fig.result
    cap = 1.0 + fig.delta

    def status(delay: float) -> str:
        return "ok" if delay <= cap + 1e-9 else "exceeds cap"

    rows = []
    for label, (d, e) in fig.comparison.internal.items():
        rows.append((label, f"{d:.3f}", f"{e:.3f}", status(d)))
    for mhz, (d, e) in sorted(fig.comparison.external.items()):
        rows.append((f"external {mhz:.0f}", f"{d:.3f}", f"{e:.3f}", status(d)))
    d, e = fig.comparison.auto
    rows.append(("auto (cpuspeed)", f"{d:.3f}", f"{e:.3f}", status(d)))
    for c in res.frontier:
        tag = "frontier"
        if c.assignment == res.best.assignment:
            tag = "frontier <- optimal"
        gears = "  ".join(
            f"{g}:" + "/".join(f"{m:g}" for m in row)
            for g, row in enumerate(c.strategy.table)
        )
        rows.append(
            (f"computed [{gears}]", f"{c.norm_delay:.3f}",
             f"{c.norm_energy:.3f}", tag)
        )
    t = res.telemetry
    table = render_table(
        ["Schedule", "Norm delay", "Norm energy", "Status"],
        rows,
        f"Computed frontier vs shipped schedules: {fig.code} "
        f"(delay cap {cap:.3f})",
    )
    return table + (
        f"\nsearch: {t.space_size} plans over {res.n_groups} group(s) x "
        f"{len(res.phases)} phase(s); evaluated {t.candidates_evaluated} "
        f"({t.candidates_pruned} pruned) in {t.batches} batches"
        + (" [exhaustive]" if t.exhaustive else f" [{t.rounds} rounds]")
    )


def render_breakdown(fig: PowerBreakdownResult) -> str:
    rows = [
        (
            comp,
            f"{fig.load_fractions[comp] * 100:.1f}%",
            f"{fig.idle_fractions[comp] * 100:.1f}%",
        )
        for comp in ("cpu", "memory", "nic", "disk", "board")
    ]
    return render_table(
        ["Component", "Share (load)", "Share (idle)"],
        rows,
        "Figure 1: node power breakdown",
    )


def render_fault_summary(faults: "FaultSpec", stats: "CacheStats") -> str:
    """Degradation section for a campaign run under injected faults.

    Shows the fault environment (non-default spec fields) and how many
    of the delivered runs were actually perturbed — a run whose fault
    opportunities all drew "no fault" is indistinguishable from clean.
    """
    lines = [f"fault spec: {faults.describe()}"]
    if stats.runs:
        lines.append(
            f"degraded runs: {stats.degraded_runs}/{stats.runs} "
            f"({stats.degraded_runs / stats.runs:.0%})"
        )
    else:
        lines.append("degraded runs: none delivered through the runner")
    if not faults.active:
        lines.append("(spec is inactive: all rates zero — results are "
                     "bit-for-bit identical to a fault-free campaign)")
    return "\n".join(lines)


def render_runner_stats(runner) -> str:
    """One-line sweep-engine summary for a :class:`ParallelRunner`.

    The runner's own counters (hits/misses and the ``map_sweep`` tier
    telemetry: straightline fallbacks, batch splits, scalar re-runs,
    gear-plan lowering-cache reuse) plus the disk cache's health
    counters, which live on the cache's separate stats object
    (hot-layer hits, corrupt entries evicted).
    """
    line = runner.stats.render()
    cache = getattr(runner, "cache", None)
    if cache is not None and (
        cache.stats.hot_hits or cache.stats.evicted_corrupt
    ):
        line += f"\n  disk {cache.stats.render()}"
    return line
