"""Grid runners and normalization helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.framework import Measurement, run_workload
from repro.core.strategies import ExternalStrategy, NoDvsStrategy, Strategy
from repro.workloads.base import Workload

__all__ = [
    "RepeatSummary",
    "SweepResult",
    "frequency_sweep",
    "normalized_point",
    "run_baseline",
    "run_repeated",
    "summarize_repeats",
]


@dataclass
class SweepResult:
    """A frequency sweep for one workload.

    ``raw`` maps MHz → :class:`Measurement`; ``normalized`` maps MHz →
    (delay, energy) relative to the fastest frequency.
    """

    workload: str
    raw: dict[float, Measurement]
    baseline_mhz: float

    @property
    def normalized(self) -> dict[float, tuple[float, float]]:
        base = self.raw[self.baseline_mhz]
        return {
            mhz: m.normalized_against(base) for mhz, m in sorted(self.raw.items())
        }

    @property
    def profile(self) -> dict[float, tuple[float, float]]:
        """Alias used by metric-driven selection code."""
        return self.normalized


def run_baseline(workload: Workload, seed: int = 0, **kwargs) -> Measurement:
    """The paper's no-DVS reference run (all nodes at top speed)."""
    return run_workload(workload, NoDvsStrategy(), seed=seed, **kwargs)


def frequency_sweep(
    workload: Workload,
    frequencies_mhz: Optional[Sequence[float]] = None,
    seed: int = 0,
    **kwargs,
) -> SweepResult:
    """Run the workload at every static frequency (Table 2 columns)."""
    if frequencies_mhz is None:
        from repro.hardware.opoints import PENTIUM_M_TABLE

        frequencies_mhz = PENTIUM_M_TABLE.frequencies_mhz()
    raw: dict[float, Measurement] = {}
    for mhz in frequencies_mhz:
        raw[float(mhz)] = run_workload(
            workload, ExternalStrategy(mhz=mhz), seed=seed, **kwargs
        )
    return SweepResult(
        workload=workload.tag, raw=raw, baseline_mhz=float(max(frequencies_mhz))
    )


def normalized_point(
    workload: Workload,
    strategy: Strategy,
    baseline: Optional[Measurement] = None,
    seed: int = 0,
    **kwargs,
) -> tuple[float, float, Measurement]:
    """Run one strategy and normalize against the no-DVS baseline.

    Returns ``(norm_delay, norm_energy, measurement)``.
    """
    if baseline is None:
        baseline = run_baseline(workload, seed=seed, **kwargs)
    m = run_workload(workload, strategy, seed=seed, **kwargs)
    d, e = m.normalized_against(baseline)
    return d, e, m


@dataclass(frozen=True)
class RepeatSummary:
    """Mean/spread of repeated measurements (paper: ">= 3 times or more
    to identify outliers")."""

    n: int
    mean_elapsed_s: float
    std_elapsed_s: float
    mean_energy_j: float
    std_energy_j: float
    mean_acpi_energy_j: Optional[float]
    std_acpi_energy_j: Optional[float]

    @property
    def acpi_relative_spread(self) -> Optional[float]:
        """Coefficient of variation of the ACPI channel — the paper's
        reason for repeating: sensor jitter, not application noise."""
        if self.mean_acpi_energy_j in (None, 0.0):
            return None
        return (self.std_acpi_energy_j or 0.0) / self.mean_acpi_energy_j


def summarize_repeats(measurements: Sequence[Measurement]) -> RepeatSummary:
    """Aggregate repeated runs of the same configuration."""
    if not measurements:
        raise ValueError("nothing to summarize")
    import math

    def stats(values):
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(var)

    me, se = stats([m.elapsed_s for m in measurements])
    mj, sj = stats([m.energy_j for m in measurements])
    acpi = [m.acpi_energy_j for m in measurements]
    if any(a is None for a in acpi):
        ma = sa = None
    else:
        ma, sa = stats(acpi)
    return RepeatSummary(
        n=len(measurements),
        mean_elapsed_s=me,
        std_elapsed_s=se,
        mean_energy_j=mj,
        std_energy_j=sj,
        mean_acpi_energy_j=ma,
        std_acpi_energy_j=sa,
    )


def run_repeated(
    workload: Workload,
    strategy: Strategy,
    seeds: Iterable[int] = (0, 1, 2),
    **kwargs,
) -> list[Measurement]:
    """Repeat a run with different seeds (the paper repeats >= 3x).

    Measurement-channel jitter (battery refresh) differs per seed; the
    simulated application itself is deterministic.
    """
    return [run_workload(workload, strategy, seed=s, **kwargs) for s in seeds]
