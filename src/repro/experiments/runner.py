"""Grid runners and normalization helpers.

Every helper here routes its simulations through the *current runner*
(:mod:`repro.experiments.parallel`), so installing a
:class:`~repro.experiments.parallel.ParallelRunner` parallelises and
memoizes every sweep without the callers changing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.framework import Measurement
from repro.core.strategies import ExternalStrategy, NoDvsStrategy, Strategy
from repro.experiments.parallel import RunTask, current_runner
from repro.workloads.base import Workload

__all__ = [
    "RepeatSummary",
    "SweepResult",
    "count_degraded",
    "frequency_sweep",
    "frequency_sweep_many",
    "normalized_point",
    "run_baseline",
    "run_repeated",
    "summarize_repeats",
]


def count_degraded(measurements: Iterable[Measurement]) -> int:
    """How many measurements were perturbed by injected faults.

    A run simulated under a fault spec only carries a degradation
    report (``extras["faults"]``) when a fault actually *fired*; a run
    whose opportunities all drew "no fault" counts as clean here.
    """
    return sum(1 for m in measurements if m.extras.get("faults"))


@dataclass
class SweepResult:
    """A frequency sweep for one workload.

    ``raw`` maps MHz → :class:`Measurement`; ``normalized`` maps MHz →
    (delay, energy) relative to the fastest frequency.
    """

    workload: str
    raw: dict[float, Measurement]
    baseline_mhz: float
    #: lazily computed normalization (``raw`` is treated as immutable
    #: once the first normalized point has been read).
    _normalized: Optional[dict[float, tuple[float, float]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def normalized(self) -> dict[float, tuple[float, float]]:
        cached = self._normalized
        if cached is None:
            base = self.raw[self.baseline_mhz]
            cached = self._normalized = {
                mhz: m.normalized_against(base)
                for mhz, m in sorted(self.raw.items())
            }
        return cached

    @property
    def profile(self) -> dict[float, tuple[float, float]]:
        """Alias used by metric-driven selection code."""
        return self.normalized


def run_baseline(workload: Workload, seed: int = 0, **kwargs) -> Measurement:
    """The paper's no-DVS reference run (all nodes at top speed)."""
    return current_runner().run(workload, NoDvsStrategy(), seed=seed, **kwargs)


def _resolved_frequencies(
    frequencies_mhz: Optional[Sequence[float]],
) -> Sequence[float]:
    if frequencies_mhz is not None:
        return frequencies_mhz
    from repro.hardware.opoints import PENTIUM_M_TABLE

    return PENTIUM_M_TABLE.frequencies_mhz()


def frequency_sweep(
    workload: Workload,
    frequencies_mhz: Optional[Sequence[float]] = None,
    seed: int = 0,
    **kwargs,
) -> SweepResult:
    """Run the workload at every static frequency (Table 2 columns)."""
    return frequency_sweep_many([workload], frequencies_mhz, seed=seed, **kwargs)[
        workload.tag
    ]


def frequency_sweep_many(
    workloads: Sequence[Workload],
    frequencies_mhz: Optional[Sequence[float]] = None,
    seed: int = 0,
    **kwargs,
) -> dict[str, SweepResult]:
    """Sweep several workloads as one flat task grid (tag → sweep).

    Submitting the full (workload × frequency) grid at once keeps every
    worker of a parallel runner busy instead of parallelising only
    within one workload's handful of frequencies, and chunked
    submission (``map_sweep``) amortizes pool dispatch over points that
    the straightline tier finishes in microseconds.
    """
    frequencies = [float(mhz) for mhz in _resolved_frequencies(frequencies_mhz)]
    tasks = [
        RunTask(workload, ExternalStrategy(mhz=mhz), seed, dict(kwargs))
        for workload in workloads
        for mhz in frequencies
    ]
    measurements = current_runner().map_sweep(tasks)
    sweeps: dict[str, SweepResult] = {}
    n_freq = len(frequencies)
    for i, workload in enumerate(workloads):
        raw = dict(zip(frequencies, measurements[i * n_freq : (i + 1) * n_freq]))
        sweeps[workload.tag] = SweepResult(
            workload=workload.tag, raw=raw, baseline_mhz=float(max(frequencies))
        )
    return sweeps


def normalized_point(
    workload: Workload,
    strategy: Strategy,
    baseline: Optional[Measurement] = None,
    seed: int = 0,
    **kwargs,
) -> tuple[float, float, Measurement]:
    """Run one strategy and normalize against the no-DVS baseline.

    Returns ``(norm_delay, norm_energy, measurement)``.
    """
    if baseline is None:
        baseline = run_baseline(workload, seed=seed, **kwargs)
    m = current_runner().run(workload, strategy, seed=seed, **kwargs)
    d, e = m.normalized_against(baseline)
    return d, e, m


@dataclass(frozen=True)
class RepeatSummary:
    """Mean/spread of repeated measurements (paper: ">= 3 times or more
    to identify outliers")."""

    n: int
    mean_elapsed_s: float
    std_elapsed_s: float
    mean_energy_j: float
    std_energy_j: float
    mean_acpi_energy_j: Optional[float]
    std_acpi_energy_j: Optional[float]

    @property
    def acpi_relative_spread(self) -> Optional[float]:
        """Coefficient of variation of the ACPI channel — the paper's
        reason for repeating: sensor jitter, not application noise."""
        if self.mean_acpi_energy_j in (None, 0.0):
            return None
        return (self.std_acpi_energy_j or 0.0) / self.mean_acpi_energy_j


def summarize_repeats(measurements: Sequence[Measurement]) -> RepeatSummary:
    """Aggregate repeated runs of the same configuration."""
    if not measurements:
        raise ValueError("nothing to summarize")
    import math

    def stats(values):
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(var)

    me, se = stats([m.elapsed_s for m in measurements])
    mj, sj = stats([m.energy_j for m in measurements])
    acpi = [m.acpi_energy_j for m in measurements]
    if any(a is None for a in acpi):
        ma = sa = None
    else:
        ma, sa = stats(acpi)
    return RepeatSummary(
        n=len(measurements),
        mean_elapsed_s=me,
        std_elapsed_s=se,
        mean_energy_j=mj,
        std_energy_j=sj,
        mean_acpi_energy_j=ma,
        std_acpi_energy_j=sa,
    )


def run_repeated(
    workload: Workload,
    strategy: Strategy,
    seeds: Iterable[int] = (0, 1, 2),
    **kwargs,
) -> list[Measurement]:
    """Repeat a run with different seeds (the paper repeats >= 3x).

    Measurement-channel jitter (battery refresh) differs per seed; the
    simulated application itself is deterministic, so the seeds map to
    independent tasks a parallel runner executes concurrently.
    """
    tasks = [RunTask(workload, strategy, s, dict(kwargs)) for s in seeds]
    return current_runner().map(tasks)
