"""Calibration sensitivity analysis.

How much do the reproduced conclusions depend on the fitted constants?
This module perturbs the calibrated power model and re-scores fidelity
against the published Table 2, and checks whether the paper's
*qualitative* claims (the crescendo taxonomy, the FT INTERNAL win)
survive each perturbation — the robustness appendix a careful
reproduction should carry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.hardware.power import NEMO_POWER, NodePowerParameters
from repro.core.crescendo import Crescendo
from repro.core.strategies import ExternalStrategy, InternalStrategy, NoDvsStrategy, PhasePolicy
from repro.experiments.calibration import PAPER_CRESCENDO_TYPES
from repro.experiments.parallel import RunTask, current_runner
from repro.workloads import get_workload

__all__ = ["PerturbationResult", "power_model_sensitivity", "perturbed_power"]


@dataclass(frozen=True)
class PerturbationResult:
    """Outcome of one perturbed-model evaluation."""

    parameter: str
    scale: float
    #: measured (norm delay, norm energy) of FT at 600 MHz
    ft_600: tuple[float, float]
    #: crescendo classification still matches the paper for the codes run
    taxonomy_holds: bool
    #: FT INTERNAL still saves >= 20 % at <= 2 % delay
    internal_win_holds: bool


def perturbed_power(parameter: str, scale: float) -> NodePowerParameters:
    """NEMO power parameters with one constant scaled."""
    if not hasattr(NEMO_POWER, parameter):
        raise ValueError(f"unknown power parameter {parameter!r}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    return replace(NEMO_POWER, **{parameter: getattr(NEMO_POWER, parameter) * scale})


def _evaluate(power: NodePowerParameters, parameter: str, scale: float,
              codes: Sequence[str], klass: str, seed: int) -> PerturbationResult:
    kwargs = {"power": power}
    sweep_mhz = (600.0, 1000.0)
    workloads = {code: get_workload(code, klass=klass) for code in codes}
    tasks: list[RunTask] = []
    for code in codes:
        w = workloads[code]
        tasks.append(RunTask(w, NoDvsStrategy(), seed, dict(kwargs)))
        tasks.extend(
            RunTask(w, ExternalStrategy(mhz=mhz), seed, dict(kwargs))
            for mhz in sweep_mhz
        )
    # FT INTERNAL headline under the perturbed model
    ft = get_workload("FT", klass=klass)
    tasks.append(RunTask(ft, NoDvsStrategy(), seed, dict(kwargs)))
    tasks.append(
        RunTask(
            ft,
            InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400)),
            seed,
            dict(kwargs),
        )
    )
    results = current_runner().map_sweep(tasks)

    taxonomy_holds = True
    ft_600 = (0.0, 0.0)
    stride = 1 + len(sweep_mhz)
    for i, code in enumerate(codes):
        base = results[i * stride]
        points = {1400.0: (1.0, 1.0)}
        for j, mhz in enumerate(sweep_mhz):
            points[mhz] = results[i * stride + 1 + j].normalized_against(base)
        if code == "FT":
            ft_600 = points[600.0]
        measured_type = Crescendo(code, points).classify().value
        if measured_type != PAPER_CRESCENDO_TYPES[code]:
            taxonomy_holds = False

    base, internal = results[-2], results[-1]
    d, e = internal.normalized_against(base)
    internal_win_holds = d <= 1.02 and e <= 0.80

    return PerturbationResult(parameter, scale, ft_600, taxonomy_holds, internal_win_holds)


def power_model_sensitivity(
    parameters: Sequence[str] = (
        "cpu_dynamic_max_w",
        "cpu_leakage_max_w",
        "board_w",
        "nic_active_w",
    ),
    scales: Sequence[float] = (0.8, 1.0, 1.2),
    codes: Sequence[str] = ("EP", "FT"),
    klass: str = "B",
    seed: int = 0,
) -> list[PerturbationResult]:
    """Sweep ±20 % perturbations of the fitted power constants.

    Delays are power-independent by construction, so the question is
    whether the *energy*-derived conclusions (taxonomy, INTERNAL win)
    are knife-edge artifacts of the calibration.  They are not: see
    the tests, which assert both claims hold across the whole grid.
    """
    results = []
    for parameter in parameters:
        for scale in scales:
            power = perturbed_power(parameter, scale)
            results.append(
                _evaluate(power, parameter, scale, codes, klass, seed)
            )
    return results
