"""Persisting experiment results.

Results are plain dataclasses over floats, so a JSON round-trip covers
archiving, diffing between calibrations, and feeding external plotting
tools.  Only measurement *summaries* are stored (not traces), matching
what the paper's data-collection software keeps per run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Union

from repro.core.framework import Measurement
from repro.experiments.runner import SweepResult

__all__ = [
    "measurement_to_dict",
    "measurement_from_dict",
    "sweep_to_dict",
    "sweep_from_dict",
    "save_json",
    "load_json",
]


def measurement_to_dict(m: Measurement) -> dict[str, Any]:
    """Serializable summary of one measurement (drops trace/report)."""
    return {
        "workload": m.workload,
        "strategy": m.strategy,
        "elapsed_s": m.elapsed_s,
        "energy_j": m.energy_j,
        "per_node_energy_j": {str(k): v for k, v in m.per_node_energy_j.items()},
        "dvs_transitions": m.dvs_transitions,
        "time_at_mhz": {str(k): v for k, v in m.time_at_mhz.items()},
        "acpi_energy_j": m.acpi_energy_j,
        "baytech_energy_j": m.baytech_energy_j,
    }


def measurement_from_dict(data: Mapping[str, Any]) -> Measurement:
    return Measurement(
        workload=data["workload"],
        strategy=data["strategy"],
        elapsed_s=float(data["elapsed_s"]),
        energy_j=float(data["energy_j"]),
        per_node_energy_j={int(k): float(v) for k, v in data["per_node_energy_j"].items()},
        dvs_transitions=int(data["dvs_transitions"]),
        time_at_mhz={float(k): float(v) for k, v in data["time_at_mhz"].items()},
        acpi_energy_j=data.get("acpi_energy_j"),
        baytech_energy_j=data.get("baytech_energy_j"),
    )


def sweep_to_dict(sweep: SweepResult) -> dict[str, Any]:
    return {
        "workload": sweep.workload,
        "baseline_mhz": sweep.baseline_mhz,
        "raw": {str(mhz): measurement_to_dict(m) for mhz, m in sweep.raw.items()},
    }


def sweep_from_dict(data: Mapping[str, Any]) -> SweepResult:
    return SweepResult(
        workload=data["workload"],
        raw={float(mhz): measurement_from_dict(m) for mhz, m in data["raw"].items()},
        baseline_mhz=float(data["baseline_mhz"]),
    )


def save_json(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Write a results payload (already dict-ified) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> dict[str, Any]:
    return json.loads(Path(path).read_text())
