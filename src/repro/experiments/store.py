"""Persisting experiment results + the measurement memoization cache.

Results are plain dataclasses over floats, so a JSON round-trip covers
archiving, diffing between calibrations, and feeding external plotting
tools.  Only measurement *summaries* are stored (not traces), matching
what the paper's data-collection software keeps per run.

The second half of this module is the content-addressed
:class:`MeasurementCache`: every simulated sweep point is keyed by a
stable hash of (workload spec, strategy config, seed, cluster/run
parameters, model version), so a campaign never re-simulates a point
another figure already produced.  See ``docs/performance.md`` for the
key schema and the invalidation rules.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from collections import OrderedDict
from collections.abc import Mapping as AbcMapping
from collections.abc import Sequence as AbcSequence
from collections.abc import Set as AbcSet
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

from typing import TYPE_CHECKING

from repro.core.framework import Measurement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SweepResult

__all__ = [
    "MAX_SHARD_DEPTH",
    "MODEL_VERSION",
    "CacheStats",
    "MeasurementCache",
    "UncacheableSpecError",
    "cache_key",
    "canonical_spec",
    "default_cache_dir",
    "measurement_to_dict",
    "measurement_from_dict",
    "sweep_to_dict",
    "sweep_from_dict",
    "save_json",
    "load_json",
]

#: Version of the simulation model the cache keys embed.  Bump this
#: whenever a change anywhere in the simulator alters the *outputs* of
#: ``run_workload`` for an unchanged configuration — every cached
#: measurement is invalidated at once.
MODEL_VERSION = 1


def measurement_to_dict(m: Measurement) -> dict[str, Any]:
    """Serializable summary of one measurement (drops trace/report).

    ``extras`` (JSON-safe by contract — e.g. the fault-degradation
    counters) round-trips, so a cached faulty run keeps its report.
    """
    payload = {
        "workload": m.workload,
        "strategy": m.strategy,
        "elapsed_s": m.elapsed_s,
        "energy_j": m.energy_j,
        "per_node_energy_j": {str(k): v for k, v in m.per_node_energy_j.items()},
        "dvs_transitions": m.dvs_transitions,
        "time_at_mhz": {str(k): v for k, v in m.time_at_mhz.items()},
        "acpi_energy_j": m.acpi_energy_j,
        "baytech_energy_j": m.baytech_energy_j,
    }
    if m.extras:
        payload["extras"] = m.extras
    return payload


def measurement_from_dict(data: Mapping[str, Any]) -> Measurement:
    return Measurement(
        workload=data["workload"],
        strategy=data["strategy"],
        elapsed_s=float(data["elapsed_s"]),
        energy_j=float(data["energy_j"]),
        per_node_energy_j={int(k): float(v) for k, v in data["per_node_energy_j"].items()},
        dvs_transitions=int(data["dvs_transitions"]),
        time_at_mhz={float(k): float(v) for k, v in data["time_at_mhz"].items()},
        acpi_energy_j=data.get("acpi_energy_j"),
        baytech_energy_j=data.get("baytech_energy_j"),
        extras=dict(data.get("extras") or {}),
    )


def sweep_to_dict(sweep: SweepResult) -> dict[str, Any]:
    return {
        "workload": sweep.workload,
        "baseline_mhz": sweep.baseline_mhz,
        "raw": {str(mhz): measurement_to_dict(m) for mhz, m in sweep.raw.items()},
    }


def sweep_from_dict(data: Mapping[str, Any]) -> "SweepResult":
    from repro.experiments.runner import SweepResult

    return SweepResult(
        workload=data["workload"],
        raw={float(mhz): measurement_from_dict(m) for mhz, m in data["raw"].items()},
        baseline_mhz=float(data["baseline_mhz"]),
    )


def save_json(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Write a results payload (already dict-ified) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# measurement memoization cache
# ----------------------------------------------------------------------
class UncacheableSpecError(ValueError):
    """A run spec contains state a content key cannot capture.

    Raised for local functions and lambdas: two different lambdas share
    the qualname ``...<locals>.<lambda>``, so keying them by name would
    silently alias distinct configurations.  Runs carrying one simply
    execute uncached.
    """


def canonical_spec(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable, deterministic structure.

    Configuration objects (workloads, strategies, hardware parameter
    dataclasses) are flattened to ``[class name, sorted public attrs]``;
    private (``_``-prefixed) attributes are runtime state and excluded,
    *except* for sequence-like objects (e.g. an operating-point table)
    whose elements are part of the configuration and are canonicalised
    as a list.  Floats go through ``repr`` so the key is exact, not
    rounded.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__qualname__,
            [[f.name, canonical_spec(getattr(obj, f.name))]
             for f in dataclasses.fields(obj)],
        ]
    if isinstance(obj, AbcMapping):
        return [
            "__map__",
            sorted(
                ([canonical_spec(k), canonical_spec(v)] for k, v in obj.items()),
                key=repr,
            ),
        ]
    if isinstance(obj, (AbcSet, frozenset)):
        return ["__set__", sorted((canonical_spec(x) for x in obj), key=repr)]
    if isinstance(obj, (list, tuple)):
        return [canonical_spec(x) for x in obj]
    if isinstance(obj, AbcSequence):  # sequence-like config (opoint tables)
        return [type(obj).__qualname__, [canonical_spec(x) for x in obj]]
    # Functions/methods before the generic-object branch: they carry a
    # __dict__ too, and would otherwise all collide as ["function", []].
    if isinstance(obj, type) or inspect.isroutine(obj):
        qualname = getattr(obj, "__qualname__", None) or repr(obj)
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise UncacheableSpecError(
                f"cannot build a content key for local callable {qualname!r}"
            )
        return ["__callable__", f"{getattr(obj, '__module__', '?')}.{qualname}"]
    if hasattr(obj, "__dict__") or hasattr(obj, "__slots__"):
        attrs: dict[str, Any] = {}
        if hasattr(obj, "__dict__"):
            attrs.update(vars(obj))
        for klass in type(obj).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if hasattr(obj, name):
                    attrs.setdefault(name, getattr(obj, name))
        return [
            type(obj).__qualname__,
            sorted(
                [[k, canonical_spec(v)] for k, v in attrs.items()
                 if not k.startswith("_")],
            ),
        ]
    if callable(obj):
        return getattr(obj, "__qualname__", repr(obj))
    return repr(obj)


def cache_key(
    workload: Any,
    strategy: Any,
    seed: int,
    run_kwargs: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content hash identifying one simulated sweep point.

    The key covers the workload spec, the strategy class + its public
    configuration, the seed, every ``run_workload`` keyword that shapes
    the cluster (power model, operating points, network parameters,
    transition latency, ...) and :data:`MODEL_VERSION`.  ``None``-valued
    keywords are dropped first: every ``run_workload`` keyword uses
    ``None`` to mean "the default", so an explicit ``faults=None`` (or
    ``network_params=None``) must share the unspecified key's slot.
    """
    spec = {
        "model_version": MODEL_VERSION,
        "workload": canonical_spec(workload),
        "workload_tag": getattr(workload, "tag", None),
        "strategy": canonical_spec(strategy),
        "seed": seed,
        "kwargs": canonical_spec(
            # ``engine`` selects an execution tier, never an output: the
            # straightline accumulator is bit-identical to the event
            # engine, so both tiers share one cache slot.
            {
                k: v
                for k, v in (run_kwargs or {}).items()
                if v is not None and k != "engine"
            }
        ),
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one runner/cache lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: results delivered (fresh or cached) and, of those, how many
    #: were degraded by injected faults (``extras["faults"]`` present).
    runs: int = 0
    degraded_runs: int = 0
    #: corrupt/truncated on-disk entries unlinked during ``get`` (each
    #: also counts as a miss — the point re-simulates and re-stores).
    evicted_corrupt: int = 0
    #: hits served from the in-process hot layer (no ``json.loads``).
    hot_hits: int = 0
    #: ``map_sweep`` batch-tier telemetry: sweep points the straightline
    #: tiers declined at run time (finished on the event engine), batch
    #: groups the vectorized tier rejected, and how many points those
    #: splits re-ran scalar.
    straightline_fallbacks: int = 0
    batch_splits: int = 0
    batch_scalar_reruns: int = 0
    #: sweep points measured on the stateful-controller straightline
    #: tier (daemon strategies run off the event heap), and the total
    #: poll/reduction ticks those runs applied.
    controller_runs: int = 0
    reduction_ticks: int = 0
    #: gear-plan lowering cache reuse across the sweep: hits return a
    #: previously lowered (plan, opoints) action table; misses lower
    #: fresh (and may evict, the per-program table is LRU-bounded).
    lowering_hits: int = 0
    lowering_misses: int = 0
    #: gear-plan optimizer telemetry (:mod:`repro.optimize.search`):
    #: candidate plans measured, how many the dominance/constraint
    #: pruning discarded, and the ``run_batch`` calls that scored them.
    opt_candidates: int = 0
    opt_pruned: int = 0
    opt_batches: int = 0
    opt_max_batch: int = 0
    #: why runs paid event-engine or per-rank cost: stable reason code
    #: (``p2p_unclassifiable``, ``divergent_control``, ``dvs_in_flight``,
    #: …) → occurrence count, from scalar straightline declines and
    #: batch-tier quotient declines alike.
    fallback_reasons: dict = dataclasses.field(default_factory=dict)

    def count_fallback(self, reason, n: int = 1) -> None:
        """Bump the per-reason fallback counter (``None`` is ignored)."""
        if reason:
            self.fallback_reasons[reason] = (
                self.fallback_reasons.get(reason, 0) + n
            )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def render(self) -> str:
        if not self.lookups:
            base = "cache: unused"
        else:
            rate = self.hits / self.lookups
            base = (
                f"cache: {self.hits} hits / {self.misses} misses "
                f"({rate:.0%} hit rate, {self.stores} stored)"
            )
        if self.hot_hits:
            base += f"; {self.hot_hits} served hot"
        if self.evicted_corrupt:
            base += f"; {self.evicted_corrupt} corrupt entries evicted"
        if self.batch_splits or self.straightline_fallbacks:
            base += (
                f"; tiers: {self.straightline_fallbacks} event-engine "
                f"fallbacks, {self.batch_splits} batch splits "
                f"({self.batch_scalar_reruns} points re-run scalar)"
            )
        if self.fallback_reasons:
            detail = ", ".join(
                f"{reason} x{count}"
                for reason, count in sorted(self.fallback_reasons.items())
            )
            base += f"; fallback reasons: {detail}"
        if self.controller_runs:
            base += (
                f"; {self.controller_runs} stateful-controller runs "
                f"({self.reduction_ticks} reduction ticks)"
            )
        if self.lowering_hits or self.lowering_misses:
            base += (
                f"; lowering: {self.lowering_hits} reused / "
                f"{self.lowering_misses} lowered"
            )
        if self.opt_candidates:
            base += (
                f"; optimizer: {self.opt_candidates} candidates "
                f"({self.opt_pruned} pruned) in {self.opt_batches} "
                f"batches (largest {self.opt_max_batch})"
            )
        if self.degraded_runs:
            base += (
                f"; {self.degraded_runs}/{self.runs} runs degraded "
                "by injected faults"
            )
        return base


#: Deepest supported shard layout (``aa/bb/<key>.json``).  Reads probe
#: every depth from 0 (flat) to this, so caches written at any
#: historical layout stay readable by any store.
MAX_SHARD_DEPTH = 2


class MeasurementCache:
    """Content-addressed on-disk memoization of :class:`Measurement`.

    One JSON file per sweep point, named by its :func:`cache_key`, in
    prefix fan-out directories.  ``shard_depth`` picks the canonical
    layout: ``0`` is flat (``<key>.json`` directly under the root),
    ``1`` (the default, and the historical layout) fans out by the
    first key byte (``ab/<key>.json``), ``2`` adds a second level
    (``ab/cd/<key>.json``) for service deployments where one warmed
    cache directory holds millions of slots and per-directory entry
    counts start to matter.  Lookups are *layout-agnostic*: a key
    stored at any depth is found regardless of the store's own
    ``shard_depth`` (canonical location first, then the legacy
    layouts), so pointing a sharded store at a flat pre-sharding cache
    just works.  Writes always land at the canonical depth, and
    :meth:`rehome` migrates a whole directory in place.

    Only measurement summaries are stored (never traces or reports),
    so a cached hit is bit-for-bit identical to a fresh uncached run
    for every summary field.

    Two robustness/throughput layers on top of the flat files:

    * a corrupt or truncated entry (a writer killed mid-``replace`` on
      a non-atomic filesystem, a bad disk block) is *unlinked* on first
      contact and counted in ``stats.evicted_corrupt``, so the slot
      re-simulates and re-stores once instead of re-failing every run;
    * an in-process hot layer memoizes up to ``hot_capacity`` parsed
      measurements (LRU), so the sweeps' refrain keys — every figure
      re-reading the same no-DVS baselines — skip ``json.loads``.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        hot_capacity: int = 4096,
        shard_depth: int = 1,
    ) -> None:
        if hot_capacity < 0:
            raise ValueError("hot_capacity must be >= 0")
        if not 0 <= shard_depth <= MAX_SHARD_DEPTH:
            raise ValueError(
                f"shard_depth must be in [0, {MAX_SHARD_DEPTH}]"
            )
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        self.hot_capacity = hot_capacity
        self.shard_depth = shard_depth
        self._hot: "OrderedDict[str, Measurement]" = OrderedDict()

    def _path_at(self, key: str, depth: int) -> Path:
        path = self.root
        for level in range(depth):
            path = path / key[2 * level : 2 * level + 2]
        return path / f"{key}.json"

    def _path(self, key: str) -> Path:
        """Canonical location for ``key`` under this store's layout."""
        return self._path_at(key, self.shard_depth)

    def _probe_paths(self, key: str):
        """Candidate locations: canonical first, then legacy layouts."""
        yield self._path(key)
        for depth in range(MAX_SHARD_DEPTH + 1):
            if depth != self.shard_depth:
                yield self._path_at(key, depth)

    def _remember(self, key: str, measurement: Measurement) -> None:
        hot = self._hot
        if self.hot_capacity == 0:
            return
        if key in hot:
            hot.move_to_end(key)
        hot[key] = measurement
        while len(hot) > self.hot_capacity:
            hot.popitem(last=False)

    def get(self, key: str) -> Optional[Measurement]:
        """The cached measurement for ``key``, or None (counted)."""
        hot = self._hot.get(key)
        if hot is not None:
            self._hot.move_to_end(key)
            self.stats.hits += 1
            self.stats.hot_hits += 1
            return hot
        for path in self._probe_paths(key):
            try:
                text = path.read_text()
            except OSError:
                continue
            try:
                measurement = measurement_from_dict(
                    json.loads(text)["measurement"]
                )
            except (ValueError, KeyError, TypeError):
                # Corrupt/truncated entry: evict it so the slot heals
                # with the next store instead of re-failing on every
                # lookup.  Legacy-layout copies of the slot are probed
                # next, so one bad file never shadows a good one.
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent eviction
                    pass
                self.stats.evicted_corrupt += 1
                continue
            self.stats.hits += 1
            self._remember(key, measurement)
            return measurement
        self.stats.misses += 1
        return None

    def put(self, key: str, measurement: Measurement) -> Path:
        """Store ``measurement`` under ``key`` (summary fields only)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "measurement": measurement_to_dict(measurement)}
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)  # atomic vs concurrent writers of the same key
        self.stats.stores += 1
        self._remember(key, measurement)
        return path

    @property
    def hot_size(self) -> int:
        """Entries currently held in the in-process hot layer."""
        return len(self._hot)

    def entries(self) -> Iterator[Path]:
        """Every on-disk entry, across all shard layouts."""
        if not self.root.exists():
            return
        patterns = ["*.json"]
        for _ in range(MAX_SHARD_DEPTH):
            patterns.append("*/" + patterns[-1])
        for pattern in patterns:
            yield from self.root.glob(pattern)

    def warm(self, limit: Optional[int] = None) -> int:
        """Preload up to ``limit`` entries into the hot LRU.

        A long-running service calls this once at startup so its first
        tenants hit parsed measurements instead of paying a
        ``json.loads`` each; warming never counts in ``stats`` (it is
        not a lookup) and silently skips corrupt files (they stay for
        :meth:`get` to evict and count).  Returns how many entries
        were loaded.
        """
        budget = self.hot_capacity if limit is None else min(limit, self.hot_capacity)
        loaded = 0
        for path in self.entries():
            if loaded >= budget:
                break
            try:
                payload = json.loads(path.read_text())
                key = payload["key"]
                measurement = measurement_from_dict(payload["measurement"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if key not in self._hot:
                self._remember(key, measurement)
                loaded += 1
        return loaded

    def rehome(self) -> int:
        """Move every entry to this store's canonical shard layout.

        Reading is layout-agnostic, so migration is optional — this
        exists for deployments that want directory listings and entry
        counts to stay balanced after switching ``shard_depth``.
        Returns how many files moved; empty legacy shard directories
        are pruned.
        """
        moved = 0
        for path in list(self.entries()):
            key = path.stem
            target = self._path(key)
            if path == target:
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            path.replace(target)
            moved += 1
            parent = path.parent
            while parent != self.root and not any(parent.iterdir()):
                parent.rmdir()
                parent = parent.parent
        return moved

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        self._hot.clear()
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
