"""Table regeneration (Table 1 and Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.opoints import PENTIUM_M_TABLE, OperatingPointTable
from repro.core.framework import Measurement, run_workload
from repro.core.strategies import CpuspeedDaemonStrategy
from repro.experiments.calibration import FREQUENCIES_MHZ, PAPER_TABLE2
from repro.experiments.runner import SweepResult, frequency_sweep
from repro.workloads import get_workload

__all__ = ["table1", "Table2Row", "table2", "NPB_CODES"]

#: the paper's eight codes with their rank counts (C class).
NPB_CODES: dict[str, int] = {
    "BT": 9,
    "CG": 8,
    "EP": 8,
    "FT": 8,
    "IS": 8,
    "LU": 8,
    "MG": 8,
    "SP": 9,
}


def table1(opoints: OperatingPointTable = PENTIUM_M_TABLE) -> list[tuple[float, float]]:
    """Table 1: (frequency GHz, supply voltage V), fastest first."""
    return [
        (p.frequency_hz / 1e9, p.voltage_v) for p in reversed(list(opoints))
    ]


@dataclass
class Table2Row:
    """One code's measured Table 2 row."""

    code: str
    tag: str
    #: column ("auto" or MHz string) -> (norm delay, norm energy)
    columns: dict[str, tuple[float, float]]
    sweep: SweepResult
    auto: Measurement

    def paper_row(self) -> dict[str, Optional[tuple[float, float]]]:
        return PAPER_TABLE2.get(self.code, {})


def table2(
    codes: Optional[Sequence[str]] = None,
    klass: str = "C",
    seed: int = 0,
) -> dict[str, Table2Row]:
    """Regenerate Table 2: NPB × {auto, 600..1400 MHz} profiles.

    Each code runs once per static frequency plus once under the
    CPUSPEED daemon; all values are normalized to the 1400 MHz run.
    """
    rows: dict[str, Table2Row] = {}
    for code in codes or NPB_CODES:
        code = code.upper()
        workload = get_workload(code, klass=klass, nprocs=NPB_CODES[code])
        sweep = frequency_sweep(workload, FREQUENCIES_MHZ, seed=seed)
        auto = run_workload(workload, CpuspeedDaemonStrategy(), seed=seed)
        baseline = sweep.raw[sweep.baseline_mhz]
        columns: dict[str, tuple[float, float]] = {
            "auto": auto.normalized_against(baseline)
        }
        for mhz, point in sweep.normalized.items():
            columns[f"{mhz:.0f}"] = point
        rows[code] = Table2Row(
            code=code, tag=workload.tag, columns=columns, sweep=sweep, auto=auto
        )
    return rows
