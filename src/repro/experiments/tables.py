"""Table regeneration (Table 1 and Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.opoints import PENTIUM_M_TABLE, OperatingPointTable
from repro.core.framework import Measurement
from repro.core.strategies import CpuspeedDaemonStrategy, ExternalStrategy
from repro.experiments.calibration import FREQUENCIES_MHZ, PAPER_TABLE2
from repro.experiments.parallel import RunTask, current_runner
from repro.experiments.runner import SweepResult
from repro.workloads import get_workload

__all__ = ["table1", "Table2Row", "table2", "NPB_CODES"]

#: the paper's eight codes with their rank counts (C class).
NPB_CODES: dict[str, int] = {
    "BT": 9,
    "CG": 8,
    "EP": 8,
    "FT": 8,
    "IS": 8,
    "LU": 8,
    "MG": 8,
    "SP": 9,
}


def table1(opoints: OperatingPointTable = PENTIUM_M_TABLE) -> list[tuple[float, float]]:
    """Table 1: (frequency GHz, supply voltage V), fastest first."""
    return [
        (p.frequency_hz / 1e9, p.voltage_v) for p in reversed(list(opoints))
    ]


@dataclass
class Table2Row:
    """One code's measured Table 2 row."""

    code: str
    tag: str
    #: column ("auto" or MHz string) -> (norm delay, norm energy)
    columns: dict[str, tuple[float, float]]
    sweep: SweepResult
    auto: Measurement

    def paper_row(self) -> dict[str, Optional[tuple[float, float]]]:
        return PAPER_TABLE2.get(self.code, {})


def table2(
    codes: Optional[Sequence[str]] = None,
    klass: str = "C",
    seed: int = 0,
) -> dict[str, Table2Row]:
    """Regenerate Table 2: NPB × {auto, 600..1400 MHz} profiles.

    Each code runs once per static frequency plus once under the
    CPUSPEED daemon; all values are normalized to the 1400 MHz run.
    The full (code × column) grid is submitted to the current runner as
    one flat batch so a parallel runner saturates its workers.
    """
    code_list = [c.upper() for c in (codes or NPB_CODES)]
    workloads = {
        code: get_workload(code, klass=klass, nprocs=NPB_CODES[code])
        for code in code_list
    }
    frequencies = [float(mhz) for mhz in FREQUENCIES_MHZ]
    tasks: list[RunTask] = []
    for code in code_list:
        workload = workloads[code]
        tasks.extend(
            RunTask(workload, ExternalStrategy(mhz=mhz), seed)
            for mhz in frequencies
        )
        tasks.append(RunTask(workload, CpuspeedDaemonStrategy(), seed))
    measurements = current_runner().map(tasks)

    rows: dict[str, Table2Row] = {}
    stride = len(frequencies) + 1
    for i, code in enumerate(code_list):
        workload = workloads[code]
        chunk = measurements[i * stride : (i + 1) * stride]
        sweep = SweepResult(
            workload=workload.tag,
            raw=dict(zip(frequencies, chunk[:-1])),
            baseline_mhz=float(max(frequencies)),
        )
        auto = chunk[-1]
        baseline = sweep.raw[sweep.baseline_mhz]
        columns: dict[str, tuple[float, float]] = {
            "auto": auto.normalized_against(baseline)
        }
        for mhz, point in sweep.normalized.items():
            columns[f"{mhz:.0f}"] = point
        rows[code] = Table2Row(
            code=code, tag=workload.tag, columns=columns, sweep=sweep, auto=auto
        )
    return rows
