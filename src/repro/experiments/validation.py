"""Fidelity scoring against the paper's published numbers.

Quantifies how close a regenerated Table 2 sits to the published one —
per cell, per code and overall — so fidelity regressions show up as a
single number.  Used by EXPERIMENTS.md, the reproduction tests and the
``table2`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.experiments.calibration import PAPER_TABLE2
from repro.experiments.tables import Table2Row

__all__ = ["CellError", "FidelityReport", "score_table2"]


@dataclass(frozen=True)
class CellError:
    """Measured-vs-paper error of one Table 2 cell."""

    code: str
    column: str
    measured_delay: float
    paper_delay: float
    measured_energy: float | None
    paper_energy: float | None

    @property
    def delay_error(self) -> float:
        return abs(self.measured_delay - self.paper_delay)

    @property
    def energy_error(self) -> float | None:
        if self.measured_energy is None or self.paper_energy is None:
            return None
        return abs(self.measured_energy - self.paper_energy)


@dataclass
class FidelityReport:
    """Aggregate fidelity of a Table 2 regeneration."""

    cells: list[CellError] = field(default_factory=list)
    include_auto: bool = False

    @property
    def delay_errors(self) -> list[float]:
        return [c.delay_error for c in self.cells]

    @property
    def energy_errors(self) -> list[float]:
        return [c.energy_error for c in self.cells if c.energy_error is not None]

    @property
    def mean_delay_error(self) -> float:
        errs = self.delay_errors
        return sum(errs) / len(errs) if errs else 0.0

    @property
    def mean_energy_error(self) -> float:
        errs = self.energy_errors
        return sum(errs) / len(errs) if errs else 0.0

    @property
    def max_delay_error(self) -> float:
        return max(self.delay_errors, default=0.0)

    @property
    def max_energy_error(self) -> float:
        return max(self.energy_errors, default=0.0)

    def worst_cells(self, n: int = 5) -> list[CellError]:
        """Cells ranked by combined error, worst first."""
        def key(c: CellError) -> float:
            e = c.energy_error if c.energy_error is not None else 0.0
            return c.delay_error + e

        return sorted(self.cells, key=key, reverse=True)[:n]

    def render(self) -> str:
        lines = [
            "Fidelity vs paper Table 2"
            + (" (static + auto columns)" if self.include_auto else " (static columns)"),
            f"  cells compared     : {len(self.cells)}",
            f"  mean |delay error| : {self.mean_delay_error:.3f}"
            f"   (max {self.max_delay_error:.3f})",
            f"  mean |energy error|: {self.mean_energy_error:.3f}"
            f"   (max {self.max_energy_error:.3f})",
            "  worst cells:",
        ]
        for c in self.worst_cells(3):
            e = f"{c.energy_error:.3f}" if c.energy_error is not None else "  -  "
            lines.append(
                f"    {c.code}@{c.column}: dD={c.delay_error:.3f} dE={e}"
            )
        return "\n".join(lines)


def score_table2(
    rows: Mapping[str, Table2Row], include_auto: bool = False
) -> FidelityReport:
    """Score regenerated Table 2 rows against the published table.

    ``include_auto`` also scores the CPUSPEED column — an emergent
    behaviour rather than a calibration target, so it is reported
    separately by default.
    """
    report = FidelityReport(include_auto=include_auto)
    columns = ("600", "800", "1000", "1200")
    if include_auto:
        columns = ("auto",) + columns
    for code, row in rows.items():
        paper_row = PAPER_TABLE2.get(code.upper())
        if paper_row is None:
            continue
        for column in columns:
            paper_cell = paper_row.get(column)
            measured = row.columns.get(column)
            if paper_cell is None or measured is None:
                continue
            paper_d, paper_e = paper_cell
            measured_d, measured_e = measured
            report.cells.append(
                CellError(
                    code=code.upper(),
                    column=column,
                    measured_delay=measured_d,
                    paper_delay=paper_d,
                    measured_energy=measured_e if paper_e is not None else None,
                    paper_energy=paper_e,
                )
            )
    return report
