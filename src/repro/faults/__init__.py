"""repro.faults — seeded, deterministic fault injection.

The paper's strategies ran on real flaky hardware: ACPI batteries that
drop samples, SpeedStep transitions that fail, nodes that straggle.
This package reintroduces that flakiness *deterministically* so the
robustness of every scheduling strategy can be tested and regressed.

See ``docs/faults.md`` for the fault model and determinism contract.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultLog,
    NullInjector,
    SeededFaultInjector,
    resolve_injector,
)
from repro.faults.spec import FAULT_PRESETS, FaultSpec, parse_fault_spec

__all__ = [
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultLog",
    "FaultSpec",
    "NullInjector",
    "SeededFaultInjector",
    "parse_fault_spec",
    "resolve_injector",
]
