"""Seeded, deterministic fault injectors.

The simulation layers (CPU, node, communicator, ACPI coordinator) ask
an injector a question at every fault *opportunity* — "does this DVS
transition fail?", "how much jitter does this message see?" — and take
the perturbed path only when the answer is non-neutral.  Two
implementations:

* :class:`SeededFaultInjector` — draws every answer from per-entity
  ``numpy`` Generator streams keyed ``(spec.seed, stream id, entity)``,
  so (a) the same :class:`~repro.faults.spec.FaultSpec` always yields
  the same fault schedule, and (b) fault classes are *independent*:
  enabling message drops does not shift which DVS transitions fail.
* :class:`NullInjector` — answers "no fault" to everything; useful for
  tests that want injector plumbing exercised with zero perturbation.

Determinism contract (load-bearing — see ``docs/faults.md``): when a
rate is zero the corresponding hook returns its neutral answer
*without consuming randomness and without creating simulation events*,
so a zero-rate injector is bit-for-bit equivalent to no injector.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np

from repro.faults.spec import FaultSpec

__all__ = ["FaultLog", "FaultInjector", "SeededFaultInjector", "NullInjector"]

# Per-fault-class RNG stream ids (part of the seed tuple; never reuse).
# numpy seed sequences must be non-negative, so every (stream, entity)
# pair uses its own positive stream constant.
_STREAM_TRANSITION = 1
_STREAM_NODE = 2
_STREAM_MESSAGE = 3
_STREAM_COLLECTIVE = 4
_STREAM_SENSOR = 5
_STREAM_CRASH = 6

#: Ceiling on consecutive retransmissions of one transfer, so a run
#: under ``message_drop_rate=1.0`` still terminates.
MAX_RETRANSMITS = 4


@dataclass
class FaultLog:
    """Counters of every fault that actually fired during one run.

    Attached to ``Measurement.extras["faults"]`` (only when non-empty,
    to keep clean runs bit-identical to pre-fault-subsystem runs).
    """

    transitions_failed: int = 0
    nodes_slowed: int = 0
    nodes_crashed: int = 0
    messages_jittered: int = 0
    messages_dropped: int = 0
    collectives_jittered: int = 0
    sensor_dropouts: int = 0
    #: robustness responses that fired (retries in daemons/set_cpuspeed)
    dvs_retries: int = 0
    acpi_fallbacks: int = 0

    @property
    def total(self) -> int:
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def any(self) -> bool:
        return self.total > 0

    def as_dict(self) -> dict[str, int]:
        """Plain-int dict (JSON-safe, survives the measurement cache)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@runtime_checkable
class FaultInjector(Protocol):
    """The question set the simulation layers ask at fault opportunities.

    Implementations must be deterministic functions of their
    construction arguments and call sequence *per entity* — the
    simulator guarantees a fixed per-entity call order, not a fixed
    global interleaving.
    """

    log: FaultLog

    def transition_fails(self, node_id: int) -> bool:
        """Does this DVS mode transition fail (point unchanged)?"""
        ...

    def node_slowdown_factor(self, node_id: int) -> float:
        """Whole-run work-duration multiplier for this node (1.0 = none)."""
        ...

    def node_crash(self, node_id: int) -> Optional[tuple[float, float]]:
        """``(at_s, reboot_s)`` if this node freezes once, else None."""
        ...

    def message_jitter_s(self, src: int, dst: int, nbytes: float) -> float:
        """Extra latency for this point-to-point message (0.0 = none)."""
        ...

    def message_drops(self, src: int, dst: int, nbytes: float) -> int:
        """How many times this payload transfer is lost (0 = none)."""
        ...

    @property
    def retransmit_s(self) -> float:
        """Retransmission timeout charged per lost transfer."""
        ...

    def collective_jitter_s(self, kind: str, nprocs: int) -> float:
        """Extra wire time for this collective (0.0 = none)."""
        ...

    def sensor_dropout(self, node_id: int) -> bool:
        """Does this ACPI battery poll return nothing?"""
        ...

    def sensor_noise_mwh(self, node_id: int) -> float:
        """Additive error on this battery reading (0.0 = none)."""
        ...


class NullInjector:
    """An injector that never injects (all answers neutral)."""

    retransmit_s = 0.2

    def __init__(self) -> None:
        self.log = FaultLog()

    def transition_fails(self, node_id: int) -> bool:
        return False

    def node_slowdown_factor(self, node_id: int) -> float:
        return 1.0

    def node_crash(self, node_id: int) -> Optional[tuple[float, float]]:
        return None

    def message_jitter_s(self, src: int, dst: int, nbytes: float) -> float:
        return 0.0

    def message_drops(self, src: int, dst: int, nbytes: float) -> int:
        return 0

    def collective_jitter_s(self, kind: str, nprocs: int) -> float:
        return 0.0

    def sensor_dropout(self, node_id: int) -> bool:
        return False

    def sensor_noise_mwh(self, node_id: int) -> float:
        return 0.0


class SeededFaultInjector:
    """Deterministic injector drawing from per-entity RNG streams.

    Entities are node ids (transition/node/sensor streams) or source
    ranks (message/collective streams).  Each ``(stream, entity)`` pair
    owns its own ``numpy`` Generator seeded ``[spec.seed, stream,
    entity]``, so per-entity schedules are reproducible regardless of
    how the simulator interleaves entities, and fault classes never
    perturb each other's draws.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.log = FaultLog()
        self._rngs: dict[tuple[int, int], np.random.Generator] = {}

    def __repr__(self) -> str:
        return f"SeededFaultInjector({self.spec.describe()})"

    def _rng(self, stream: int, entity: int) -> np.random.Generator:
        key = (stream, entity)
        rng = self._rngs.get(key)
        if rng is None:
            rng = np.random.default_rng([self.spec.seed, stream, entity])
            self._rngs[key] = rng
        return rng

    # -- DVS transitions ----------------------------------------------
    def transition_fails(self, node_id: int) -> bool:
        rate = self.spec.transition_fail_rate
        if rate <= 0.0:
            return False
        if self._rng(_STREAM_TRANSITION, node_id).random() < rate:
            self.log.transitions_failed += 1
            return True
        return False

    # -- per-node degradation -----------------------------------------
    def node_slowdown_factor(self, node_id: int) -> float:
        rate = self.spec.node_slowdown_rate
        if rate <= 0.0 or self.spec.node_slowdown_factor == 1.0:
            return 1.0
        if self._rng(_STREAM_NODE, node_id).random() < rate:
            self.log.nodes_slowed += 1
            return self.spec.node_slowdown_factor
        return 1.0

    def node_crash(self, node_id: int) -> Optional[tuple[float, float]]:
        rate = self.spec.node_crash_rate
        if rate <= 0.0:
            return None
        # Dedicated stream so crash decisions do not shift the
        # slowdown draw order (both are per-node, one call each).
        rng = self._rng(_STREAM_CRASH, node_id)
        if rng.random() < rate:
            at_s = rng.random() * self.spec.node_crash_window_s
            return (at_s, self.spec.node_reboot_s)
        return None

    # -- messages ------------------------------------------------------
    def message_jitter_s(self, src: int, dst: int, nbytes: float) -> float:
        rate = self.spec.message_jitter_rate
        if rate <= 0.0 or self.spec.message_jitter_s <= 0.0:
            return 0.0
        rng = self._rng(_STREAM_MESSAGE, src)
        if rng.random() < rate:
            self.log.messages_jittered += 1
            return float(rng.exponential(self.spec.message_jitter_s))
        return 0.0

    def message_drops(self, src: int, dst: int, nbytes: float) -> int:
        rate = self.spec.message_drop_rate
        if rate <= 0.0:
            return 0
        rng = self._rng(_STREAM_MESSAGE, src)
        drops = 0
        while drops < MAX_RETRANSMITS and rng.random() < rate:
            drops += 1
        self.log.messages_dropped += drops
        return drops

    @property
    def retransmit_s(self) -> float:
        return self.spec.message_retransmit_s

    def collective_jitter_s(self, kind: str, nprocs: int) -> float:
        rate = self.spec.collective_jitter_rate
        if rate <= 0.0 or self.spec.message_jitter_s <= 0.0:
            return 0.0
        # Keyed by the call site's completing size so every rank in the
        # collective is charged identically via the one completing call.
        rng = self._rng(_STREAM_COLLECTIVE, 0)
        if rng.random() < rate:
            self.log.collectives_jittered += 1
            return float(rng.exponential(self.spec.message_jitter_s))
        return 0.0

    # -- sensors -------------------------------------------------------
    def sensor_dropout(self, node_id: int) -> bool:
        rate = self.spec.sensor_dropout_rate
        if rate <= 0.0:
            return False
        if self._rng(_STREAM_SENSOR, node_id).random() < rate:
            self.log.sensor_dropouts += 1
            return True
        return False

    def sensor_noise_mwh(self, node_id: int) -> float:
        sigma = self.spec.sensor_noise_mwh
        if sigma <= 0.0:
            return 0.0
        return float(self._rng(_STREAM_SENSOR, node_id).normal(0.0, sigma))


def resolve_injector(faults: Any) -> Optional[FaultInjector]:
    """Normalise a ``faults=`` argument into an injector (or None).

    Accepts None, a :class:`FaultSpec` (wrapped in a fresh
    :class:`SeededFaultInjector`) or a ready-made injector instance
    (returned as-is, so tests can inspect its log afterwards).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultSpec):
        return SeededFaultInjector(faults)
    if isinstance(faults, FaultInjector):
        return faults
    raise TypeError(
        f"faults must be a FaultSpec or FaultInjector, got {type(faults).__name__}"
    )
