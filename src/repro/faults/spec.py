"""Fault-injection configuration.

A :class:`FaultSpec` is the *complete*, value-typed description of a
fault environment: which fault classes are enabled, at what rates, and
the seed that makes every injected schedule reproducible.  It is a
frozen dataclass so it pickles into parallel workers unchanged and
canonicalises into measurement-cache keys (a faulty run can never
alias a clean run's cache slot).

Rates are probabilities per *opportunity* (per DVS transition, per
message, per battery poll, per node), not per unit time; magnitudes
(slowdown factor, jitter mean, sensor noise) are separate knobs so a
spec can express "rare but large" as well as "frequent but small"
perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["FaultSpec", "parse_fault_spec", "FAULT_PRESETS"]


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one fault environment.

    All rates default to zero: ``FaultSpec()`` is the *noop* spec, and
    a run under it is bit-for-bit identical to a run with no injector
    at all (enforced by ``tests/faults/test_determinism.py``).
    """

    #: Root seed of every fault schedule.  Independent from the run
    #: seed on purpose: the same fault schedule can be replayed against
    #: different measurement-jitter seeds and vice versa.
    seed: int = 0

    # -- DVS transitions (hardware/cpu.py) -----------------------------
    #: Probability that one SpeedStep mode transition fails: the stall
    #: is charged (the driver blocked either way) but the operating
    #: point does not change.
    transition_fail_rate: float = 0.0

    # -- per-node degradation (hardware/node.py) -----------------------
    #: Probability that a node is a straggler for the whole run.
    node_slowdown_rate: float = 0.0
    #: Duration multiplier (>= 1) applied to the straggler's on-chip
    #: work (thermal throttling / background daemon interference).
    node_slowdown_factor: float = 1.5
    #: Probability that a node freezes once during the run.
    node_crash_rate: float = 0.0
    #: The freeze happens uniformly within the first this-many seconds.
    node_crash_window_s: float = 60.0
    #: How long the frozen node stalls before resuming (reboot +
    #: checkpoint restart, treated as a pure delay).
    node_reboot_s: float = 10.0

    # -- messages (mpi/communicator.py, mpi/costmodel.py) --------------
    #: Probability that a point-to-point message sees extra latency.
    message_jitter_rate: float = 0.0
    #: Mean of the (exponential) extra latency, seconds.
    message_jitter_s: float = 1e-3
    #: Probability that one payload transfer is lost and retransmitted.
    message_drop_rate: float = 0.0
    #: Retransmission timeout per lost transfer (TCP RTO ballpark).
    message_retransmit_s: float = 0.2
    #: Probability that a collective sees OS-noise jitter (same
    #: exponential mean as message jitter).
    collective_jitter_rate: float = 0.0

    # -- sensors (powerpack/acpi.py, powerpack/collector.py) -----------
    #: Probability that one ACPI battery poll returns nothing.
    sensor_dropout_rate: float = 0.0
    #: Std-dev of extra gaussian noise on each battery reading, mWh.
    sensor_noise_mwh: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                rate = getattr(self, f.name)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"{f.name} must be in [0, 1], got {rate!r}")
        if self.node_slowdown_factor < 1.0:
            raise ValueError("node_slowdown_factor must be >= 1")
        if self.node_crash_window_s < 0 or self.node_reboot_s < 0:
            raise ValueError("crash window / reboot time must be non-negative")
        if self.message_jitter_s < 0 or self.sensor_noise_mwh < 0:
            raise ValueError("jitter mean / sensor noise must be non-negative")
        if self.message_retransmit_s <= 0:
            raise ValueError("retransmission timeout must be positive")

    @property
    def active(self) -> bool:
        """Whether any fault class can actually fire."""
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name.endswith("_rate")
        ) or self.sensor_noise_mwh > 0.0

    def is_noop(self) -> bool:
        """Whether this spec provably injects nothing.

        Every rate is zero and the sensor noise is zero: no draw is
        ever taken, so a run under it is bit-for-bit a clean run.
        Engine selection (``run_workload``/``map_sweep``) treats such
        a spec as ``faults=None`` — it does not pin the run to the
        event engine — while cache keys are unaffected either way.
        """
        return not self.active

    def with_(self, **changes) -> "FaultSpec":
        """Return a copy with fields replaced (convenience)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact non-default-fields summary for reports/CLI echoes."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value:g}" if isinstance(value, float)
                             else f"{f.name}={value}")
        return "faults(" + (", ".join(parts) if parts else "none") + ")"


#: Named fault environments for the CLI (``--faults mild`` etc.).
FAULT_PRESETS: dict[str, FaultSpec] = {
    "none": FaultSpec(),
    #: Occasional glitches a healthy production cluster still shows.
    "mild": FaultSpec(
        transition_fail_rate=0.02,
        message_jitter_rate=0.05,
        message_jitter_s=5e-4,
        sensor_dropout_rate=0.05,
    ),
    #: A visibly sick cluster: stragglers, lossy fabric, flaky sensors.
    "harsh": FaultSpec(
        transition_fail_rate=0.2,
        node_slowdown_rate=0.25,
        node_slowdown_factor=1.3,
        message_jitter_rate=0.2,
        message_jitter_s=2e-3,
        message_drop_rate=0.05,
        collective_jitter_rate=0.1,
        sensor_dropout_rate=0.3,
        sensor_noise_mwh=2.0,
    ),
}

#: CLI shorthand -> field name.
_ALIASES = {
    "fail": "transition_fail_rate",
    "slowdown": "node_slowdown_rate",
    "crash": "node_crash_rate",
    "jitter": "message_jitter_rate",
    "drop": "message_drop_rate",
    "dropout": "sensor_dropout_rate",
    "noise": "sensor_noise_mwh",
}


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a ``--faults`` argument into a :class:`FaultSpec`.

    Accepts a preset name (``mild``, ``harsh``), ``key=value`` pairs
    separated by commas, or a preset followed by overrides::

        --faults mild
        --faults "fail=0.1,seed=7"
        --faults "harsh,drop=0.0"

    Keys are full field names or the shorthands in ``_ALIASES``.
    """
    spec = FaultSpec()
    valid = {f.name for f in fields(FaultSpec)}
    for part in filter(None, (p.strip() for p in text.split(","))):
        if "=" not in part:
            try:
                spec = FAULT_PRESETS[part]
            except KeyError:
                raise ValueError(
                    f"unknown fault preset {part!r} "
                    f"(have {sorted(FAULT_PRESETS)})"
                ) from None
            continue
        key, _, value = part.partition("=")
        key = key.strip().replace("-", "_")
        key = _ALIASES.get(key, key)
        if key not in valid:
            raise ValueError(f"unknown fault field {key!r}")
        spec = spec.with_(**{key: int(value) if key == "seed" else float(value)})
    return spec
