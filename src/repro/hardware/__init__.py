"""Power-aware cluster hardware models.

Everything the paper's NEMO testbed provides, as simulation models:

* :mod:`repro.hardware.opoints` — DVS operating points (Table 1 of the
  paper is the built-in ``PENTIUM_M_TABLE``).
* :mod:`repro.hardware.power` — calibrated CMOS node power model with a
  per-component breakdown (CPU dynamic/leakage, DRAM, NIC, disk, board).
* :mod:`repro.hardware.cpu` — a DVS-capable CPU core: frequency-scaled
  work execution, mode-transition latency, /proc-style utilization
  accounting.
* :mod:`repro.hardware.battery` — ACPI smart-battery measurement channel
  (mWh quantization, slow refresh).
* :mod:`repro.hardware.node` — a node assembling CPU + memory + NIC +
  battery + rest-of-system.
* :mod:`repro.hardware.network` — switched network with link bandwidth,
  latency and a congestion model.
* :mod:`repro.hardware.cluster` — cluster factory; ``nemo_cluster()``
  builds the paper's 16-node testbed.
"""

from repro.hardware.opoints import (
    OperatingPoint,
    OperatingPointTable,
    PENTIUM_M_TABLE,
)
from repro.hardware.power import (
    NodePowerParameters,
    PowerBreakdown,
    NEMO_POWER,
    PENTIUM3_POWER,
)
from repro.hardware.cpu import CpuCore, CpuStats
from repro.hardware.battery import AcpiBattery
from repro.hardware.node import Node
from repro.hardware.network import Network, NetworkParameters
from repro.hardware.cluster import Cluster, nemo_cluster
from repro.hardware.thermal import (
    ThermalModel,
    ThermalParameters,
    arrhenius_life_factor,
    operating_cost_usd,
)

__all__ = [
    "AcpiBattery",
    "Cluster",
    "CpuCore",
    "CpuStats",
    "NEMO_POWER",
    "NetworkParameters",
    "Network",
    "Node",
    "NodePowerParameters",
    "OperatingPoint",
    "OperatingPointTable",
    "PENTIUM3_POWER",
    "PENTIUM_M_TABLE",
    "PowerBreakdown",
    "ThermalModel",
    "ThermalParameters",
    "arrhenius_life_factor",
    "nemo_cluster",
    "operating_cost_usd",
]
