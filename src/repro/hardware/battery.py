"""ACPI smart-battery measurement channel.

The paper measures energy by polling each laptop's ACPI smart battery:
remaining capacity is reported in mWh (1 mWh = 3.6 J) and refreshes only
every 15–20 seconds.  This module reproduces both limitations — the
coarse quantization and the slow refresh — on top of the simulator's
exact ground-truth energy integral, so the paper's methodology (runs of
minutes, iterating short codes, repeated measurements) is necessary here
for the same reason it was on NEMO.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Environment

__all__ = ["AcpiBattery", "MWH_TO_JOULES"]

#: 1 mWh = 3.6 joules (paper Section 4.2).
MWH_TO_JOULES = 3.6


class AcpiBattery:
    """Smart battery attached to one node.

    Parameters
    ----------
    env:
        Simulation environment.
    energy_fn:
        Callable returning the node's exact consumed energy in joules.
    capacity_mwh:
        Full-charge capacity (Dell Inspiron 8600 class: ~53 Wh).
    refresh_min_s / refresh_max_s:
        The battery controller updates its report at a random interval in
        this range (paper: every 15–20 s).
    rng:
        Seeded generator for refresh jitter (determinism).
    """

    def __init__(
        self,
        env: Environment,
        energy_fn: Callable[[], float],
        capacity_mwh: float = 53000.0,
        refresh_min_s: float = 15.0,
        refresh_max_s: float = 20.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if capacity_mwh <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < refresh_min_s <= refresh_max_s:
            raise ValueError("need 0 < refresh_min_s <= refresh_max_s")
        self.env = env
        self._energy_fn = energy_fn
        self.capacity_mwh = capacity_mwh
        self.refresh_min_s = refresh_min_s
        self.refresh_max_s = refresh_max_s
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._reported_mwh = capacity_mwh
        self._last_refresh = env.now
        self._refresh_now()
        env.process(self._refresh_loop(), name="acpi-battery")

    # ------------------------------------------------------------------
    def _true_remaining_mwh(self) -> float:
        consumed_mwh = self._energy_fn() / MWH_TO_JOULES
        return self.capacity_mwh - consumed_mwh

    def _refresh_now(self) -> None:
        # The controller reports whole mWh (floor: charge already drained).
        self._reported_mwh = float(np.floor(self._true_remaining_mwh()))
        self._last_refresh = self.env.now

    def _refresh_loop(self):
        while True:
            interval = float(
                self._rng.uniform(self.refresh_min_s, self.refresh_max_s)
            )
            yield self.env.timeout(interval)
            self._refresh_now()

    # ------------------------------------------------------------------
    def read_remaining_mwh(self) -> float:
        """Remaining capacity as ACPI reports it (stale + quantized)."""
        return self._reported_mwh

    @property
    def last_refresh_time(self) -> float:
        return self._last_refresh

    def is_depleted(self) -> bool:
        return self._true_remaining_mwh() <= 0.0
