"""Cluster assembly: nodes + fabric.

:func:`nemo_cluster` builds the paper's testbed — 16 Pentium M laptops
on 100 Mb Ethernet — with deterministic per-node RNG streams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from repro.sim.engine import Environment
from repro.hardware.network import Network, NetworkParameters
from repro.hardware.node import Node
from repro.hardware.opoints import PENTIUM_M_TABLE, OperatingPointTable
from repro.hardware.power import NEMO_POWER, NodePowerParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["Cluster", "nemo_cluster"]


class Cluster:
    """A power-aware cluster: indexed nodes plus the shared network."""

    def __init__(
        self,
        env: Environment,
        nodes: Sequence[Node],
        network: Network,
    ) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self.env = env
        self.nodes = list(nodes)
        self.network = network

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, i: int) -> Node:
        return self.nodes[i]

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    @property
    def opoints(self) -> OperatingPointTable:
        return self.nodes[0].cpu.opoints

    # ------------------------------------------------------------------
    def set_all_speeds_mhz(self, mhz: float) -> None:
        """EXTERNAL-style cluster-wide static frequency setting."""
        for node in self.nodes:
            node.cpu.set_speed_mhz(mhz)

    def set_speeds_mhz(self, per_node_mhz: Sequence[float]) -> None:
        """Heterogeneous static setting (one frequency per node)."""
        if len(per_node_mhz) != len(self.nodes):
            raise ValueError(
                f"expected {len(self.nodes)} frequencies, got {len(per_node_mhz)}"
            )
        for node, mhz in zip(self.nodes, per_node_mhz):
            node.cpu.set_speed_mhz(mhz)

    def total_energy_j(self) -> float:
        """Exact cluster-wide energy consumed so far."""
        return sum(node.energy_j() for node in self.nodes)

    def total_power_w(self) -> float:
        return sum(node.power_w() for node in self.nodes)


def nemo_cluster(
    env: Environment,
    n_nodes: int = 16,
    power: NodePowerParameters = NEMO_POWER,
    opoints: OperatingPointTable = PENTIUM_M_TABLE,
    network_params: Optional[NetworkParameters] = None,
    transition_latency_s: float = 20e-6,
    with_batteries: bool = True,
    seed: int = 0,
    injector: Optional["FaultInjector"] = None,
) -> Cluster:
    """Build a NEMO-like cluster (paper Section 4.1).

    Parameters mirror the testbed: 16 Pentium M 1.4 GHz nodes with the
    Table 1 operating points, ~20 µs SpeedStep transitions, 100 Mb
    switched Ethernet, ACPI batteries.  ``seed`` fixes all measurement
    jitter for reproducibility.  ``injector`` (see :mod:`repro.faults`)
    makes nodes flaky — failed transitions, stragglers, crashes.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    root = np.random.default_rng(seed)
    nodes = []
    for i in range(n_nodes):
        nodes.append(
            Node(
                env,
                node_id=i,
                opoints=opoints,
                power=power,
                transition_latency_s=transition_latency_s,
                rng=np.random.default_rng(root.integers(0, 2**63)),
                with_battery=with_batteries,
                injector=injector,
            )
        )
    network = Network(env, n_nodes, network_params or NetworkParameters())
    return Cluster(env, nodes, network)
