"""A DVS-capable CPU core.

The core executes *segments* serially:

* **work** segments carry on-chip cycles plus an off-chip (memory-stall)
  time share; the on-chip part scales with the clock, the off-chip part
  does not.  This is the decomposition behind the paper's energy-delay
  crescendos.
* **occupy** segments model fixed-wall-time occupancy — message progress
  inside MPI operations whose duration is set by the network, not the
  clock — at a reduced dynamic-activity level.

Changing the operating point mid-segment is fully supported: the core
accounts for the fraction of the segment already executed, charges the
manufacturer transition latency (paper: 10–30 µs on SpeedStep /
PowerNow!) and reschedules the completion at the new speed.

The core also keeps /proc-style utilization accounting (busy-weighted
seconds) — exactly what the CPUSPEED daemon samples — and a
time-at-frequency histogram used by tests and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Environment
from repro.sim.events import Event, Timeout
from repro.hardware.opoints import OperatingPoint, OperatingPointTable
from repro.hardware.power import NodePowerParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["CpuCore", "CpuStats"]


@dataclass
class CpuStats:
    """Cumulative counters maintained by :class:`CpuCore`."""

    transitions: int = 0
    #: transitions that stalled the pipeline but left the operating
    #: point unchanged (injected SpeedStep failures) — NOT counted in
    #: :attr:`transitions`, which means successful mode changes only.
    failed_transitions: int = 0
    transition_seconds: float = 0.0
    busy_seconds: float = 0.0
    segments_completed: int = 0
    #: on-chip cycles actually executed (a simulated performance
    #: counter — what beta-adaptive DVS daemons read on real parts).
    cycles_retired: float = 0.0
    #: seconds spent at each frequency (MHz -> seconds)
    time_at_mhz: dict[float, float] = field(default_factory=dict)


class _Segment:
    __slots__ = (
        "kind",
        "cycles_left",
        "offchip_left",
        "wall_left",
        "activity",
        "busy",
        "mem_activity",
        "nic_activity",
        "done",
        "timeout",
        "scheduled_at",
        "planned",
    )

    def __init__(
        self,
        kind: str,
        cycles: float,
        offchip: float,
        wall: float,
        activity: float,
        busy: float,
        mem_activity: float,
        nic_activity: float,
        done: Event,
    ) -> None:
        self.kind = kind
        self.cycles_left = cycles
        self.offchip_left = offchip
        self.wall_left = wall
        self.activity = activity
        self.busy = busy
        self.mem_activity = mem_activity
        self.nic_activity = nic_activity
        self.done = done
        self.timeout: Optional[Timeout] = None
        self.scheduled_at = 0.0
        self.planned = 0.0


class CpuCore:
    """One DVS-capable core (one node runs one MPI rank in NEMO).

    Parameters
    ----------
    env:
        Simulation environment.
    opoints:
        The DVS operating-point table (slow → fast).
    power:
        Node power parameters (used for the CPU component).
    transition_latency_s:
        Stall charged to in-flight work per DVS mode transition.
    start_index:
        Initial operating-point index (defaults to fastest).
    node_id / injector:
        Identity and fault source for this core.  When an injector is
        given, DVS transitions may fail (:meth:`set_speed_index`
        returns False) and the core may carry a whole-run work
        slowdown; with no injector both paths are byte-identical to
        the fault-free model.
    """

    def __init__(
        self,
        env: Environment,
        opoints: OperatingPointTable,
        power: NodePowerParameters,
        transition_latency_s: float = 20e-6,
        start_index: Optional[int] = None,
        name: str = "cpu",
        node_id: int = 0,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        if transition_latency_s < 0:
            raise ValueError("transition latency must be non-negative")
        self.env = env
        self.opoints = opoints
        self.power = power
        self.transition_latency_s = transition_latency_s
        self.name = name
        self.node_id = node_id
        self.injector = injector
        #: whole-run multiplier on work-segment durations (straggler
        #: node model); exactly 1.0 keeps the clean fast path.
        self.slowdown = (
            injector.node_slowdown_factor(node_id) if injector is not None else 1.0
        )
        self._index = opoints.max_index if start_index is None else start_index
        if not 0 <= self._index <= opoints.max_index:
            raise ValueError(f"start_index {start_index} out of range")
        self.stats = CpuStats()
        self._active: Optional[_Segment] = None
        self._pending: list[_Segment] = []
        self._stall_until = 0.0
        self._last_touch = env.now
        # Wait-state stack: (activity, busy, mem_activity, nic_activity)
        # describing what the core does while blocked in a library call
        # (message progress, select()-idle, ...).  Top of stack wins when
        # no segment is executing.
        self._wait_stack: list[tuple[float, float, float, float]] = []
        #: Called after any power-relevant state change (node subscribes).
        self.on_change: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def index(self) -> int:
        """Current operating point index (0 = slowest)."""
        return self._index

    @property
    def opoint(self) -> OperatingPoint:
        return self.opoints[self._index]

    @property
    def frequency_hz(self) -> float:
        return self.opoint.frequency_hz

    @property
    def frequency_mhz(self) -> float:
        return self.opoint.frequency_mhz

    @property
    def is_busy(self) -> bool:
        return self._active is not None

    @property
    def busy_level(self) -> float:
        """Current /proc-style busy fraction contribution (0..1)."""
        if self._active is not None:
            return self._active.busy
        if self._wait_stack:
            return self._wait_stack[-1][1]
        return 0.0

    @property
    def dyn_activity(self) -> float:
        """Current dynamic-power activity factor (idle floor when idle)."""
        if self._active is not None:
            return self._active.activity
        if self._wait_stack:
            return max(self._wait_stack[-1][0], self.power.cpu_idle_activity)
        return self.power.cpu_idle_activity

    @property
    def mem_activity(self) -> float:
        if self._active is not None:
            return self._active.mem_activity
        if self._wait_stack:
            return self._wait_stack[-1][2]
        return 0.0

    @property
    def nic_activity(self) -> float:
        if self._active is not None:
            return self._active.nic_activity
        if self._wait_stack:
            return self._wait_stack[-1][3]
        return 0.0

    # ------------------------------------------------------------------
    # wait states (blocking-library behaviour)
    # ------------------------------------------------------------------
    def push_wait_state(
        self,
        activity: float,
        busy: float,
        mem_activity: float = 0.0,
        nic_activity: float = 0.0,
    ) -> object:
        """Describe what the core does while its process blocks.

        Used by the MPI layer: message progress inside a collective keeps
        the core moderately active (busy-polling + kernel copies), while
        a ``select()``-blocked receive leaves it nearly idle.  Returns a
        token to pass to :meth:`pop_wait_state`.
        """
        self._touch()
        token = (float(activity), float(busy), float(mem_activity), float(nic_activity))
        self._wait_stack.append(token)
        self._notify()
        return token

    def pop_wait_state(self, token: object) -> None:
        """Remove a wait state pushed earlier (must still be on the stack)."""
        self._touch()
        # Remove the topmost matching entry (tokens are value tuples).
        for i in range(len(self._wait_stack) - 1, -1, -1):
            if self._wait_stack[i] == token:
                del self._wait_stack[i]
                break
        else:
            raise ValueError("wait-state token not found")
        self._notify()

    @property
    def cpu_power_w(self) -> float:
        return self.power.cpu_power_w(self.opoint, self.dyn_activity)

    def busy_seconds(self) -> float:
        """Cumulative busy-weighted seconds (what /proc/stat exposes)."""
        self._touch()
        return self.stats.busy_seconds

    def cycles_retired_now(self) -> float:
        """Live retired-cycle counter, including the in-flight segment.

        ``stats.cycles_retired`` only advances at segment boundaries;
        a performance counter ticks continuously, so add the executed
        share of the active work segment.
        """
        total = self.stats.cycles_retired
        seg = self._active
        if (
            seg is not None
            and seg.timeout is not None
            and seg.kind == "work"
            and seg.planned > 0
        ):
            elapsed = self.env.now - seg.scheduled_at
            frac = min(1.0, max(0.0, elapsed / seg.planned))
            total += seg.cycles_left * frac
        return total

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        now = self.env.now
        dt = now - self._last_touch
        if dt > 0:
            self.stats.busy_seconds += self.busy_level * dt
            mhz = self.opoint.frequency_mhz
            hist = self.stats.time_at_mhz
            hist[mhz] = hist.get(mhz, 0.0) + dt
            self._last_touch = now

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # ------------------------------------------------------------------
    # DVS control
    # ------------------------------------------------------------------
    def set_speed_index(self, index: int) -> bool:
        """Switch to operating point ``index`` (CPUFreq-style actuation).

        A no-op when already at that point; otherwise in-flight work is
        stalled for the transition latency and rescheduled at the new
        speed.  Returns whether the core is now at ``index``: an
        injected SpeedStep failure charges the stall (the driver
        blocked either way) but leaves the operating point unchanged
        and returns False, so callers can retry.
        """
        if not 0 <= index <= self.opoints.max_index:
            raise ValueError(
                f"operating point index {index} out of range 0..{self.opoints.max_index}"
            )
        if index == self._index:
            return True
        if self.injector is not None and self.injector.transition_fails(self.node_id):
            self.stats.failed_transitions += 1
            self.stats.transition_seconds += self.transition_latency_s
            self.stall(self.transition_latency_s)
            return False
        self._touch()
        self._progress_active()
        self._index = index
        self.stats.transitions += 1
        self.stats.transition_seconds += self.transition_latency_s
        # Stalls serialize: a transition issued while an earlier stall
        # is still pending queues behind it.
        self._stall_until = (
            max(self._stall_until, self.env.now) + self.transition_latency_s
        )
        self._reschedule_active()
        self._notify()
        return True

    def set_speed_mhz(self, mhz: float) -> bool:
        """Switch to the operating point at exactly ``mhz`` MHz."""
        return self.set_speed_index(self.opoints.index_of(self.opoints.by_mhz(mhz)))

    def stall(self, seconds: float) -> None:
        """Stall in-flight and upcoming work for ``seconds``.

        Models software actuation cost (e.g. the CPUFreq sysfs write of
        an application-level ``set_cpuspeed`` call), which is charged
        whether or not the operating point actually changes.
        """
        if seconds < 0:
            raise ValueError("stall must be non-negative")
        if seconds == 0.0:
            return
        self._touch()
        self._progress_active()
        self._stall_until = max(self._stall_until, self.env.now) + seconds
        self._reschedule_active()

    def step_down(self) -> bool:
        return self.set_speed_index(max(self._index - 1, 0))

    def step_up(self) -> bool:
        return self.set_speed_index(min(self._index + 1, self.opoints.max_index))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_work(
        self,
        cycles: float,
        offchip_seconds: float = 0.0,
        activity: float = 1.0,
        busy: float = 1.0,
        mem_activity: float = 0.0,
        nic_activity: float = 0.0,
    ) -> Event:
        """Execute a compute segment; returns its completion event.

        ``cycles`` scale with the clock; ``offchip_seconds`` do not.
        """
        if cycles < 0 or offchip_seconds < 0:
            raise ValueError("work amounts must be non-negative")
        seg = _Segment(
            "work",
            cycles,
            offchip_seconds,
            0.0,
            activity,
            busy,
            mem_activity,
            nic_activity,
            Event(self.env),
        )
        self._enqueue(seg)
        return seg.done

    def occupy(
        self,
        duration_seconds: float,
        activity: float = 0.55,
        busy: float = 0.6,
        mem_activity: float = 0.0,
        nic_activity: float = 1.0,
    ) -> Event:
        """Occupy the core for a fixed wall-clock duration.

        Used for message progress whose duration is decided by the
        network model: changing the clock does not change the duration,
        only the power drawn while it happens.
        """
        if duration_seconds < 0:
            raise ValueError("duration must be non-negative")
        seg = _Segment(
            "occupy",
            0.0,
            0.0,
            duration_seconds,
            activity,
            busy,
            mem_activity,
            nic_activity,
            Event(self.env),
        )
        self._enqueue(seg)
        return seg.done

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _enqueue(self, seg: _Segment) -> None:
        if self._active is None:
            self._start(seg)
        else:
            self._pending.append(seg)

    def _start(self, seg: _Segment) -> None:
        self._touch()
        self._active = seg
        self._reschedule_active()
        self._notify()

    def _duration(self, seg: _Segment) -> float:
        if seg.kind == "occupy":
            return seg.wall_left
        stall = max(0.0, self._stall_until - self.env.now)
        if self.slowdown != 1.0:
            # Straggler node: work (not stall) stretched uniformly.
            work = seg.cycles_left / self.frequency_hz + seg.offchip_left
            return stall + work * self.slowdown
        return stall + seg.cycles_left / self.frequency_hz + seg.offchip_left

    def _reschedule_active(self) -> None:
        seg = self._active
        if seg is None:
            return
        seg.scheduled_at = self.env.now
        seg.planned = self._duration(seg)
        timeout = Timeout(self.env, seg.planned)
        seg.timeout = timeout
        timeout._add_callback(self._make_completer(seg, timeout))

    def _make_completer(self, seg: _Segment, timeout: Timeout):
        def complete(_event: Event) -> None:
            if seg.timeout is not timeout:  # pragma: no cover - defensive
                return
            self._touch()
            self.stats.cycles_retired += seg.cycles_left
            seg.cycles_left = 0.0
            self._active = None
            seg.timeout = None
            self.stats.segments_completed += 1
            seg.done.succeed()
            if self._pending:
                self._start(self._pending.pop(0))
            else:
                self._notify()

        return complete

    def _progress_active(self) -> None:
        """Account partial progress of the active segment and unschedule it."""
        seg = self._active
        if seg is None or seg.timeout is None:
            return
        elapsed = self.env.now - seg.scheduled_at
        if seg.planned > 0:
            frac = min(1.0, max(0.0, elapsed / seg.planned))
        else:
            frac = 1.0
        if seg.kind == "work":
            # The stall portion (if any) did not advance the work itself;
            # approximate by shrinking both components proportionally to
            # the *work* share of the elapsed time.
            self.stats.cycles_retired += seg.cycles_left * frac
            seg.cycles_left *= 1.0 - frac
            seg.offchip_left *= 1.0 - frac
        else:
            seg.wall_left = max(0.0, seg.wall_left - elapsed)
        seg.timeout.cancel()
        seg.timeout = None
