"""Switched cluster network model.

NEMO's interconnect is 100 Mb Fast Ethernet through a single Cisco 2950
switch.  We model:

* per-node full-duplex links: one transmit and one receive channel per
  node, serialized at link bandwidth (the switch backplane itself is
  non-blocking, as the 2950's is at this scale);
* per-message wire latency;
* deadlock-free two-phase channel acquisition (tx before rx).

Point-to-point transfers go through :meth:`Network.transfer`.  Collective
operations are costed analytically in :mod:`repro.mpi.costmodel` (they
would otherwise dominate simulation run time) but use the same
parameters, so p2p-heavy and collective-heavy codes see a consistent
fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Environment
from repro.sim.process import Process
from repro.sim.resources import Resource

__all__ = ["NetworkParameters", "Network"]


@dataclass(frozen=True)
class NetworkParameters:
    """Fabric constants.

    Attributes
    ----------
    bandwidth_Bps:
        Link bandwidth in bytes/second (100 Mb/s ~ 11.9 MB/s effective
        after TCP/IP + MPICH ch_p4 framing).
    latency_s:
        Per-message one-way latency (switch + stack).
    """

    bandwidth_Bps: float = 11.2e6
    latency_s: float = 75e-6

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def serialization_s(self, nbytes: float) -> float:
        """Time to push ``nbytes`` through one link."""
        return nbytes / self.bandwidth_Bps

    def p2p_time_s(self, nbytes: float) -> float:
        """Uncontended end-to-end transfer time for one message."""
        return self.latency_s + self.serialization_s(nbytes)


class Network:
    """The cluster fabric: per-node duplex channels plus a flow counter."""

    def __init__(self, env: Environment, n_nodes: int, params: NetworkParameters) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.env = env
        self.params = params
        self.n_nodes = n_nodes
        self._tx = [Resource(env, capacity=1) for _ in range(n_nodes)]
        self._rx = [Resource(env, capacity=1) for _ in range(n_nodes)]
        self._active_flows = 0
        self.stats_bytes = 0.0
        self.stats_messages = 0
        self.stats_peak_flows = 0

    @property
    def active_flows(self) -> int:
        return self._active_flows

    def transfer(self, src: int, dst: int, nbytes: float) -> Process:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the transfer process (an event succeeding at delivery).
        Same-node transfers complete after a fast memcpy-speed copy.
        """
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ValueError(f"transfer endpoints out of range: {src}->{dst}")
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return self.env.process(self._transfer(src, dst, nbytes), name=f"xfer{src}->{dst}")

    def _transfer(self, src: int, dst: int, nbytes: float):
        self.stats_messages += 1
        self.stats_bytes += nbytes
        if src == dst:
            # Loopback: memory-speed copy, no NIC involvement.
            yield self.env.timeout(nbytes / (400e6))
            return
        # Acquire tx before rx everywhere: resource ordering prevents
        # hold-and-wait cycles between opposing transfers.
        tx_req = self._tx[src].request()
        yield tx_req
        rx_req = self._rx[dst].request()
        yield rx_req
        self._active_flows += 1
        self.stats_peak_flows = max(self.stats_peak_flows, self._active_flows)
        try:
            yield self.env.timeout(self.params.serialization_s(nbytes))
        finally:
            self._active_flows -= 1
            tx_req.release()
            rx_req.release()
        yield self.env.timeout(self.params.latency_s)
