"""A power-aware cluster node and its exact energy meter."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.sim.engine import Environment
from repro.hardware.battery import AcpiBattery
from repro.hardware.cpu import CpuCore
from repro.hardware.opoints import OperatingPointTable
from repro.hardware.power import NodePowerParameters, PowerBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["EnergyMeter", "Node"]


class EnergyMeter:
    """Exact piecewise-constant power integrator.

    Between simulator events node power is constant, so integrating at
    every state-change notification is exact.  This is the ground truth
    the ACPI and Baytech measurement channels subsample.
    """

    def __init__(self, env: Environment, power_fn: Callable[[], float]) -> None:
        self.env = env
        self._power_fn = power_fn
        self._last_time = env.now
        self._last_power = power_fn()
        self._energy_j = 0.0

    def update(self) -> None:
        """Integrate the interval since the last change; refresh power.

        Must be called *after* every power-relevant state change (the
        cached pre-change power is applied over the elapsed interval).
        """
        now = self.env.now
        dt = now - self._last_time
        if dt > 0:
            self._energy_j += self._last_power * dt
            self._last_time = now
        self._last_power = self._power_fn()

    def energy_j(self) -> float:
        """Exact consumed energy up to the current simulation time."""
        return self._energy_j + self._last_power * (self.env.now - self._last_time)

    @property
    def power_w(self) -> float:
        return self._last_power


class Node:
    """One node: DVS CPU + memory + NIC + disk + board + battery.

    The node wires CPU state changes into its energy meter and exposes
    the measurement channels the paper uses (exact meter, ACPI battery;
    the Baytech outlet channel lives in :mod:`repro.powerpack.baytech`
    and wraps the same meter).
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        opoints: OperatingPointTable,
        power: NodePowerParameters,
        transition_latency_s: float = 20e-6,
        battery_capacity_mwh: float = 53000.0,
        rng: Optional[np.random.Generator] = None,
        with_battery: bool = True,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.power_params = power
        self.cpu = CpuCore(
            env,
            opoints,
            power,
            transition_latency_s=transition_latency_s,
            name=f"cpu{node_id}",
            node_id=node_id,
            injector=injector,
        )
        if injector is not None:
            crash = injector.node_crash(node_id)
            if crash is not None:
                env.process(
                    self._crash_proc(injector, *crash), name=f"crash@{node_id}"
                )
        self.meter = EnergyMeter(env, self.power_w)
        self.cpu.on_change = self._on_state_change
        self._listeners: list[Callable[[], None]] = []
        self.battery: Optional[AcpiBattery] = None
        if with_battery:
            self.battery = AcpiBattery(
                env,
                self.meter.energy_j,
                capacity_mwh=battery_capacity_mwh,
                rng=rng,
            )

    # ------------------------------------------------------------------
    def _crash_proc(self, injector: "FaultInjector", at_s: float, reboot_s: float):
        """One-shot node freeze: everything on the CPU stalls for the
        reboot window, then resumes (the MPI job sees a straggler, not
        a lost rank — peers block in matching until it returns)."""
        yield self.env.timeout(at_s)
        injector.log.nodes_crashed += 1
        self.cpu.stall(reboot_s)

    # ------------------------------------------------------------------
    def power_w(self) -> float:
        """Instantaneous node power for the current activity state."""
        cpu = self.cpu
        return self.power_params.node_power_w(
            cpu.opoint, cpu.dyn_activity, cpu.mem_activity, cpu.nic_activity
        )

    def breakdown(self) -> PowerBreakdown:
        cpu = self.cpu
        return self.power_params.breakdown(
            cpu.opoint, cpu.dyn_activity, cpu.mem_activity, cpu.nic_activity
        )

    def energy_j(self) -> float:
        """Exact energy consumed so far (ground truth)."""
        return self.meter.energy_j()

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a callback run after every power-relevant change."""
        self._listeners.append(callback)

    def _on_state_change(self) -> None:
        self.meter.update()
        for listener in self._listeners:
            listener()

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id} @{self.cpu.frequency_mhz:.0f}MHz "
            f"{self.power_w():.1f}W>"
        )
