"""DVS operating points.

The paper's Table 1 lists the five Enhanced SpeedStep operating points
of the Pentium M 1.4 GHz used in NEMO; :data:`PENTIUM_M_TABLE` encodes
it.  An :class:`OperatingPointTable` is an immutable, sorted collection
indexed the way the CPUSPEED pseudocode indexes speeds: index ``0`` is
the slowest point, index ``m`` (``len - 1``) the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["OperatingPoint", "OperatingPointTable", "PENTIUM_M_TABLE"]


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """One DVS voltage/frequency pair.

    Attributes
    ----------
    frequency_hz:
        Core clock frequency in Hz.
    voltage_v:
        Supply voltage in volts.
    """

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage_v}")

    @property
    def frequency_mhz(self) -> float:
        return self.frequency_hz / 1e6

    @property
    def v2f(self) -> float:
        """``V^2 * f`` — the CMOS dynamic-power scaling factor (eq. 1)."""
        return self.voltage_v**2 * self.frequency_hz

    def __str__(self) -> str:
        return f"{self.frequency_mhz:.0f}MHz@{self.voltage_v:.3f}V"


class OperatingPointTable(Sequence[OperatingPoint]):
    """Sorted (slow → fast) table of operating points.

    Supports lookup by index, by frequency in MHz, and nearest-match
    lookup for schedulers that request arbitrary frequencies.
    """

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        if not points:
            raise ValueError("an operating point table needs at least one point")
        ordered = sorted(points, key=lambda p: p.frequency_hz)
        freqs = [p.frequency_hz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in operating point table")
        volts = [p.voltage_v for p in ordered]
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise ValueError("voltage must be non-decreasing with frequency")
        self._points = tuple(ordered)

    # -- Sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, index) -> OperatingPoint:
        return self._points[index]

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperatingPointTable):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self._points)
        return f"OperatingPointTable([{inner}])"

    # -- lookups -----------------------------------------------------------
    @property
    def slowest(self) -> OperatingPoint:
        return self._points[0]

    @property
    def fastest(self) -> OperatingPoint:
        return self._points[-1]

    @property
    def max_index(self) -> int:
        """``m`` in the CPUSPEED pseudocode: index of the fastest point."""
        return len(self._points) - 1

    def index_of(self, point: OperatingPoint) -> int:
        return self._points.index(point)

    def frequencies_mhz(self) -> tuple[float, ...]:
        return tuple(p.frequency_mhz for p in self._points)

    def by_mhz(self, mhz: float) -> OperatingPoint:
        """Exact lookup by frequency in MHz."""
        for p in self._points:
            if abs(p.frequency_mhz - mhz) < 1e-9:
                return p
        raise KeyError(f"no operating point at {mhz} MHz in {self!r}")

    def nearest(self, mhz: float) -> OperatingPoint:
        """The operating point whose frequency is closest to ``mhz``."""
        return min(self._points, key=lambda p: abs(p.frequency_mhz - mhz))


#: Table 1 of the paper: Pentium M 1.4 GHz Enhanced SpeedStep points.
PENTIUM_M_TABLE = OperatingPointTable(
    [
        OperatingPoint(1.4e9, 1.484),
        OperatingPoint(1.2e9, 1.436),
        OperatingPoint(1.0e9, 1.308),
        OperatingPoint(0.8e9, 1.180),
        OperatingPoint(0.6e9, 0.956),
    ]
)
