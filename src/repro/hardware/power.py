"""Node power models.

The model follows the paper's equation (1): dynamic CPU power scales as
``A * C * V^2 * f``.  On top of that we keep a voltage-dependent leakage
term and frequency-insensitive "rest of system" components (board, DRAM,
NIC, disk), each with idle + activity-proportional parts.

Two calibrated presets ship with the package:

* :data:`NEMO_POWER` — the Pentium M laptop node of the paper's NEMO
  cluster, calibrated so a fully CPU-bound code (EP) sees a node power
  ratio of ~0.49 at 600 MHz vs 1400 MHz, matching Table 2's EP row
  (energy 1.15 at delay 2.35).
* :data:`PENTIUM3_POWER` — the Pentium III server node of the paper's
  Figure 1, where the CPU draws ~35 % of system power under load and
  ~15 % when idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.hardware.opoints import (
    PENTIUM_M_TABLE,
    OperatingPoint,
    OperatingPointTable,
)

__all__ = [
    "PowerBreakdown",
    "NodePowerParameters",
    "NEMO_POWER",
    "PENTIUM3_POWER",
]


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous node power split by component, in watts."""

    cpu_w: float
    memory_w: float
    nic_w: float
    disk_w: float
    board_w: float

    @property
    def total_w(self) -> float:
        return self.cpu_w + self.memory_w + self.nic_w + self.disk_w + self.board_w

    def fractions(self) -> Mapping[str, float]:
        """Each component's share of total node power."""
        total = self.total_w
        return {
            "cpu": self.cpu_w / total,
            "memory": self.memory_w / total,
            "nic": self.nic_w / total,
            "disk": self.disk_w / total,
            "board": self.board_w / total,
        }

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            self.cpu_w + other.cpu_w,
            self.memory_w + other.memory_w,
            self.nic_w + other.nic_w,
            self.disk_w + other.disk_w,
            self.board_w + other.board_w,
        )


@dataclass(frozen=True)
class NodePowerParameters:
    """Calibrated constants of the node power model.

    CPU power at operating point ``op`` with dynamic activity ``a``::

        P_cpu = leak_max * (V / V_ref)^2  +  a * dyn_max * (V^2 f) / (V_ref^2 f_ref)

    Memory and NIC have idle power plus an activity-proportional extra;
    board and disk are constant.
    """

    cpu_dynamic_max_w: float
    cpu_leakage_max_w: float
    board_w: float
    memory_idle_w: float
    memory_active_w: float
    nic_idle_w: float
    nic_active_w: float
    disk_w: float
    reference_point: OperatingPoint
    #: Dynamic-activity floor when the CPU has nothing to run (halt loop).
    cpu_idle_activity: float = 0.15

    def __post_init__(self) -> None:
        for name in (
            "cpu_dynamic_max_w",
            "cpu_leakage_max_w",
            "board_w",
            "memory_idle_w",
            "memory_active_w",
            "nic_idle_w",
            "nic_active_w",
            "disk_w",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.cpu_idle_activity <= 1.0:
            raise ValueError("cpu_idle_activity must lie in [0, 1]")

    # ------------------------------------------------------------------
    def cpu_power_w(self, op: OperatingPoint, activity: float) -> float:
        """CPU power at ``op`` with dynamic activity factor ``activity``."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must lie in [0, 1], got {activity}")
        ref = self.reference_point
        leak = self.cpu_leakage_max_w * (op.voltage_v / ref.voltage_v) ** 2
        dyn = self.cpu_dynamic_max_w * activity * (op.v2f / ref.v2f)
        return leak + dyn

    def memory_power_w(self, activity: float) -> float:
        return self.memory_idle_w + self.memory_active_w * activity

    def nic_power_w(self, activity: float) -> float:
        return self.nic_idle_w + self.nic_active_w * activity

    def breakdown(
        self,
        op: OperatingPoint,
        cpu_activity: float,
        mem_activity: float = 0.0,
        nic_activity: float = 0.0,
    ) -> PowerBreakdown:
        """Instantaneous component breakdown for the given activity state."""
        return PowerBreakdown(
            cpu_w=self.cpu_power_w(op, cpu_activity),
            memory_w=self.memory_power_w(mem_activity),
            nic_w=self.nic_power_w(nic_activity),
            disk_w=self.disk_w,
            board_w=self.board_w,
        )

    def node_power_w(
        self,
        op: OperatingPoint,
        cpu_activity: float,
        mem_activity: float = 0.0,
        nic_activity: float = 0.0,
    ) -> float:
        return self.breakdown(op, cpu_activity, mem_activity, nic_activity).total_w

    @property
    def max_node_power_w(self) -> float:
        """Node power flat-out at the reference point (all components busy)."""
        return self.node_power_w(self.reference_point, 1.0, 1.0, 1.0)


#: Pentium M / Dell Inspiron 8600 node of the NEMO cluster (calibrated
#: against Table 2's EP row; see DESIGN.md section 5).
NEMO_POWER = NodePowerParameters(
    cpu_dynamic_max_w=19.6,
    cpu_leakage_max_w=3.0,
    board_w=8.4,
    memory_idle_w=2.5,
    memory_active_w=2.0,
    nic_idle_w=1.0,
    nic_active_w=1.5,
    disk_w=0.5,
    reference_point=PENTIUM_M_TABLE.fastest,
)

#: Single operating point of a Pentium III server node (Figure 1).
_P3_POINT = OperatingPoint(frequency_hz=933e6, voltage_v=1.75)

#: Pentium III server node used only to reproduce Figure 1's breakdown
#: (CPU ~35 % of system power under load, ~15 % idle).
PENTIUM3_POWER = NodePowerParameters(
    cpu_dynamic_max_w=31.0,
    cpu_leakage_max_w=4.5,
    board_w=30.0,
    memory_idle_w=9.0,
    memory_active_w=5.0,
    nic_idle_w=3.5,
    nic_active_w=2.0,
    disk_w=6.5,
    reference_point=_P3_POINT,
    cpu_idle_activity=0.18,
)

#: Operating point table for the Figure 1 node (no DVS).
PENTIUM3_TABLE = OperatingPointTable([_P3_POINT])
