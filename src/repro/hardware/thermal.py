"""Thermal and reliability model (paper Section 1's motivation).

The paper motivates power-aware clusters with two arguments beyond the
power bill:

* **Operating cost** — "at $100 per megawatt(-hour), peak operation of
  this petaflop machine is $10,000 per hour".
* **Reliability** — "according to formula based on the Arrhenius Law,
  component life expectancy decreases 50% for every 10°C temperature
  increase".

This module quantifies both on top of the simulator's power traces:

* :class:`ThermalModel` — a first-order RC thermal node: the component
  temperature relaxes toward ``T_ambient + R_th * P`` with time
  constant ``tau``; integrating it over a run's piecewise-constant
  power gives exact temperature trajectories.
* :func:`arrhenius_life_factor` — relative life expectancy between two
  operating temperatures (×2 per 10 °C decrease, as the paper states).
* :func:`operating_cost_usd` — energy → dollars at a $/MWh rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Environment
from repro.hardware.node import Node

__all__ = [
    "ThermalParameters",
    "ThermalModel",
    "arrhenius_life_factor",
    "operating_cost_usd",
    "PAPER_USD_PER_MWH",
]

#: the paper's "$100 per megawatt" (per hour, i.e. $0.10/kWh).
PAPER_USD_PER_MWH = 100.0


@dataclass(frozen=True)
class ThermalParameters:
    """First-order thermal constants of one component/node.

    ``r_th_c_per_w`` is the junction-to-ambient thermal resistance;
    ``tau_s`` the thermal time constant; laptop-class CPU+heatpipe
    defaults.
    """

    ambient_c: float = 24.0
    r_th_c_per_w: float = 1.4
    tau_s: float = 18.0

    def __post_init__(self) -> None:
        if self.r_th_c_per_w <= 0 or self.tau_s <= 0:
            raise ValueError("thermal resistance and time constant must be positive")

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature at constant ``power_w``."""
        return self.ambient_c + self.r_th_c_per_w * power_w


class ThermalModel:
    """Tracks one node's component temperature during a simulation.

    Subscribe-and-integrate: on every power-state change the model
    advances the closed-form RC solution over the elapsed interval
    (power is piecewise constant between events, so this is exact).
    By default it follows the CPU component's power.
    """

    def __init__(
        self,
        node: Node,
        params: Optional[ThermalParameters] = None,
        power_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.params = params or ThermalParameters()
        self._power_fn = power_fn or (lambda: node.breakdown().cpu_w)
        self._last_time = self.env.now
        self._last_power = self._power_fn()
        self._temp_c = self.params.steady_state_c(self._last_power)
        self._peak_c = self._temp_c
        self._time_weighted_c = 0.0
        self._weight_s = 0.0
        node.subscribe(self._on_change)

    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        dt = now - self._last_time
        if dt > 0:
            target = self.params.steady_state_c(self._last_power)
            decay = math.exp(-dt / self.params.tau_s)
            # time-weighted mean of the exact exponential segment
            mean_seg = target + (self._temp_c - target) * (
                self.params.tau_s * (1.0 - decay) / dt
            )
            self._time_weighted_c += mean_seg * dt
            self._weight_s += dt
            self._temp_c = target + (self._temp_c - target) * decay
            self._peak_c = max(self._peak_c, self._temp_c, mean_seg)
            self._last_time = now

    def _on_change(self) -> None:
        self._advance(self.env.now)
        self._last_power = self._power_fn()

    # ------------------------------------------------------------------
    def temperature_c(self) -> float:
        """Current component temperature (advances to ``env.now``)."""
        self._advance(self.env.now)
        return self._temp_c

    def mean_temperature_c(self) -> float:
        """Time-averaged temperature since construction."""
        self._advance(self.env.now)
        if self._weight_s <= 0:
            return self._temp_c
        return self._time_weighted_c / self._weight_s

    def peak_temperature_c(self) -> float:
        self._advance(self.env.now)
        return self._peak_c


def arrhenius_life_factor(temp_c: float, reference_c: float) -> float:
    """Relative component life expectancy at ``temp_c`` vs a reference.

    The paper's rule: life expectancy halves for every 10 °C increase
    (equivalently doubles per 10 °C decrease), i.e.
    ``2 ** ((reference - temp) / 10)``.
    """
    return 2.0 ** ((reference_c - temp_c) / 10.0)


def operating_cost_usd(
    energy_j: float, usd_per_mwh: float = PAPER_USD_PER_MWH
) -> float:
    """Energy cost in dollars (1 MWh = 3.6e9 J).

    Sanity anchor from the paper's introduction: 100 MW sustained for
    one hour at $100/MWh is $10,000.
    """
    if energy_j < 0:
        raise ValueError("energy must be non-negative")
    return energy_j / 3.6e9 * usd_per_mwh
