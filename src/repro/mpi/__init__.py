"""Virtual MPI over the simulated cluster.

Rank programs are generator functions ``def program(ctx): yield from
ctx...`` where ``ctx`` is a :class:`~repro.mpi.communicator.RankContext`
offering the MPI-ish surface the paper's benchmarks need:

* blocking and non-blocking point-to-point (eager + rendezvous
  protocols, like MPICH 1.2.5's ch_p4 device),
* the collectives used by the NAS Parallel Benchmarks (barrier, bcast,
  reduce, allreduce, allgather, alltoall, alltoallv),
* explicit compute phases (on-chip cycles + off-chip stall seconds),
* the PowerPack application-level DVS call ``set_cpuspeed``.

Timing comes from :class:`~repro.mpi.costmodel.CostModel` +
the :class:`~repro.hardware.network.Network`; power/utilization
signatures of blocking calls come from the CPU wait-state machinery, so
the CPUSPEED daemon observes realistic /proc utilization.
"""

from repro.mpi.costmodel import CostModel
from repro.mpi.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MpiError,
    RankContext,
    Request,
)
from repro.mpi.launcher import RunHandle, launch
from repro.mpi.algorithms import (
    dissemination_barrier,
    pairwise_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    tree_bcast,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "CostModel",
    "MpiError",
    "RankContext",
    "Request",
    "RunHandle",
    "dissemination_barrier",
    "launch",
    "pairwise_alltoall",
    "recursive_doubling_allreduce",
    "ring_allgather",
    "tree_bcast",
]
