"""Message-level collective algorithms.

The communicator's built-in collectives are costed analytically (fast,
calibrated).  This module implements the classic algorithms *out of
point-to-point messages* instead — binomial-tree broadcast, recursive
doubling, ring allgather, pairwise-exchange all-to-all — for two
purposes:

* **model validation**: tests check the analytic durations against the
  message-level implementations (they must agree within a small
  factor on this fabric);
* **research flexibility**: workloads that need algorithm-accurate
  network contention can call these instead of the analytic ones.

All functions are generators over a :class:`RankContext` and must be
called collectively (every rank, same order), like real MPI.
"""

from __future__ import annotations

from typing import Generator

from repro.mpi.communicator import RankContext

__all__ = [
    "tree_bcast",
    "recursive_doubling_allreduce",
    "ring_allgather",
    "pairwise_alltoall",
    "dissemination_barrier",
]

_TAG_BASE = 7_000_000  # keep algorithm traffic away from app tags


def tree_bcast(ctx: RankContext, nbytes: float, root: int = 0) -> Generator:
    """Binomial-tree broadcast (MPICH's algorithm).

    Rank numbering is rotated so the root is virtual rank 0; each rank
    receives once from its parent, then forwards to its subtree.
    """
    size = ctx.size
    if size == 1:
        return
    vrank = (ctx.rank - root) % size
    # Phase 1: receive from the parent (the rank that differs in the
    # lowest set bit of vrank).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent_v = vrank - mask
            yield from ctx.recv((parent_v + root) % size, tag=_TAG_BASE + 1)
            break
        mask <<= 1
    # Phase 2: forward to children (higher vranks within reach).
    mask >>= 1
    while mask >= 1:
        child_v = vrank + mask
        if child_v < size:
            yield from ctx.send((child_v + root) % size, nbytes, tag=_TAG_BASE + 1)
        mask >>= 1


def recursive_doubling_allreduce(ctx: RankContext, nbytes: float) -> Generator:
    """Recursive-doubling allreduce (power-of-two ranks only)."""
    size = ctx.size
    if size & (size - 1):
        raise ValueError("recursive doubling needs a power-of-two rank count")
    mask = 1
    while mask < size:
        partner = ctx.rank ^ mask
        yield from ctx.sendrecv(partner, nbytes, src=partner, tag=_TAG_BASE + 100 + mask)
        # local reduction cost
        yield from ctx.compute(cycles=0.5 * nbytes, mem_activity=0.4)
        mask *= 2


def ring_allgather(ctx: RankContext, nbytes: float) -> Generator:
    """Ring allgather: ``p - 1`` steps, each passing one block."""
    size = ctx.size
    if size == 1:
        return
    right = (ctx.rank + 1) % size
    left = (ctx.rank - 1) % size
    for step in range(size - 1):
        yield from ctx.sendrecv(right, nbytes, src=left, tag=_TAG_BASE + 200 + step)


def pairwise_alltoall(ctx: RankContext, bytes_per_pair: float) -> Generator:
    """Pairwise-exchange all-to-all: ``p - 1`` rounds, partner ``rank ^ r``
    (power-of-two ranks) or rotation otherwise."""
    size = ctx.size
    if size == 1:
        return
    pow2 = not (size & (size - 1))
    for round_ in range(1, size):
        if pow2:
            partner = ctx.rank ^ round_
        else:
            partner = (round_ - ctx.rank) % size
        if partner == ctx.rank:
            continue
        yield from ctx.sendrecv(
            partner, bytes_per_pair, src=partner, tag=_TAG_BASE + 300 + round_
        )


def dissemination_barrier(ctx: RankContext) -> Generator:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of 1-byte tokens."""
    size = ctx.size
    if size == 1:
        return
    round_ = 0
    dist = 1
    while dist < size:
        to = (ctx.rank + dist) % size
        frm = (ctx.rank - dist) % size
        yield from ctx.sendrecv(to, 1, src=frm, tag=_TAG_BASE + 400 + round_)
        dist *= 2
        round_ += 1
