"""The communicator and per-rank MPI surface."""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.events import AnyOf, Event, Timeout
from repro.hardware.cluster import Cluster
from repro.hardware.cpu import CpuCore
from repro.mpi.costmodel import CostModel

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MpiError",
    "Message",
    "RankContext",
    "Request",
]

#: Wildcard source for :meth:`RankContext.irecv` (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag (MPI_ANY_TAG).
ANY_TAG = -1


class MpiError(RuntimeError):
    """Invalid use of the virtual MPI (mismatched collectives etc.)."""


class Message:
    """An in-flight point-to-point message."""

    __slots__ = ("src", "dst", "tag", "nbytes", "eager", "sent_at", "delivered", "cts")

    def __init__(
        self,
        env: Environment,
        src: int,
        dst: int,
        tag: int,
        nbytes: float,
        eager: bool,
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.eager = eager
        self.sent_at = env.now
        #: Triggers when payload bytes have fully arrived at ``dst``.
        self.delivered = Event(env)
        #: Rendezvous clear-to-send (None for eager messages).
        self.cts: Optional[Event] = None if eager else Event(env)

    def matches(self, src: int, tag: int) -> bool:
        return (src == ANY_SOURCE or src == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )

    def __repr__(self) -> str:
        proto = "eager" if self.eager else "rndv"
        return f"<Message {self.src}->{self.dst} tag={self.tag} {self.nbytes:.0f}B {proto}>"


class Request:
    """Handle for a non-blocking operation (isend/irecv)."""

    __slots__ = ("kind", "peer", "tag", "nbytes", "done", "message")

    def __init__(self, env: Environment, kind: str, peer: int, tag: int, nbytes: float) -> None:
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        #: Succeeds when the operation is complete (buffer reusable /
        #: message received).  Value: the :class:`Message`.
        self.done = Event(env)
        self.message: Optional[Message] = None

    @property
    def completed(self) -> bool:
        return self.done.triggered

    def __repr__(self) -> str:
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} peer={self.peer} tag={self.tag} {state}>"


class _CollectiveSlot:
    """Rendezvous point for one collective call site."""

    __slots__ = ("kind", "expected", "bytes_by_rank", "done", "first_arrival", "all_arrived_at")

    def __init__(self, env: Environment, kind: str, expected: int) -> None:
        self.kind = kind
        self.expected = expected
        self.bytes_by_rank: dict[int, float] = {}
        self.done = Event(env)
        self.first_arrival: Optional[float] = None
        self.all_arrived_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return len(self.bytes_by_rank) == self.expected

    @property
    def max_bytes(self) -> float:
        return max(self.bytes_by_rank.values()) if self.bytes_by_rank else 0.0


class Communicator:
    """MPI_COMM_WORLD over a set of cluster nodes.

    Parameters
    ----------
    cluster:
        The simulated cluster.
    node_ids:
        Node index for each rank (rank ``i`` runs on
        ``cluster[node_ids[i]]``).  Defaults to the first ``n`` nodes.
    cost:
        Communication cost model.
    tracer:
        Optional object with ``record(rank, op, t_begin, t_end, nbytes,
        peer)`` — the MPE-like hook used by :mod:`repro.trace`.
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector` adding
        message jitter, payload drops + retransmissions and collective
        OS-noise; also consulted by :meth:`RankContext.set_cpuspeed`
        retries.  ``None`` is the byte-identical clean path.
    """

    def __init__(
        self,
        cluster: Cluster,
        nprocs: Optional[int] = None,
        node_ids: Optional[Sequence[int]] = None,
        cost: Optional[CostModel] = None,
        tracer: Any = None,
        injector: Any = None,
    ) -> None:
        self.cluster = cluster
        self.injector = injector
        self.env: Environment = cluster.env
        if node_ids is None:
            n = nprocs if nprocs is not None else len(cluster)
            node_ids = list(range(n))
        if nprocs is not None and nprocs != len(node_ids):
            raise ValueError("nprocs does not match node_ids length")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("each rank needs its own node")
        for nid in node_ids:
            if not 0 <= nid < len(cluster):
                raise ValueError(f"node id {nid} out of range")
        self.node_ids = list(node_ids)
        self.size = len(self.node_ids)
        self.cost = cost or CostModel()
        self.tracer = tracer
        # Unmatched delivered-or-announced messages per destination rank.
        self._mailboxes: list[list[Message]] = [[] for _ in range(self.size)]
        # Posted-but-unmatched receives per destination rank.
        self._pending_recvs: list[list[tuple[Request, int, int]]] = [
            [] for _ in range(self.size)
        ]
        self._coll_slots: dict[int, _CollectiveSlot] = {}

    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        return self.node_ids[rank]

    def cpu_of(self, rank: int) -> CpuCore:
        return self.cluster[self.node_ids[rank]].cpu

    def context(self, rank: int) -> "RankContext":
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")
        return RankContext(self, rank)

    # ------------------------------------------------------------------
    # matching engine
    # ------------------------------------------------------------------
    def _post_message(self, msg: Message) -> None:
        """A message (eager payload or rendezvous RTS) reached ``dst``."""
        queue = self._pending_recvs[msg.dst]
        for i, (req, src, tag) in enumerate(queue):
            if msg.matches(src, tag):
                del queue[i]
                self._match(req, msg)
                return
        self._mailboxes[msg.dst].append(msg)

    def _post_recv(self, rank: int, req: Request, src: int, tag: int) -> None:
        box = self._mailboxes[rank]
        for i, msg in enumerate(box):
            if msg.matches(src, tag):
                del box[i]
                self._match(req, msg)
                return
        self._pending_recvs[rank].append((req, src, tag))

    def _match(self, req: Request, msg: Message) -> None:
        req.message = msg
        if msg.eager:
            # Payload already delivered (eager messages are posted on
            # delivery).
            req.done.succeed(msg)
        else:
            # Clear-to-send; completion follows payload delivery.
            msg.cts.succeed()
            msg.delivered._add_callback(lambda _e: req.done.succeed(msg))

    def _slot(self, seq: int, kind: str) -> _CollectiveSlot:
        slot = self._coll_slots.get(seq)
        if slot is None:
            slot = _CollectiveSlot(self.env, kind, self.size)
            self._coll_slots[seq] = slot
        elif slot.kind != kind:
            raise MpiError(
                f"collective mismatch at call site {seq}: "
                f"{slot.kind!r} vs {kind!r}"
            )
        return slot

    def _max_freq_ratio(self) -> float:
        fastest = self.cluster.opoints.fastest.frequency_hz
        return max(self.cpu_of(r).frequency_hz for r in range(self.size)) / fastest


class RankContext:
    """Per-rank MPI interface handed to rank programs.

    All blocking operations are generators — use ``yield from`` inside a
    rank program.  Non-blocking ``isend``/``irecv`` return a
    :class:`Request` immediately.
    """

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.size = comm.size
        self.env = comm.env
        self.node = comm.cluster[comm.node_of(rank)]
        self.cpu = self.node.cpu
        self._coll_seq = 0
        #: count of application-level DVS calls made by this rank.
        self.dvs_calls = 0
        #: immediate retries issued after injected transition failures.
        self.dvs_retries = 0

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def _trace(self, op: str, t_begin: float, nbytes: float = 0.0, peer: int = -1) -> None:
        tracer = self.comm.tracer
        if tracer is not None:
            tracer.record(self.rank, op, t_begin, self.env.now, nbytes, peer)

    # ------------------------------------------------------------------
    # compute / idle
    # ------------------------------------------------------------------
    def compute(
        self,
        seconds: Optional[float] = None,
        cycles: Optional[float] = None,
        offchip_seconds: float = 0.0,
        mem_activity: float = 0.3,
        activity: float = 1.0,
        busy: float = 1.0,
    ) -> Generator:
        """Run a compute segment on this rank's CPU.

        ``seconds`` is shorthand for on-chip work sized in seconds *at
        the fastest operating point*; ``cycles`` gives it exactly.
        ``offchip_seconds`` is the frequency-insensitive (memory-stall)
        share.
        """
        if (seconds is None) == (cycles is None):
            raise ValueError("specify exactly one of seconds= or cycles=")
        if cycles is None:
            cycles = seconds * self.cpu.opoints.fastest.frequency_hz
        t0 = self.env.now
        yield self.cpu.run_work(
            cycles,
            offchip_seconds=offchip_seconds,
            activity=activity,
            busy=busy,
            mem_activity=mem_activity,
        )
        self._trace("compute", t0)

    def idle(self, seconds: float) -> Generator:
        """Sleep without occupying the CPU (load-imbalance slack)."""
        t0 = self.env.now
        yield self.env.timeout(seconds)
        self._trace("idle", t0)

    # ------------------------------------------------------------------
    # DVS control (the PowerPack application API)
    # ------------------------------------------------------------------
    #: bounded immediate re-issues of a failed SpeedStep transition
    #: (each retry re-charges the software actuation overhead).
    dvs_max_retries = 2

    def set_cpuspeed(self, mhz: float) -> None:
        """INTERNAL-strategy DVS actuation (paper Figure 3/10/13).

        Charges the cost model's software actuation overhead in
        addition to the hardware transition latency.  Injected
        transition failures are retried immediately up to
        :attr:`dvs_max_retries` times, overhead charged per attempt.
        """
        self.dvs_calls += 1
        t0 = self.env.now
        self._actuate(lambda: self.cpu.set_speed_mhz(mhz))
        self._trace("set_cpuspeed", t0, nbytes=mhz)

    def set_cpuspeed_index(self, index: int) -> None:
        self.dvs_calls += 1
        t0 = self.env.now
        self._actuate(lambda: self.cpu.set_speed_index(index))
        self._trace("set_cpuspeed", t0, nbytes=self.cpu.frequency_mhz)

    def _actuate(self, transition) -> bool:
        overhead = self.comm.cost.dvs_call_overhead_s
        # Failures originate from the CPU's injector; log retries there.
        injector = self.cpu.injector
        for attempt in range(self.dvs_max_retries + 1):
            self.cpu.stall(overhead)
            if transition():
                return True
            if attempt < self.dvs_max_retries:
                self.dvs_retries += 1
                if injector is not None:
                    injector.log.dvs_retries += 1
        return False

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, dst: int, nbytes: float, tag: int = 0) -> Request:
        """Start a non-blocking send of ``nbytes`` to rank ``dst``."""
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range")
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        comm = self.comm
        msg = Message(
            self.env, self.rank, dst, tag, nbytes, comm.cost.is_eager(nbytes)
        )
        req = Request(self.env, "send", dst, tag, nbytes)
        self.env.process(self._send_proc(msg, req), name=f"send{self.rank}->{dst}")
        return req

    def _send_proc(self, msg: Message, req: Request):
        comm = self.comm
        cost = comm.cost
        net = comm.cluster.network
        injector = comm.injector
        src_node = comm.node_of(self.rank)
        dst_node = comm.node_of(msg.dst)
        dst_cpu = comm.cpu_of(msg.dst)
        # Congestion collisions on saturating p2p patterns (paper 5.2):
        # stretch the wire bytes by the sender-frequency-dependent factor.
        ratio = self.cpu.frequency_hz / self.cpu.opoints.fastest.frequency_hz
        wire_bytes = cost.p2p_wire_bytes(msg.nbytes, ratio)
        # Sender software cost (scales with this rank's clock).
        yield self.cpu.run_work(
            cost.send_cycles(msg.nbytes), activity=1.0, busy=1.0, nic_activity=0.4
        )
        # Injected fabric faults for this message.  Computed up front —
        # zero when no injector — and applied only via the guarded
        # branches below, so a clean run creates no extra events.
        jitter_s = 0.0
        drops = 0
        if injector is not None:
            jitter_s = injector.message_jitter_s(self.rank, msg.dst, msg.nbytes)
            drops = injector.message_drops(self.rank, msg.dst, msg.nbytes)
        if msg.eager:
            # Buffer copied out: MPI_Send may return now.
            req.message = msg
            req.done.succeed(msg)
            if jitter_s > 0.0:
                yield self.env.timeout(jitter_s)
            yield net.transfer(src_node, dst_node, wire_bytes)
            for _ in range(drops):
                # Lost payload: receiver-side timeout, then retransmit.
                yield self.env.timeout(injector.retransmit_s)
                yield net.transfer(src_node, dst_node, wire_bytes)
            msg.delivered.succeed()
            comm._post_message(msg)
        else:
            # Rendezvous: announce (RTS rides one latency), await CTS,
            # then stream the payload with both CPUs in progress state.
            if jitter_s > 0.0:
                yield self.env.timeout(jitter_s)
            yield self.env.timeout(net.params.latency_s)
            comm._post_message(msg)
            yield msg.cts
            tok_s = self.cpu.push_wait_state(*cost.comm_progress.as_tuple())
            tok_r = dst_cpu.push_wait_state(*cost.comm_progress.as_tuple())
            try:
                yield net.transfer(src_node, dst_node, wire_bytes)
                for _ in range(drops):
                    yield self.env.timeout(injector.retransmit_s)
                    yield net.transfer(src_node, dst_node, wire_bytes)
            finally:
                self.cpu.pop_wait_state(tok_s)
                dst_cpu.pop_wait_state(tok_r)
            msg.delivered.succeed()
            req.done.succeed(msg)

    def irecv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG, nbytes_hint: float = 0.0
    ) -> Request:
        """Post a non-blocking receive."""
        if src != ANY_SOURCE and not 0 <= src < self.size:
            raise ValueError(f"source rank {src} out of range")
        req = Request(self.env, "recv", src, tag, nbytes_hint)
        self.comm._post_recv(self.rank, req, src, tag)
        return req

    def wait(self, request: Request, _op: Optional[str] = None) -> Generator:
        """Block until ``request`` completes; returns its message."""
        cost = self.comm.cost
        t0 = self.env.now
        if not request.done.triggered:
            token = self.cpu.push_wait_state(*cost.blocked_wait.as_tuple())
            try:
                yield request.done
            finally:
                self.cpu.pop_wait_state(token)
        msg: Message = request.done.value
        if request.kind == "recv":
            # Receiver-side unpack (scales with clock).
            yield self.cpu.run_work(
                cost.recv_cycles(msg.nbytes), activity=1.0, busy=1.0,
                mem_activity=0.4, nic_activity=0.3,
            )
        self._trace(_op or f"wait_{request.kind}", t0, msg.nbytes, peer=request.peer)
        return msg

    def waitall(self, requests: Sequence[Request]) -> Generator:
        """Block until every request completes; returns their messages."""
        results = []
        for req in requests:
            msg = yield from self.wait(req)
            results.append(msg)
        return results

    def waitany(self, requests: Sequence[Request]) -> Generator:
        """Block until one request completes; returns (index, message)."""
        pending = [r for r in requests if not r.completed]
        if pending:
            cost = self.comm.cost
            token = self.cpu.push_wait_state(*cost.blocked_wait.as_tuple())
            try:
                yield AnyOf(self.env, [r.done for r in pending])
            finally:
                self.cpu.pop_wait_state(token)
        for i, req in enumerate(requests):
            if req.completed:
                msg = yield from self.wait(req)  # runs unpack if needed
                return i, msg
        raise MpiError("waitany: no completed request found")  # pragma: no cover

    def send(self, dst: int, nbytes: float, tag: int = 0) -> Generator:
        """Blocking send (returns when the buffer is reusable)."""
        t0 = self.env.now
        req = self.isend(dst, nbytes, tag)
        if not req.done.triggered:
            cost = self.comm.cost
            token = self.cpu.push_wait_state(*cost.blocked_wait.as_tuple())
            try:
                yield req.done
            finally:
                self.cpu.pop_wait_state(token)
        self._trace("send", t0, nbytes, peer=dst)
        return req.message

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the matched message."""
        req = self.irecv(src, tag)
        msg = yield from self.wait(req, _op="recv")
        return msg

    def sendrecv(
        self, dst: int, nbytes: float, src: int = ANY_SOURCE, tag: int = 0
    ) -> Generator:
        """Exchange: isend to ``dst`` + recv from ``src`` concurrently."""
        sreq = self.isend(dst, nbytes, tag)
        msg = yield from self.recv(src, tag)
        yield from self.wait(sreq)
        return msg

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _collective(self, kind: str, wire_bytes: float, copy_bytes: float) -> Generator:
        comm = self.comm
        cost = comm.cost
        t0 = self.env.now
        seq = self._coll_seq
        self._coll_seq += 1
        slot = comm._slot(seq, kind)
        # Local software + pack cost before joining.
        yield self.cpu.run_work(
            cost.collective_overhead_cycles + cost.pack_cycles_per_byte * copy_bytes,
            activity=1.0,
            busy=1.0,
            mem_activity=0.4,
        )
        token = self.cpu.push_wait_state(*cost.comm_progress.as_tuple())
        try:
            if slot.first_arrival is None:
                slot.first_arrival = self.env.now
            slot.bytes_by_rank[self.rank] = wire_bytes
            if slot.complete:
                slot.all_arrived_at = self.env.now
                # OS-noise jitter drawn once per collective (by the
                # completing rank) so all participants see the same
                # stretched wire time.
                jitter_s = (
                    comm.injector.collective_jitter_s(kind, comm.size)
                    if comm.injector is not None
                    else 0.0
                )
                duration = cost.collective_seconds(
                    kind,
                    comm.size,
                    slot.max_bytes,
                    comm.cluster.network.params,
                    freq_ratio=comm._max_freq_ratio(),
                    jitter_s=jitter_s,
                )
                done = slot.done
                Timeout(self.env, duration)._add_callback(
                    lambda _e: done.succeed()
                )
            yield slot.done
        finally:
            self.cpu.pop_wait_state(token)
        self._trace(kind, t0, wire_bytes)

    def barrier(self) -> Generator:
        yield from self._collective("barrier", 0.0, 0.0)

    def bcast(self, nbytes: float, root: int = 0) -> Generator:
        yield from self._collective("bcast", nbytes, nbytes if self.rank == root else 0.0)

    def reduce(self, nbytes: float, root: int = 0) -> Generator:
        yield from self._collective("reduce", nbytes, nbytes)

    def allreduce(self, nbytes: float) -> Generator:
        yield from self._collective("allreduce", nbytes, nbytes)

    def scatter(self, nbytes: float, root: int = 0) -> Generator:
        """Root distributes ``nbytes`` to each rank."""
        copy = nbytes * (self.size - 1) if self.rank == root else nbytes
        yield from self._collective("scatter", nbytes, copy)

    def gather(self, nbytes: float, root: int = 0) -> Generator:
        """Each rank sends ``nbytes`` to the root."""
        copy = nbytes * (self.size - 1) if self.rank == root else nbytes
        yield from self._collective("gather", nbytes, copy)

    def allgather(self, nbytes: float) -> Generator:
        wire = nbytes * (self.size - 1)
        yield from self._collective("allgather", wire, nbytes)

    def alltoall(self, bytes_per_pair: float) -> Generator:
        wire = self.comm.cost.alltoall_bytes(self.size, bytes_per_pair)
        yield from self._collective("alltoall", wire, wire)

    def alltoallv(self, total_send_bytes: float) -> Generator:
        """Irregular all-to-all; pass this rank's total outgoing bytes."""
        yield from self._collective("alltoallv", total_send_bytes, total_send_bytes)
