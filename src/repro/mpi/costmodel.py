"""Communication cost model (MPICH 1.2.5 over Fast Ethernet).

All constants live here so experiments can swap models.  Two groups:

* **Timing** — software overheads (cycles, so they scale with the
  clock), protocol thresholds, collective-duration formulas (LogGP-ish,
  parameterized by the network's latency/bandwidth), and the congestion
  term behind the paper's IS/SP anomaly (above a frequency threshold a
  saturated fabric sees extra collisions/retransmissions, so *higher*
  CPU speed can mean *longer* communication — paper Section 5.2).

* **Power/utilization signatures** — what the CPU does while inside each
  kind of blocking call: dynamic-activity factor (for the power model)
  and busy fraction (what /proc — and hence the CPUSPEED daemon — sees).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

from repro.hardware.network import NetworkParameters

__all__ = ["CostModel", "WaitSignature"]


@dataclass(frozen=True)
class WaitSignature:
    """CPU state while blocked in a library call."""

    activity: float
    busy: float
    mem_activity: float = 0.0
    nic_activity: float = 0.0

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.activity, self.busy, self.mem_activity, self.nic_activity)


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the virtual MPI implementation."""

    # -- protocol ------------------------------------------------------
    #: eager/rendezvous switch (MPICH 1.2.5 ch_p4 default ballpark).
    eager_threshold_bytes: int = 128 * 1024
    #: fixed software cost per send/recv, in CPU cycles (scales with f).
    send_overhead_cycles: float = 9_000.0
    recv_overhead_cycles: float = 8_000.0
    #: copy cost per byte on each side, in cycles.
    pack_cycles_per_byte: float = 0.35
    unpack_cycles_per_byte: float = 0.35

    # -- collective shapes ---------------------------------------------
    #: link-utilisation derating for dense exchange patterns.
    alltoall_efficiency: float = 0.75
    #: extra per-collective software cost (cycles).
    collective_overhead_cycles: float = 25_000.0
    #: software cost of one application-level set_cpuspeed call
    #: (syscall + CPUFreq driver path) — charged even when the target
    #: point equals the current one.  The paper's reason fine-grained
    #: phase scheduling "can not be ignored" for short CG cycles.
    dvs_call_overhead_s: float = 2e-4

    # -- congestion / collision term (IS & SP anomaly) ------------------
    #: fractional slowdown of saturating collectives at full clock.
    collision_coeff: float = 0.0
    #: frequency ratio (f/f_max) above which collisions kick in.
    collision_onset: float = 0.72
    #: whether the collision term also stretches point-to-point
    #: transfers (codes whose p2p pattern saturates the fabric, e.g. SP).
    collision_applies_p2p: bool = False

    # -- CPU signatures -------------------------------------------------
    #: active message progress (collectives, rendezvous transfers).
    comm_progress: WaitSignature = WaitSignature(
        activity=0.85, busy=0.45, mem_activity=0.25, nic_activity=1.0
    )
    #: select()-blocked receive / CTS wait.
    blocked_wait: WaitSignature = WaitSignature(
        activity=0.25, busy=0.05, mem_activity=0.05, nic_activity=0.2
    )

    def with_(self, **changes) -> "CostModel":
        """Return a copy with fields replaced (convenience)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def is_eager(self, nbytes: float) -> bool:
        return nbytes <= self.eager_threshold_bytes

    def send_cycles(self, nbytes: float) -> float:
        """Sender-side CPU cycles to initiate a message (pack + syscall)."""
        copied = min(nbytes, self.eager_threshold_bytes)
        return self.send_overhead_cycles + self.pack_cycles_per_byte * copied

    def recv_cycles(self, nbytes: float) -> float:
        """Receiver-side CPU cycles to complete a message (unpack)."""
        return self.recv_overhead_cycles + self.unpack_cycles_per_byte * nbytes

    def collision_factor(self, freq_ratio: float) -> float:
        """Multiplicative slowdown of saturating exchanges at high clock.

        ``freq_ratio`` is the fastest participant's ``f / f_max``.  The
        factor is 1 below :attr:`collision_onset` and ramps linearly to
        ``1 + collision_coeff`` at full speed.
        """
        if self.collision_coeff <= 0.0:
            return 1.0
        ramp = (freq_ratio - self.collision_onset) / (1.0 - self.collision_onset)
        return 1.0 + self.collision_coeff * min(1.0, max(0.0, ramp))

    def p2p_wire_bytes(self, nbytes: float, freq_ratio: float) -> float:
        """Effective wire bytes of one point-to-point message.

        Codes whose p2p pattern saturates the fabric
        (:attr:`collision_applies_p2p`) pay the collision factor as
        inflated wire bytes; everyone else ships ``nbytes`` unchanged.
        """
        if not self.collision_applies_p2p:
            return nbytes
        return nbytes * self.collision_factor(freq_ratio)

    # ------------------------------------------------------------------
    # collective durations (seconds), excluding the software cycles
    # ------------------------------------------------------------------
    def collective_seconds(
        self,
        kind: str,
        nprocs: int,
        max_bytes: float,
        net: NetworkParameters,
        freq_ratio: float = 1.0,
        jitter_s: float = 0.0,
    ) -> float:
        """Wire time of one collective once all ranks have arrived.

        ``max_bytes`` is the largest per-rank payload (per-pair bytes for
        alltoall are already multiplied by ``nprocs - 1`` by the caller).
        ``jitter_s`` is additive OS-noise from fault injection; a noisy
        collective still pays its full fault-free wire time.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if nprocs == 1:
            return 0.0
        lat = net.latency_s
        ser = max_bytes / net.bandwidth_Bps
        rounds = math.ceil(math.log2(nprocs))
        if kind == "barrier":
            wire = 2 * rounds * lat
        elif kind in ("bcast", "reduce", "scatter", "gather"):
            wire = rounds * lat + ser
        elif kind == "allreduce":
            wire = 2 * (rounds * lat + ser)
        elif kind == "allgather":
            wire = (nprocs - 1) * lat + ser
        elif kind in ("alltoall", "alltoallv"):
            base = (nprocs - 1) * lat + ser / self.alltoall_efficiency
            wire = base * self.collision_factor(freq_ratio)
        else:
            raise ValueError(f"unknown collective kind {kind!r}")
        # Guarded add keeps the clean path's result byte-identical.
        return wire + jitter_s if jitter_s > 0.0 else wire

    @staticmethod
    def alltoall_bytes(nprocs: int, bytes_per_pair: float) -> float:
        """Per-rank wire bytes of an alltoall with ``bytes_per_pair``."""
        return (nprocs - 1) * bytes_per_pair

    @staticmethod
    def max_total(values: Sequence[float]) -> float:
        return max(values) if values else 0.0
