"""``mpirun`` analogue: start a rank program on every node."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence

from repro.sim.engine import Environment, SimulationError
from repro.sim.events import AllOf, Event
from repro.sim.process import Process
from repro.hardware.cluster import Cluster
from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.costmodel import CostModel

__all__ = ["RunHandle", "launch"]

#: A rank program: callable taking the rank's context, returning a generator.
RankProgram = Callable[[RankContext], Generator]


@dataclass
class RunHandle:
    """A launched parallel job."""

    comm: Communicator
    processes: list[Process]
    contexts: list[RankContext]
    done: Event
    started_at: float

    @property
    def env(self) -> Environment:
        return self.comm.env

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def elapsed(self) -> float:
        """Wall time of the job (raises if not finished)."""
        if not self.finished:
            raise RuntimeError("job has not finished")
        return max(p.value for p in self.processes) - self.started_at

    def check(self) -> None:
        """Raise if the job is still unfinished after the event queue drained
        (the virtual-MPI equivalent of a deadlocked mpirun)."""
        if not self.finished:
            alive = [p.name for p in self.processes if p.is_alive]
            raise SimulationError(
                f"parallel job deadlocked; still-blocked ranks: {alive}"
            )


def launch(
    cluster: Cluster,
    program: RankProgram,
    nprocs: Optional[int] = None,
    node_ids: Optional[Sequence[int]] = None,
    cost: Optional[CostModel] = None,
    tracer: Any = None,
    injector: Any = None,
) -> RunHandle:
    """Start ``program`` on ``nprocs`` ranks of ``cluster``.

    Each rank process records the simulation time at which it returned;
    :meth:`RunHandle.elapsed` reports the job's makespan.  Run the
    environment (``env.run(handle.done)``) to execute.  ``injector``
    adds fabric faults (see :mod:`repro.faults`).
    """
    comm = Communicator(cluster, nprocs=nprocs, node_ids=node_ids, cost=cost,
                        tracer=tracer, injector=injector)
    env = cluster.env
    started = env.now
    contexts = [comm.context(r) for r in range(comm.size)]

    def wrapper(ctx: RankContext):
        yield from program(ctx)
        return env.now

    processes = [
        env.process(wrapper(ctx), name=f"rank{ctx.rank}") for ctx in contexts
    ]
    done = AllOf(env, processes)
    return RunHandle(
        comm=comm,
        processes=processes,
        contexts=contexts,
        done=done,
        started_at=started,
    )
