"""Offline gear-plan optimization.

Computes per-rank-group, per-phase DVS schedules that minimize energy
under the paper's performance constraint (time within ``(1 + delta)`` of
the no-DVS baseline), by batched frontier search over the straightline
quotient tier.  See :mod:`repro.optimize.search` for the search itself
and :mod:`repro.optimize.plan` for the strategy the winner becomes.
"""

from repro.optimize.plan import GroupPhasePolicy, OptimalPlanStrategy
from repro.optimize.search import (
    OptimizeResult,
    PlanCandidate,
    SearchTelemetry,
    optimize_gear_plan,
)

__all__ = [
    "GroupPhasePolicy",
    "OptimalPlanStrategy",
    "OptimizeResult",
    "PlanCandidate",
    "SearchTelemetry",
    "optimize_gear_plan",
]
