"""Computed gear plans: per-rank-group, per-phase operating points.

The optimizer's search space is a table ``mhz[group][phase]`` over the
workload's rank-equivalence groups (ranks with identical phase programs,
:attr:`repro.workloads.compile.CompiledProgram.group_of`) and announced
phases.  :class:`OptimalPlanStrategy` turns one such table into a plain
scheduling strategy:

* **setup time** pins every rank's node at its group's first-phase
  speed (the EXTERNAL actuation path — free of in-run overhead);
* ranks whose row is *uniform* across phases never issue a call: their
  schedule is exactly a per-rank EXTERNAL setting, bit-for-bit;
* ranks whose row *varies* issue one ``set_cpuspeed`` per phase begin,
  exactly like the paper's INTERNAL instrumentation (each call charges
  the cost model's actuation overhead, so the optimizer sees the true
  price of per-phase switching);
* the **event engine** executes the calls through
  :class:`GroupPhasePolicy` (ordinary
  :class:`~repro.workloads.base.PhaseHooks`), while the
  **straightline/quotient tiers** execute the identical lowering via
  :meth:`OptimalPlanStrategy.gear_plan` — ``start_mhz_per_rank`` plus
  per-rank phase tables (``rank_begin_calls``) on the existing
  :class:`~repro.core.strategies.base.GearPlan`, so no new engine code
  is involved and the bit-exact tier contract extends to computed
  schedules for free.

Two consequences the search relies on: the all-fastest table is
bit-identical to a no-DVS run (zero calls), so the paper's baseline is
always a feasible candidate; and ranks in the same group always receive
identical calls, which keeps a symmetric workload's candidate batch on
the quotient program — the execution partition stays at G groups for
every candidate at once.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.mpi.communicator import RankContext
from repro.workloads.base import PhaseHooks, Workload
from repro.core.strategies.base import GearPlan, Strategy

__all__ = ["GroupPhasePolicy", "OptimalPlanStrategy"]


class GroupPhasePolicy(PhaseHooks):
    """Hooks issuing each varying rank's group/phase speed at phase begins.

    The event-engine twin of the plan :meth:`OptimalPlanStrategy.gear_plan`
    publishes.  Setup already pinned every rank at its first-phase speed,
    so ranks with a phase-uniform row stay silent; ranks whose row varies
    set the group's speed at every phase begin.  No ``phase_end`` calls
    are needed — the next phase's begin (or the job's end) supersedes
    the setting.
    """

    def __init__(
        self,
        group_of: Sequence[int],
        phases: Sequence[str],
        table: Sequence[Sequence[float]],
    ) -> None:
        self.group_of = tuple(int(g) for g in group_of)
        self.phases = tuple(phases)
        self.table = tuple(tuple(float(m) for m in row) for row in table)
        self._phase_index = {p: i for i, p in enumerate(self.phases)}
        self._varies = tuple(len(set(row)) > 1 for row in self.table)

    def phase_begin(self, ctx: RankContext, phase: str) -> None:
        index = self._phase_index.get(phase)
        group = self.group_of[ctx.rank]
        if index is not None and self._varies[group]:
            ctx.set_cpuspeed(self.table[group][index])

    def __repr__(self) -> str:
        return f"GroupPhasePolicy(groups={len(self.table)}, phases={self.phases})"


class OptimalPlanStrategy(Strategy):
    """A computed per-group, per-phase schedule as a plain strategy.

    Parameters
    ----------
    group_of:
        Rank → group id, one entry per rank (the compile-time
        rank-equivalence partition, or any coarsening of it).
    phases:
        Phase names the table's columns refer to, in table order.
        Must be announced by the workload (validated in :meth:`hooks`
        and :meth:`gear_plan`).
    table:
        ``table[group][phase_index]`` = MHz for that group during that
        phase.  The group's first-phase speed doubles as its setup-time
        speed; a group whose row never varies keeps it for the whole
        run without issuing a single call.
    label:
        Display name for reports (default ``"optimal"``).

    The strategy is a value type: plain tuples all the way down, so it
    pickles into parallel workers and its public attributes content-hash
    into measurement cache keys like every other strategy.
    """

    name = "optimal"

    def __init__(
        self,
        group_of: Sequence[int],
        phases: Sequence[str],
        table: Sequence[Sequence[float]],
        label: Optional[str] = None,
    ) -> None:
        self.group_of = tuple(int(g) for g in group_of)
        self.phases = tuple(str(p) for p in phases)
        self.table = tuple(tuple(float(m) for m in row) for row in table)
        self.label = label
        if not self.phases:
            raise ValueError("need at least one phase column")
        n_groups = 1 + max(self.group_of) if self.group_of else 0
        if len(self.table) != n_groups:
            raise ValueError(
                f"table covers {len(self.table)} groups but group_of "
                f"names {n_groups}"
            )
        for row in self.table:
            if len(row) != len(self.phases):
                raise ValueError(
                    f"table row has {len(row)} entries for "
                    f"{len(self.phases)} phases"
                )

    # ------------------------------------------------------------------
    def _validate(self, workload: Workload) -> None:
        if len(self.group_of) != workload.nprocs:
            raise ValueError(
                f"plan maps {len(self.group_of)} ranks but {workload.tag} "
                f"runs {workload.nprocs}"
            )
        unknown = set(self.phases) - set(workload.phases)
        if unknown:
            raise ValueError(
                f"plan schedules phases {sorted(unknown)} that "
                f"{workload.tag} never announces (has {workload.phases})"
            )

    def _varies(self) -> tuple[bool, ...]:
        return tuple(len(set(row)) > 1 for row in self.table)

    def hooks(self, workload: Workload) -> PhaseHooks:
        self._validate(workload)
        return GroupPhasePolicy(self.group_of, self.phases, self.table)

    def gear_plan(self, workload: Optional[Workload] = None) -> Optional[GearPlan]:
        if workload is None:
            # The plan is workload-shaped (rank count, phase names); a
            # workload-free query can only answer the static question,
            # and that answer depends on the workload's rank count.
            return None
        self._validate(workload)
        varies = self._varies()
        start = tuple(
            self.table[self.group_of[r]][0] for r in range(workload.nprocs)
        )
        rank_begin = []
        for i, phase in enumerate(self.phases):
            per_rank = tuple(
                (self.table[self.group_of[r]][i],)
                if varies[self.group_of[r]]
                else ()
                for r in range(workload.nprocs)
            )
            if any(per_rank):
                rank_begin.append((phase, per_rank))
        return GearPlan(
            start_mhz_per_rank=start, rank_begin_calls=tuple(rank_begin)
        )

    def setup(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        """Pin each rank's node at its group's first-phase speed."""
        if len(node_ids) != len(self.group_of):
            raise ValueError(
                f"{len(node_ids)} participating nodes but the plan maps "
                f"{len(self.group_of)} ranks"
            )
        for rank, nid in enumerate(node_ids):
            cluster[nid].cpu.set_speed_mhz(self.table[self.group_of[rank]][0])

    def describe(self) -> str:
        label = self.label or "optimal"
        cells = sorted({m for row in self.table for m in row})
        gears = "/".join(f"{m:g}" for m in cells)
        return f"optimal[{label} {len(self.table)}g x {len(self.phases)}p {gears}MHz]"
