"""Offline gear-plan optimizer: batched frontier search.

The paper's EXTERNAL/INTERNAL schedules are hand-picked; this module
*computes* the schedule from the same simulation the figures run on.
The search space is the quotient of the per-rank, per-phase plan space
by rank equivalence: a candidate assigns one operating-point index to
every ``(rank group, phase)`` cell, so a symmetric N-rank workload
searches ``G x P`` dimensions with ``G << N`` (FT collapses to one
group; CG to its two asymmetric halves).

Candidates are scored in large :func:`repro.sim.straightline.run_batch`
calls — thousands of plans per second on the quotient batch path — and
kept only when they satisfy the paper's hard performance constraint
(``time <= (1 + delta) x no-DVS baseline``) and are not energy-delay
dominated by an already-known plan.  The search refines the surviving
frontier with coordinate-descent/beam steps (every single-cell variant
of every frontier plan) until a round discovers nothing new; spaces
small enough to enumerate are searched exhaustively instead, which
doubles as the brute-force-verified fallback.

The winner is an :class:`~repro.optimize.plan.OptimalPlanStrategy` — a
plain ``gear_plan()`` strategy that runs on the existing
piecewise-static/quotient tiers (and the event engine) unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.framework import Measurement
from repro.optimize.plan import OptimalPlanStrategy
from repro.workloads.base import Workload

__all__ = [
    "PlanCandidate",
    "SearchTelemetry",
    "OptimizeResult",
    "optimize_gear_plan",
]

#: relative slack on the hard constraint, absorbing float summation
#: noise only — never a real schedule change.
_EPS = 1e-9


@dataclass
class PlanCandidate:
    """One evaluated plan: its assignment, strategy and measurement."""

    #: gear index per ``(group, phase)`` cell, row-major by group.
    assignment: tuple[int, ...]
    strategy: OptimalPlanStrategy
    measurement: Measurement
    norm_delay: float
    norm_energy: float
    feasible: bool

    @property
    def elapsed_s(self) -> float:
        return self.measurement.elapsed_s

    @property
    def energy_j(self) -> float:
        return self.measurement.energy_j


@dataclass
class SearchTelemetry:
    """How the search ran — surfaced through ``CacheStats`` and reports."""

    candidates_evaluated: int = 0
    #: evaluated plans that ended infeasible or energy-delay dominated
    #: (everything not on the final frontier).
    candidates_pruned: int = 0
    #: ``run_batch`` calls issued and the largest single batch.
    batches: int = 0
    max_batch: int = 0
    rounds: int = 0
    exhaustive: bool = False
    space_size: int = 0
    #: candidates evaluated per point through the event engine because
    #: the batch tier declined the workload (0 on every NPB shape).
    scalar_fallbacks: int = 0


@dataclass
class OptimizeResult:
    """The optimizer's output: winner, frontier and provenance."""

    workload: str
    delta: float
    baseline: Measurement
    best: PlanCandidate
    #: feasible, non-dominated plans sorted by normalized delay — the
    #: computed energy-delay frontier under the constraint.
    frontier: list[PlanCandidate] = field(default_factory=list)
    phases: tuple[str, ...] = ()
    n_groups: int = 0
    telemetry: SearchTelemetry = field(default_factory=SearchTelemetry)

    @property
    def strategy(self) -> OptimalPlanStrategy:
        return self.best.strategy

    def render(self) -> str:
        t = self.telemetry
        lines = [
            f"Optimal gear plan for {self.workload} "
            f"(delta={self.delta:g}: delay cap {1 + self.delta:.3f})",
            f"  search space: {t.space_size} plans over {self.n_groups} "
            f"group(s) x {len(self.phases)} phase(s)"
            + (" [exhaustive]" if t.exhaustive else
               f" [{t.rounds} frontier rounds]"),
            f"  evaluated {t.candidates_evaluated} candidates "
            f"({t.candidates_pruned} pruned) in {t.batches} batches "
            f"(largest {t.max_batch})",
            f"  winner: {self.best.strategy.describe()} -> "
            f"delay {self.best.norm_delay:.3f}, "
            f"energy {self.best.norm_energy:.3f}",
            f"  frontier ({len(self.frontier)} plans):",
        ]
        for c in self.frontier:
            gears = ", ".join(
                f"{g}:" + "/".join(f"{m:g}" for m in row)
                for g, row in enumerate(c.strategy.table)
            )
            lines.append(
                f"    delay {c.norm_delay:.3f} energy {c.norm_energy:.3f}  "
                f"[{gears}]"
            )
        return "\n".join(lines)


def _prune(candidates: Sequence[PlanCandidate]) -> list[PlanCandidate]:
    """Feasible, energy-delay non-dominated subset, sorted by delay.

    A plan is dominated when another feasible plan has lower-or-equal
    elapsed time *and* energy (strictly better in at least one) — the
    same rule as :func:`repro.core.metrics.pareto_front`.
    """
    feasible = sorted(
        (c for c in candidates if c.feasible),
        key=lambda c: (c.elapsed_s, c.energy_j),
    )
    front: list[PlanCandidate] = []
    best_energy = float("inf")
    for c in feasible:
        if c.energy_j < best_energy:
            front.append(c)
            best_energy = c.energy_j
    return front


def optimize_gear_plan(
    workload: Workload,
    delta: float = 0.05,
    *,
    seed: int = 0,
    opoints=None,
    network_params=None,
    power=None,
    transition_latency_s: float = 20e-6,
    exhaustive_limit: int = 4096,
    beam_width: int = 8,
    max_rounds: int = 32,
    batch_cap: int = 512,
    group_seed_limit: int = 128,
    label: Optional[str] = None,
    stats=None,
) -> OptimizeResult:
    """Search per-group, per-phase gear plans under the delta constraint.

    Parameters
    ----------
    delta:
        The paper's performance constraint: only plans with
        ``elapsed <= (1 + delta) x baseline`` are eligible (baseline =
        the all-fastest plan, i.e. no-DVS).  The winner minimizes
        energy among eligible plans (ties break toward lower delay).
    exhaustive_limit:
        Spaces up to this many plans are enumerated outright (the
        verified fallback); larger spaces run the frontier search.
    beam_width:
        How many frontier plans (lowest energy first) seed each
        coordinate-descent round.
    batch_cap:
        Largest single ``run_batch`` call; bigger rounds split.
    group_seed_limit:
        When ``gears ** groups`` is at most this, every per-group
        uniform plan (the whole EXTERNAL + split-INTERNAL family) is
        seeded outright, guaranteeing the winner is at least as good
        as any such hand-picked schedule.
    stats:
        A :class:`~repro.experiments.store.CacheStats` to receive the
        ``opt_*`` telemetry; defaults to the current runner's.
    """
    from repro.hardware.opoints import PENTIUM_M_TABLE
    from repro.hardware.power import NEMO_POWER

    if delta < 0:
        raise ValueError("delta must be non-negative")
    if not workload.phases:
        raise ValueError(
            f"{workload.tag} announces no phases; the optimizer schedules "
            "phase programs (use an EXTERNAL frequency sweep instead)"
        )
    opoints = PENTIUM_M_TABLE if opoints is None else opoints
    power = NEMO_POWER if power is None else power
    mhzs = opoints.frequencies_mhz()  # slow -> fast
    K = len(mhzs)
    phases = tuple(workload.phases)
    P = len(phases)

    group_of, G, batchable = _rank_groups(workload, opoints)
    n_cells = G * P
    space_size = K**n_cells

    if stats is None:
        from repro.experiments.parallel import current_runner

        stats = current_runner().stats

    from repro.sim.straightline import run_batch

    telemetry = SearchTelemetry(space_size=space_size)
    run_kwargs = dict(
        network_params=network_params,
        power=power,
        opoints=opoints,
        transition_latency_s=transition_latency_s,
    )

    memo: dict[tuple[int, ...], Measurement] = {}

    def make_strategy(assignment: tuple[int, ...]) -> OptimalPlanStrategy:
        table = [
            [mhzs[assignment[g * P + p]] for p in range(P)] for g in range(G)
        ]
        return OptimalPlanStrategy(group_of, phases, table, label=label)

    def evaluate(assignments: Sequence[tuple[int, ...]]) -> None:
        """Measure every unseen assignment into ``memo``.

        Quotient-eligible workloads — no point-to-point traffic, or
        p2p whose channel classes the compiler certifies exact (CG's
        halo exchange) — score in large ``run_batch`` calls: the B x G
        structure-of-arrays path, thousands of plans per second.
        Workloads the classifier declines go per point through the
        scalar straightline tier instead: their candidates diverge at
        rank-specific waits, so a batch would just split itself back
        to scalar with extra re-runs.
        """
        fresh = [a for a in dict.fromkeys(assignments) if a not in memo]
        if not batchable:
            for a in fresh:
                memo[a] = _measure_scalar(
                    workload, make_strategy(a), seed, run_kwargs
                )
                telemetry.scalar_fallbacks += 1
            telemetry.candidates_evaluated += len(fresh)
            return
        for lo in range(0, len(fresh), batch_cap):
            chunk = fresh[lo : lo + batch_cap]
            strategies = [make_strategy(a) for a in chunk]
            telemetry.batches += 1
            telemetry.max_batch = max(telemetry.max_batch, len(chunk))
            try:
                measured = run_batch(
                    workload,
                    [(s, seed) for s in strategies],
                    **run_kwargs,
                )
            except Exception:
                # The batch tier declined the whole workload at run
                # time: measure per point instead.  Genuine plan errors
                # resurface from the per-point path.
                measured = [
                    _measure_scalar(workload, s, seed, run_kwargs)
                    for s in strategies
                ]
                telemetry.scalar_fallbacks += len(chunk)
            for a, m in zip(chunk, measured):
                memo[a] = m
            telemetry.candidates_evaluated += len(chunk)

    baseline_assignment = (K - 1,) * n_cells
    evaluate([baseline_assignment])
    baseline = memo[baseline_assignment]
    cap = (1.0 + delta) * baseline.elapsed_s

    def candidate(assignment: tuple[int, ...]) -> PlanCandidate:
        m = memo[assignment]
        d, e = m.normalized_against(baseline)
        feasible = m.elapsed_s <= cap * (1.0 + _EPS)
        return PlanCandidate(assignment, make_strategy(assignment), m, d, e, feasible)

    if space_size <= exhaustive_limit:
        telemetry.exhaustive = True
        everything = [
            tuple(a) for a in itertools.product(range(K), repeat=n_cells)
        ]
        evaluate(everything)
        frontier = _prune([candidate(a) for a in everything])
    else:
        evaluate(_seed_assignments(G, P, K, group_seed_limit))
        frontier = _prune([candidate(a) for a in memo])
        while telemetry.rounds < max_rounds:
            telemetry.rounds += 1
            seeds = sorted(frontier, key=lambda c: c.energy_j)[:beam_width]
            neighbors = [
                n
                for c in seeds
                for n in _neighbors(c.assignment, K)
                if n not in memo
            ]
            if not neighbors:
                break
            evaluate(neighbors)
            before = {c.assignment for c in frontier}
            frontier = _prune(
                frontier + [candidate(a) for a in dict.fromkeys(neighbors)]
            )
            if {c.assignment for c in frontier} == before:
                break  # converged: the round changed nothing

    telemetry.candidates_pruned = telemetry.candidates_evaluated - len(frontier)
    best = min(frontier, key=lambda c: (c.energy_j, c.elapsed_s))
    stats.opt_candidates += telemetry.candidates_evaluated
    stats.opt_pruned += telemetry.candidates_pruned
    stats.opt_batches += telemetry.batches
    stats.opt_max_batch = max(stats.opt_max_batch, telemetry.max_batch)

    frontier.sort(key=lambda c: c.norm_delay)
    return OptimizeResult(
        workload=workload.tag,
        delta=delta,
        baseline=baseline,
        best=best,
        frontier=frontier,
        phases=phases,
        n_groups=G,
        telemetry=telemetry,
    )


def _measure_scalar(workload, strategy, seed, run_kwargs) -> Measurement:
    """One candidate on the scalar straightline tier (event-engine
    fallback when even that declines)."""
    from repro.core.framework import run_workload
    from repro.sim.straightline import StraightlineUnsupported, run_straightline

    try:
        return run_straightline(workload, strategy, seed=seed, **run_kwargs)
    except StraightlineUnsupported:
        return run_workload(workload, strategy, seed=seed, **run_kwargs)


def _rank_groups(
    workload: Workload, opoints
) -> tuple[tuple[int, ...], int, bool]:
    """Rank → group mapping plus batch eligibility, from the compiler.

    The third element says whether candidates should be scored in
    ``run_batch`` calls: true for programs without point-to-point
    traffic, and for programs whose p2p requests classify into exact
    group-level channel classes over the body partition
    (:func:`repro.workloads.compile.classify_channels`) — the search's
    candidates are group-uniform, so their execution partition *is*
    the body partition and the quotient path applies.  Falls back to
    one group per rank, unbatched, when the workload does not compile
    (the search then runs per rank — correct, just without the
    quotient reduction).
    """
    from repro.workloads.compile import (
        CompileError,
        classify_channels,
        compile_workload,
    )

    try:
        compiled = compile_workload(workload, opoints.fastest.frequency_hz)
    except CompileError:
        return tuple(range(workload.nprocs)), workload.nprocs, False
    if compiled.group_of is None:
        return tuple(range(workload.nprocs)), workload.nprocs, False
    group_of = tuple(int(g) for g in compiled.group_of)
    batchable = (
        compiled.n_requests == 0 or classify_channels(compiled).exact
    )
    return group_of, compiled.n_groups, batchable


def _seed_assignments(
    G: int, P: int, K: int, group_seed_limit: int
) -> list[tuple[int, ...]]:
    """Starting points for the frontier search.

    Always the K uniform plans (the EXTERNAL family).  When the
    per-group uniform space is small (``K ** G`` plans), all of it —
    every split-speed INTERNAL shape is then a seed, so the search can
    only improve on hand-picked candidates.  Otherwise, one-group
    deviations from fastest approximate the same coverage.
    """
    seeds = [(k,) * (G * P) for k in range(K)]
    if K**G <= group_seed_limit:
        for combo in itertools.product(range(K), repeat=G):
            seeds.append(
                tuple(combo[g] for g in range(G) for _ in range(P))
            )
    else:
        fastest = K - 1
        for g in range(G):
            for k in range(K - 1):
                a = [fastest] * (G * P)
                a[g * P : (g + 1) * P] = [k] * P
                seeds.append(tuple(a))
    return list(dict.fromkeys(seeds))


def _neighbors(assignment: tuple[int, ...], K: int) -> list[tuple[int, ...]]:
    """Every single-cell variant of one assignment (coordinate moves)."""
    out = []
    for cell, current in enumerate(assignment):
        for k in range(K):
            if k != current:
                a = list(assignment)
                a[cell] = k
                out.append(tuple(a))
    return out
