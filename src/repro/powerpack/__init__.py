"""PowerPack — measurement & control framework (paper Section 4).

The software suite the paper builds around NEMO, as simulation-side
tooling:

* :mod:`repro.powerpack.api` — application/CLI DVS control
  (``set_cpuspeed``, ``psetcpuspeed``).
* :mod:`repro.powerpack.acpi` — ``libbattery.a`` analogue: coordinated
  ACPI battery polling across nodes, with the real channel's
  quantization and refresh-lag error.
* :mod:`repro.powerpack.baytech` — the Baytech power-strip channel:
  per-outlet power polling on a 1-minute cadence plus remote outlet
  control, used as the redundant cross-check.
* :mod:`repro.powerpack.collector` — multi-node collection, filtering
  and alignment of measurement series into per-run energy reports.
* :mod:`repro.powerpack.profiles` — power/performance profile objects.
"""

from repro.powerpack.api import psetcpuspeed, set_cpuspeed
from repro.powerpack.acpi import AcpiCoordinator, BatterySample
from repro.powerpack.baytech import BaytechStrip, OutletSample
from repro.powerpack.collector import DataCollector, EnergyReport, NodeEnergy
from repro.powerpack.profiles import PowerProfile, PowerSample
from repro.powerpack.analysis import (
    Series,
    align,
    energy_from_series,
    moving_average,
    resample,
    total_power_series,
)

__all__ = [
    "AcpiCoordinator",
    "BatterySample",
    "BaytechStrip",
    "DataCollector",
    "EnergyReport",
    "NodeEnergy",
    "OutletSample",
    "PowerProfile",
    "PowerSample",
    "Series",
    "align",
    "energy_from_series",
    "moving_average",
    "resample",
    "total_power_series",
    "psetcpuspeed",
    "set_cpuspeed",
]
