"""libbattery.a analogue — coordinated ACPI polling across nodes.

The coordinator runs one polling process that samples every node's
ACPI battery on a fixed cadence, timestamping samples so per-node
series can be aligned later (the paper's "low-overhead
timestamp-driven coordination").  Energy over a window is computed the
way the paper does: the difference in reported remaining capacity
between run start and run end — including the channel's quantization
and refresh-lag error, which is why short runs need iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.battery import MWH_TO_JOULES
from repro.hardware.cluster import Cluster

__all__ = ["BatterySample", "AcpiCoordinator"]


@dataclass(frozen=True)
class BatterySample:
    """One polled battery reading."""

    time_s: float
    node_id: int
    remaining_mwh: float


class AcpiCoordinator:
    """Polls all participating batteries and reconstructs energy."""

    def __init__(
        self,
        cluster: Cluster,
        node_ids: Optional[Sequence[int]] = None,
        poll_interval_s: float = 5.0,
        injector: Any = None,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.node_ids = list(node_ids) if node_ids is not None else list(range(len(cluster)))
        for nid in self.node_ids:
            if cluster[nid].battery is None:
                raise ValueError(f"node {nid} has no battery to poll")
        self.poll_interval_s = poll_interval_s
        #: optional fault source: polls may drop, readings may be noisy.
        self.injector = injector
        self.samples: list[BatterySample] = []
        self.dropped_samples = 0
        self._proc: Optional[Process] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("coordinator already running")
        self._poll_once()
        self._proc = self.env.process(self._poll_loop(), name="acpi-coordinator")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._poll_once()
        self._proc = None

    def _poll_once(self) -> None:
        now = self.env.now
        injector = self.injector
        for nid in self.node_ids:
            if injector is not None and injector.sensor_dropout(nid):
                self.dropped_samples += 1
                continue
            reading = self.cluster[nid].battery.read_remaining_mwh()
            if injector is not None:
                noise = injector.sensor_noise_mwh(nid)
                if noise != 0.0:
                    reading += noise
            self.samples.append(BatterySample(now, nid, reading))

    def _poll_loop(self):
        try:
            while True:
                yield self.env.timeout(self.poll_interval_s)
                self._poll_once()
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def node_series(self, node_id: int) -> list[BatterySample]:
        return [s for s in self.samples if s.node_id == node_id]

    def energy_j(
        self, node_id: int, t_begin: float, t_end: float
    ) -> float:
        """ACPI-channel energy for one node over ``[t_begin, t_end]``.

        Uses the last sample at/before each endpoint (what a user
        reading the battery around a run observes).
        """
        series = self.node_series(node_id)
        if not series:
            raise ValueError(f"no samples for node {node_id}")

        def reading_at(t: float) -> float:
            best = None
            for s in series:
                if s.time_s <= t + 1e-12:
                    best = s
                else:
                    break
            if best is None:
                best = series[0]
            return best.remaining_mwh

        consumed_mwh = reading_at(t_begin) - reading_at(t_end)
        return consumed_mwh * MWH_TO_JOULES

    def total_energy_j(self, t_begin: float, t_end: float) -> float:
        """ACPI-channel cluster energy over a window."""
        return sum(self.energy_j(nid, t_begin, t_end) for nid in self.node_ids)
