"""Measurement-series analysis: filtering and alignment (Section 4.3).

"Lastly, we created software to filter and align data sets from
individual nodes for use in power and performance analysis and
optimization."  These are those utilities: resampling irregular
per-node series onto a common timebase, simple smoothing, cluster-wide
aggregation and energy-delay scatter extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Series",
    "resample",
    "align",
    "moving_average",
    "total_power_series",
    "energy_from_series",
]


@dataclass(frozen=True)
class Series:
    """A timestamped scalar series from one node/channel."""

    times: np.ndarray
    values: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        v = np.asarray(self.values, dtype=float)
        if t.shape != v.shape or t.ndim != 1:
            raise ValueError("times and values must be 1-D and equal length")
        if t.size >= 2 and np.any(np.diff(t) < 0):
            raise ValueError("times must be non-decreasing")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "values", v)

    def __len__(self) -> int:
        return int(self.times.size)

    @classmethod
    def from_samples(cls, samples: Iterable[tuple[float, float]], label: str = "") -> "Series":
        pairs = sorted(samples)
        if not pairs:
            raise ValueError("empty series")
        t, v = zip(*pairs)
        return cls(np.array(t), np.array(v), label)


def resample(series: Series, grid: np.ndarray) -> Series:
    """Sample-and-hold resampling onto ``grid``.

    Power readings are step signals (the sensor reports the last
    observation), so zero-order hold is the faithful interpolation —
    linear interpolation would invent power levels that never occurred.
    """
    if len(series) == 0:
        raise ValueError("cannot resample an empty series")
    grid = np.asarray(grid, dtype=float)
    idx = np.searchsorted(series.times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(series) - 1)
    return Series(grid, series.values[idx], series.label)


def align(series_list: Sequence[Series], step_s: float) -> list[Series]:
    """Resample many node series onto one shared grid.

    The grid spans the *intersection* of the series' time ranges (the
    window where every node has data), at ``step_s`` resolution.
    """
    if not series_list:
        raise ValueError("nothing to align")
    if step_s <= 0:
        raise ValueError("step must be positive")
    t0 = max(s.times[0] for s in series_list)
    t1 = min(s.times[-1] for s in series_list)
    if t1 < t0:
        raise ValueError("series do not overlap in time")
    n = max(2, int(np.floor((t1 - t0) / step_s)) + 1)
    grid = t0 + step_s * np.arange(n)
    grid = grid[grid <= t1 + 1e-12]
    # Per-node series from one collector share a sampling clock, so
    # group by identical timebase: one searchsorted serves the whole
    # group, and the values gather as a single 2-D fancy index.  The
    # result is element-identical to resampling each series alone.
    out: list[Series | None] = [None] * len(series_list)
    groups: dict[tuple, list[int]] = {}
    for i, s in enumerate(series_list):
        if len(s) == 0:
            raise ValueError("cannot resample an empty series")
        key = (s.times.shape, s.times.tobytes())
        groups.setdefault(key, []).append(i)
    for members in groups.values():
        times = series_list[members[0]].times
        idx = np.searchsorted(times, grid, side="right") - 1
        idx = np.clip(idx, 0, times.size - 1)
        values = np.stack([series_list[i].values for i in members])[:, idx]
        for row, i in enumerate(members):
            out[i] = Series(grid, values[row], series_list[i].label)
    return out  # type: ignore[return-value]


def moving_average(series: Series, window: int) -> Series:
    """Centered moving-average smoothing (window clipped at the edges)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or len(series) <= 1:
        return series
    kernel = np.ones(min(window, len(series)))
    smoothed = np.convolve(series.values, kernel / kernel.size, mode="same")
    # fix edge bias: renormalize by the actual number of samples used
    counts = np.convolve(np.ones_like(series.values), kernel, mode="same")
    smoothed = smoothed * kernel.size / counts
    return Series(series.times, smoothed, series.label)


def total_power_series(aligned: Sequence[Series]) -> Series:
    """Cluster-wide power: element-wise sum of aligned node series."""
    if not aligned:
        raise ValueError("nothing to sum")
    base = aligned[0].times
    if any(s.times.shape != base.shape for s in aligned[1:]):
        raise ValueError("series are not aligned; call align() first")
    times2d = np.stack([s.times for s in aligned])
    if not np.allclose(times2d, base):
        raise ValueError("series are not aligned; call align() first")
    total = np.sum([s.values for s in aligned], axis=0)
    return Series(base, total, "cluster")


def energy_from_series(series: Series) -> float:
    """Energy (J) of a power series, zero-order-hold integrated."""
    if len(series) < 2:
        return 0.0
    dt = np.diff(series.times)
    return float(np.sum(series.values[:-1] * dt))
