"""PowerPack DVS control API (paper Figures 3/10/13).

``set_cpuspeed`` is the application-level call the INTERNAL strategy
inserts into source (rank programs reach it more conveniently through
:meth:`repro.mpi.communicator.RankContext.set_cpuspeed`, which adds
tracing).  ``psetcpuspeed`` is the cluster-wide command-line setting
used by the EXTERNAL strategy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.hardware.node import Node

__all__ = ["set_cpuspeed", "psetcpuspeed"]


def set_cpuspeed(node: Node, mhz: float) -> float:
    """Set one node's operating point (CPUFreq actuation path).

    Returns the frequency actually in effect (MHz).
    """
    node.cpu.set_speed_mhz(mhz)
    return node.cpu.frequency_mhz


def psetcpuspeed(
    cluster: Cluster, mhz: float, node_ids: Optional[Sequence[int]] = None
) -> None:
    """Set a static frequency on many nodes (``psetcpuspeed 600``)."""
    ids = range(len(cluster)) if node_ids is None else node_ids
    for nid in ids:
        cluster[nid].cpu.set_speed_mhz(mhz)
