"""Baytech power-strip channel (paper Section 4.2, second technique).

Remote management hardware polls per-outlet power once per minute over
SNMP and can switch outlets (the paper uses it to disconnect wall power
before battery measurements).  The model samples each node's true
instantaneous power on the same slow cadence; energy estimates
integrate those sparse samples (trapezoid), which is why the paper
treats this channel as redundancy rather than the primary measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster

__all__ = ["OutletSample", "BaytechStrip"]


@dataclass(frozen=True)
class OutletSample:
    """One SNMP power report for an outlet."""

    time_s: float
    outlet: int
    power_w: float


class BaytechStrip:
    """A managed power strip with one outlet per participating node."""

    def __init__(
        self,
        cluster: Cluster,
        node_ids: Optional[Sequence[int]] = None,
        poll_interval_s: float = 60.0,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.node_ids = list(node_ids) if node_ids is not None else list(range(len(cluster)))
        self.poll_interval_s = poll_interval_s
        self.samples: list[OutletSample] = []
        self._outlet_on = {nid: True for nid in self.node_ids}
        self._proc: Optional[Process] = None

    # ------------------------------------------------------------------
    # outlet control (used to force battery operation before runs)
    # ------------------------------------------------------------------
    def outlet_is_on(self, node_id: int) -> bool:
        return self._outlet_on[node_id]

    def disconnect_all(self) -> None:
        """Drop wall power so nodes run from battery (paper step 2)."""
        for nid in self._outlet_on:
            self._outlet_on[nid] = False

    def reconnect_all(self) -> None:
        for nid in self._outlet_on:
            self._outlet_on[nid] = True

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("strip already polling")
        self._poll_once()
        self._proc = self.env.process(self._poll_loop(), name="baytech")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._poll_once()
        self._proc = None

    def _poll_once(self) -> None:
        now = self.env.now
        for nid in self.node_ids:
            self.samples.append(OutletSample(now, nid, self.cluster[nid].power_w()))

    def _poll_loop(self):
        try:
            while True:
                yield self.env.timeout(self.poll_interval_s)
                self._poll_once()
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def outlet_series(self, node_id: int) -> list[OutletSample]:
        return [s for s in self.samples if s.outlet == node_id]

    def energy_j(self, node_id: int, t_begin: float, t_end: float) -> float:
        """Trapezoid-integrated energy estimate for one outlet."""
        series = [
            s for s in self.outlet_series(node_id) if t_begin - 1e-9 <= s.time_s <= t_end + 1e-9
        ]
        if len(series) < 2:
            # Too few samples inside the window (short run): fall back
            # to the nearest reading times the window length.
            all_series = self.outlet_series(node_id)
            if not all_series:
                raise ValueError(f"no samples for outlet {node_id}")
            nearest = min(
                all_series, key=lambda s: min(abs(s.time_s - t_begin), abs(s.time_s - t_end))
            )
            return nearest.power_w * (t_end - t_begin)
        energy = 0.0
        for a, b in zip(series, series[1:]):
            energy += 0.5 * (a.power_w + b.power_w) * (b.time_s - a.time_s)
        return energy

    def total_energy_j(self, t_begin: float, t_end: float) -> float:
        return sum(self.energy_j(nid, t_begin, t_end) for nid in self.node_ids)
