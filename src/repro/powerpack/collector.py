"""Data collection and alignment (paper Section 4.3, last paragraph).

The collector owns all measurement channels for a run — exact meters,
the ACPI coordinator and the Baytech strip — starts and stops them
around a job window, and merges their outputs into one per-node
:class:`EnergyReport`, the aligned data set the paper's analysis
software produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.powerpack.acpi import AcpiCoordinator
from repro.powerpack.baytech import BaytechStrip

__all__ = ["NodeEnergy", "EnergyReport", "DataCollector"]


@dataclass(frozen=True)
class NodeEnergy:
    """Energy of one node over a run window, per channel (joules)."""

    node_id: int
    exact_j: float
    acpi_j: Optional[float]
    baytech_j: Optional[float]
    #: ACPI series was unusable (sensor dropout) and ``acpi_j`` was
    #: filled from the Baytech channel instead.
    acpi_fallback: bool = False


@dataclass(frozen=True)
class EnergyReport:
    """Aligned multi-channel energy for one run."""

    t_begin: float
    t_end: float
    nodes: tuple[NodeEnergy, ...]

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_begin

    @property
    def total_exact_j(self) -> float:
        return sum(n.exact_j for n in self.nodes)

    @property
    def total_acpi_j(self) -> Optional[float]:
        vals = [n.acpi_j for n in self.nodes]
        return None if any(v is None for v in vals) else sum(vals)

    @property
    def total_baytech_j(self) -> Optional[float]:
        vals = [n.baytech_j for n in self.nodes]
        return None if any(v is None for v in vals) else sum(vals)

    @property
    def fallback_nodes(self) -> tuple[int, ...]:
        """Nodes whose ACPI value came from the Baytech fallback."""
        return tuple(n.node_id for n in self.nodes if n.acpi_fallback)

    def cross_check_error(self) -> Optional[float]:
        """Relative ACPI-vs-exact disagreement (the paper's redundancy
        check between its two direct-measurement channels)."""
        acpi = self.total_acpi_j
        exact = self.total_exact_j
        if acpi is None or exact <= 0:
            return None
        return abs(acpi - exact) / exact


class DataCollector:
    """Start/stop measurement channels around a job and report energy."""

    def __init__(
        self,
        cluster: Cluster,
        node_ids: Optional[Sequence[int]] = None,
        with_acpi: bool = True,
        with_baytech: bool = True,
        acpi_poll_s: float = 5.0,
        baytech_poll_s: float = 60.0,
        injector: Any = None,
    ) -> None:
        self.cluster = cluster
        self.node_ids = list(node_ids) if node_ids is not None else list(range(len(cluster)))
        self.injector = injector
        self.acpi = (
            AcpiCoordinator(cluster, self.node_ids, acpi_poll_s, injector=injector)
            if with_acpi and all(cluster[n].battery is not None for n in self.node_ids)
            else None
        )
        self.baytech = (
            BaytechStrip(cluster, self.node_ids, baytech_poll_s)
            if with_baytech
            else None
        )
        self._t_begin: Optional[float] = None
        self._begin_exact: dict[int, float] = {}

    def begin(self) -> None:
        """Snapshot exact meters and start the sampled channels."""
        self._t_begin = self.cluster.env.now
        self._begin_exact = {
            nid: self.cluster[nid].energy_j() for nid in self.node_ids
        }
        if self.acpi is not None:
            self.acpi.start()
        if self.baytech is not None:
            self.baytech.start()

    def end(self) -> EnergyReport:
        """Stop channels and produce the aligned report."""
        if self._t_begin is None:
            raise RuntimeError("collector.begin() was never called")
        t_end = self.cluster.env.now
        if self.acpi is not None:
            self.acpi.stop()
        if self.baytech is not None:
            self.baytech.stop()
        nodes = []
        for nid in self.node_ids:
            exact = self.cluster[nid].energy_j() - self._begin_exact[nid]
            acpi: Optional[float] = None
            fallback = False
            if self.acpi is not None:
                try:
                    acpi = self.acpi.energy_j(nid, self._t_begin, t_end)
                except ValueError:
                    # Sensor dropout ate the whole series: fall back to
                    # the redundant Baytech channel (below) so the run
                    # still reports finite per-node energy.
                    fallback = True
            baytech = (
                self.baytech.energy_j(nid, self._t_begin, t_end)
                if self.baytech is not None
                else None
            )
            if fallback:
                acpi = baytech
                if self.injector is not None:
                    self.injector.log.acpi_fallbacks += 1
            nodes.append(NodeEnergy(nid, exact, acpi, baytech, acpi_fallback=fallback))
        return EnergyReport(self._t_begin, t_end, tuple(nodes))
