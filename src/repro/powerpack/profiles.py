"""Power/performance profiles.

A :class:`PowerProfile` is a regular-cadence sampling of node power —
the data product PowerPack's collection software filters and aligns for
analysis.  It powers the Figure 1-style component breakdowns and is
handy for inspecting scheduler behaviour over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sim.engine import Environment
from repro.sim.events import Interrupt
from repro.sim.process import Process
from repro.hardware.cluster import Cluster

__all__ = ["PowerSample", "PowerProfile"]


@dataclass(frozen=True)
class PowerSample:
    """One instantaneous multi-component power observation."""

    time_s: float
    node_id: int
    cpu_w: float
    memory_w: float
    nic_w: float
    disk_w: float
    board_w: float
    frequency_mhz: float

    @property
    def total_w(self) -> float:
        return self.cpu_w + self.memory_w + self.nic_w + self.disk_w + self.board_w


class PowerProfile:
    """Samples component power on every node at a fixed cadence."""

    def __init__(
        self,
        cluster: Cluster,
        node_ids: Optional[Sequence[int]] = None,
        interval_s: float = 0.1,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.node_ids = list(node_ids) if node_ids is not None else list(range(len(cluster)))
        self.interval_s = interval_s
        self.samples: list[PowerSample] = []
        self._proc: Optional[Process] = None

    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("profile already sampling")
        self._sample_once()
        self._proc = self.env.process(self._loop(), name="power-profile")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def _sample_once(self) -> None:
        now = self.env.now
        for nid in self.node_ids:
            node = self.cluster[nid]
            b = node.breakdown()
            self.samples.append(
                PowerSample(
                    now,
                    nid,
                    b.cpu_w,
                    b.memory_w,
                    b.nic_w,
                    b.disk_w,
                    b.board_w,
                    node.cpu.frequency_mhz,
                )
            )

    def _loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval_s)
                self._sample_once()
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def node_series(self, node_id: int) -> list[PowerSample]:
        return [s for s in self.samples if s.node_id == node_id]

    def mean_breakdown(self, node_id: int) -> dict[str, float]:
        """Time-averaged component watts for one node."""
        series = self.node_series(node_id)
        if not series:
            raise ValueError(f"no samples for node {node_id}")
        arr = np.array(
            [[s.cpu_w, s.memory_w, s.nic_w, s.disk_w, s.board_w] for s in series]
        )
        mean = arr.mean(axis=0)
        return dict(zip(("cpu", "memory", "nic", "disk", "board"), mean.tolist()))

    def mean_fractions(self, node_id: int) -> dict[str, float]:
        """Time-averaged component shares of node power (Figure 1)."""
        mean = self.mean_breakdown(node_id)
        total = sum(mean.values())
        return {k: v / total for k, v in mean.items()}
