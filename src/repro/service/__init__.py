"""Schedule advice as a service (the "millions of users" direction).

The library answers "which gear schedule meets the performance
constraint at least energy?" one call at a time; this package serves
that answer to concurrent tenants over a line-delimited JSON protocol,
turning concurrency into shared work: admission batching coalesces a
window of compatible queries into one batched-tier grid, every fill
lands in a shared warmed sharded measurement cache, and per-tenant
quotas plus a bounded admission queue shed overload with structured
retry hints.  Answers are pinned bit-identical to serial library
calls.  See ``docs/service.md``.
"""

from repro.service.batcher import AdmissionBatcher, BatcherStats, OverloadedError
from repro.service.client import InProcessClient, ServiceClient, ServiceError
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEGRADED,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_QUOTA,
    AdviseQuery,
    BadRequest,
    SweepQuery,
    advice_to_dict,
    decode_line,
    encode_line,
    sweep_to_payload,
)
from repro.service.quotas import QuotaDenied, QuotaGate, TenantQuota
from repro.service.server import AdvisorService, ServiceConfig, run_server

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_DEGRADED",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_QUOTA",
    "AdmissionBatcher",
    "AdviseQuery",
    "AdvisorService",
    "BadRequest",
    "BatcherStats",
    "InProcessClient",
    "OverloadedError",
    "QuotaDenied",
    "QuotaGate",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepQuery",
    "TenantQuota",
    "advice_to_dict",
    "decode_line",
    "encode_line",
    "run_server",
    "sweep_to_payload",
]
