"""Admission batching: coalesce concurrent queries into shared grids.

The service's unit of useful work is a *grid* — one
``ParallelRunner.map_sweep`` submission evaluating many points of one
workload together on the batched straightline tiers.  Arriving
requests are therefore not executed one by one: they are admitted into
the current *batching window*, grouped by a caller-supplied group key
(same workload / cluster config / seed), deduplicated per point key,
and when the window closes every group runs as one grid with the
per-point results fanned back to every waiter.

Three control surfaces:

* ``window_s`` — how long the first admitted point holds the window
  open for companions (the batching latency floor under light load);
* ``max_batch`` — a full window flushes early, bounding latency under
  heavy load;
* ``max_queue`` — the admission bound.  A submit beyond it raises
  :class:`OverloadedError` *immediately* with a retry hint — the
  service sheds load with a structured response instead of buffering
  without bound.

Timer scheduling is injectable (``schedule=``), so tests drive the
window deterministically with a fake clock instead of sleeping.
A failing grid fans its error to exactly its own waiters; other
groups in the same window are unaffected.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

__all__ = ["AdmissionBatcher", "BatcherStats", "OverloadedError"]

#: ``run_grid`` callback: ``(group_key, {point_key: payload})`` to
#: ``{point_key: result}``.
GridRunner = Callable[[str, dict[str, Any]], Awaitable[dict[str, Any]]]


class OverloadedError(Exception):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, queued: int, retry_after_s: float) -> None:
        self.queued = queued
        self.retry_after_s = retry_after_s
        super().__init__(
            f"admission queue full ({queued} points queued)"
        )


@dataclass
class BatcherStats:
    """Coalescing telemetry (the ``stats`` op reports these)."""

    points_submitted: int = 0
    #: waiters attached to a point another request already queued —
    #: each one is a simulation the service did not run twice.
    waiters_coalesced: int = 0
    windows_flushed: int = 0
    grids_run: int = 0
    overloads: int = 0
    peak_queue: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "points_submitted": self.points_submitted,
            "waiters_coalesced": self.waiters_coalesced,
            "windows_flushed": self.windows_flushed,
            "grids_run": self.grids_run,
            "overloads": self.overloads,
            "peak_queue": self.peak_queue,
        }


@dataclass
class _Point:
    payload: Any
    waiters: list[asyncio.Future] = field(default_factory=list)


class AdmissionBatcher:
    def __init__(
        self,
        run_grid: GridRunner,
        window_s: float = 0.005,
        max_batch: int = 256,
        max_queue: int = 4096,
        schedule: Optional[Callable[[float, Callable[[], None]], Any]] = None,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1 or max_queue < 1:
            raise ValueError("max_batch and max_queue must be >= 1")
        self._run_grid = run_grid
        self.window_s = window_s
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._schedule = schedule
        self.stats = BatcherStats()
        self._pending: dict[str, dict[str, _Point]] = {}
        self._queued = 0
        self._timer: Any = None
        self._drains: set[asyncio.Task] = set()

    @property
    def queued(self) -> int:
        """Points admitted and waiting for their window to flush."""
        return self._queued

    def submit(
        self, group_key: str, point_key: str, payload: Any
    ) -> "asyncio.Future[Any]":
        """Admit one point; the future resolves to its grid result.

        A point already queued under the same keys gains a waiter
        instead of a duplicate simulation.  Raises
        :class:`OverloadedError` when the admission queue is full.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = self._pending.get(group_key)
        point = group.get(point_key) if group is not None else None
        if point is not None:
            self.stats.waiters_coalesced += 1
            point.waiters.append(future)
            return future
        if self._queued >= self.max_queue:
            self.stats.overloads += 1
            raise OverloadedError(
                self._queued, retry_after_s=max(self.window_s, 1e-3)
            )
        if group is None:
            group = self._pending[group_key] = {}
        group[point_key] = _Point(payload, [future])
        self._queued += 1
        self.stats.points_submitted += 1
        self.stats.peak_queue = max(self.stats.peak_queue, self._queued)
        if self._queued >= self.max_batch:
            self._flush_now(loop)
        elif self._timer is None:
            schedule = self._schedule or (
                lambda delay, cb: loop.call_later(delay, cb)
            )
            self._timer = schedule(self.window_s, self._on_window_closed)
        return future

    # -- window lifecycle ----------------------------------------------
    def _on_window_closed(self) -> None:
        """Timer callback: the batching window elapsed."""
        self._timer = None
        self._flush_now(asyncio.get_event_loop())

    def _flush_now(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        task = loop.create_task(self._drain())
        self._drains.add(task)
        task.add_done_callback(self._drains.discard)

    async def flush(self) -> None:
        """Drain everything queued right now (tests and shutdown)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        await self._drain()
        # Grids queued by a concurrent window close finish too.
        while self._drains:
            await asyncio.gather(*list(self._drains), return_exceptions=True)

    async def _drain(self) -> None:
        batch, self._pending = self._pending, {}
        self._queued = 0
        if not batch:
            return
        self.stats.windows_flushed += 1
        await asyncio.gather(
            *(self._run_one(gk, points) for gk, points in batch.items())
        )

    async def _run_one(self, group_key: str, points: dict[str, _Point]) -> None:
        self.stats.grids_run += 1
        try:
            results = await self._run_grid(
                group_key, {pk: p.payload for pk, p in points.items()}
            )
        except Exception as exc:
            # The failure belongs to exactly this grid's waiters; other
            # groups of the window already run independently.
            for point in points.values():
                for waiter in point.waiters:
                    if not waiter.done():
                        waiter.set_exception(exc)
            return
        for point_key, point in points.items():
            for waiter in point.waiters:
                if waiter.done():  # client gave up / disconnected
                    continue
                if point_key in results:
                    waiter.set_result(results[point_key])
                else:  # pragma: no cover - grid contract violation
                    waiter.set_exception(
                        RuntimeError(f"grid returned no result for {point_key}")
                    )
