"""Clients for the schedule-advisor service.

Two transports with one call surface:

* :class:`ServiceClient` — a TCP client speaking the line-delimited
  JSON protocol.  Requests may be pipelined from concurrent
  coroutines; a single reader task correlates responses by ``id``.
* :class:`InProcessClient` — the same surface bound directly to an
  :class:`~repro.service.server.AdvisorService` in this process (no
  sockets).  The whole pipeline — quotas, admission batching, grid
  execution — still runs, which is what lets the load generator drive
  10k+ concurrent simulated clients without 10k file descriptors.

Both return the raw response object; :meth:`ServiceError.check` turns
an error response into a typed exception for callers that prefer
raising.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Mapping, Optional

from repro.service.protocol import decode_line, encode_line

__all__ = ["InProcessClient", "ServiceClient", "ServiceError", "check"]


class ServiceError(Exception):
    """An error response, as an exception (code + retry hint)."""

    def __init__(self, error: Mapping[str, Any]) -> None:
        self.code = error.get("code", "unknown")
        self.retry_after_s = error.get("retry_after_s")
        super().__init__(f"{self.code}: {error.get('message', '')}")


def check(response: Mapping[str, Any]) -> dict[str, Any]:
    """The ``result`` of an ok response; raises :class:`ServiceError`."""
    if not response.get("ok"):
        raise ServiceError(response.get("error") or {})
    return response["result"]


class _RequestSurface:
    """Shared convenience methods over ``request``."""

    async def request(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        tenant: Optional[str] = None,
    ) -> dict[str, Any]:
        raise NotImplementedError

    async def ping(self) -> dict[str, Any]:
        return check(await self.request("ping"))

    async def stats(self) -> dict[str, Any]:
        return check(await self.request("stats"))

    async def advise(
        self, tenant: Optional[str] = None, **params: Any
    ) -> dict[str, Any]:
        return check(await self.request("advise", params, tenant=tenant))

    async def sweep(
        self, tenant: Optional[str] = None, **params: Any
    ) -> dict[str, Any]:
        return check(await self.request("sweep", params, tenant=tenant))


class InProcessClient(_RequestSurface):
    """Drive a service object directly (tests, the load generator)."""

    def __init__(self, service: Any, tenant: Optional[str] = None) -> None:
        self._service = service
        self._tenant = tenant
        self._ids = itertools.count(1)

    async def request(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        tenant: Optional[str] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"id": next(self._ids), "op": op}
        if params:
            payload["params"] = dict(params)
        if tenant or self._tenant:
            payload["tenant"] = tenant or self._tenant
        return await self._service.handle_request(payload)


class ServiceClient(_RequestSurface):
    """TCP client; use :meth:`connect`, pipeline freely, then ``close``."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        tenant: Optional[str] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._tenant = tenant
        self._ids = itertools.count(1)
        self._pending: dict[Any, asyncio.Future] = {}
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, tenant: Optional[str] = None
    ) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, tenant=tenant)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_line(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except Exception as exc:  # pragma: no cover - transport failure
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(exc)
            self._pending.clear()
            return
        # Orderly EOF: fail anything still outstanding.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionError("server closed connection"))
        self._pending.clear()

    async def request(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        tenant: Optional[str] = None,
    ) -> dict[str, Any]:
        request_id = next(self._ids)
        payload: dict[str, Any] = {"id": request_id, "op": op}
        if params:
            payload["params"] = dict(params)
        if tenant or self._tenant:
            payload["tenant"] = tenant or self._tenant
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_line(payload))
        await self._writer.drain()
        return await future

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - peer already gone
            pass
        await self._reader_task
