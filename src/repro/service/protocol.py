"""Wire protocol of the schedule-advisor service.

Line-delimited JSON over a byte stream: every request and every
response is one JSON object on one ``\\n``-terminated line.  Requests
carry a caller-chosen ``id`` that the matching response echoes, so a
client may pipeline; responses can arrive in completion order.

Request shape::

    {"id": 7, "op": "advise", "tenant": "alice",
     "params": {"workload": "FT", "klass": "T", "nprocs": 4,
                "metric": "ED3P", "seed": 0}}

``op`` is one of:

``advise``
    The paper's core question — "which gear schedule meets the
    performance constraint at least energy?" — answered exactly as the
    library's :class:`~repro.core.advisor.ScheduleAdvisor` does.
``sweep``
    A static-frequency sweep of one workload (Table 2 columns);
    ``params["frequencies_mhz"]`` may select a subset of points.
``ping`` / ``stats``
    Liveness and service telemetry; never quota-charged.

Successful responses are ``{"id": ..., "ok": true, "op": ...,
"result": {...}}``; failures are ``{"id": ..., "ok": false, "error":
{"code": ..., "message": ..., "retry_after_s": ...}}`` where ``code``
is one of :data:`ERR_BAD_REQUEST`, :data:`ERR_QUOTA`,
:data:`ERR_OVERLOADED`, :data:`ERR_DEGRADED` or :data:`ERR_INTERNAL`.
``retry_after_s`` is only present on the backpressure codes — an
overloaded service sheds load with a structured retry hint instead of
buffering without bound.

Floats survive the JSON round-trip exactly (``json`` emits the
shortest ``repr`` that parses back to the same double), which is what
lets the differential tests pin service answers bit-for-bit against
library calls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.core.advisor import Advice
from repro.core.metrics import ED2P, ED3P, EDP, FusedMetric
from repro.experiments.runner import SweepResult
from repro.experiments.store import measurement_to_dict, sweep_to_dict
from repro.workloads import Workload, get_workload

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_DEGRADED",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_QUOTA",
    "OPS",
    "AdviseQuery",
    "BadRequest",
    "SweepQuery",
    "advice_to_dict",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
    "resolve_metric",
    "sweep_to_payload",
]

ERR_BAD_REQUEST = "bad_request"
ERR_QUOTA = "quota"
ERR_OVERLOADED = "overloaded"
ERR_DEGRADED = "degraded"
ERR_INTERNAL = "internal"

OPS = ("advise", "sweep", "ping", "stats")

_METRICS = {m.name: m for m in (EDP, ED2P, ED3P)}


class BadRequest(ValueError):
    """A request the service cannot interpret (client error)."""


def encode_line(payload: Mapping[str, Any]) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise BadRequest(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise BadRequest("request must be a JSON object")
    return obj


def ok_response(
    request_id: Any, op: str, result: Mapping[str, Any]
) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "op": op, "result": result}


def error_response(
    request_id: Any,
    code: str,
    message: str,
    retry_after_s: Optional[float] = None,
) -> dict[str, Any]:
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = retry_after_s
    return {"id": request_id, "ok": False, "error": error}


def resolve_metric(spec: Any) -> FusedMetric:
    """A :class:`FusedMetric` from its wire form.

    Accepts a registered name (``"ED3P"``), a bare delay weight
    (``2.5``) or ``None`` (the paper's default, ED3P).
    """
    if spec is None:
        return ED3P
    if isinstance(spec, str):
        try:
            return _METRICS[spec.upper()]
        except KeyError:
            raise BadRequest(
                f"unknown metric {spec!r}; known: {sorted(_METRICS)} "
                "or a numeric delay weight"
            ) from None
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        try:
            return FusedMetric(float(spec))
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
    raise BadRequest(f"metric must be a name or delay weight, got {spec!r}")


def _resolve_workload(code: Any, klass: Any, nprocs: Any) -> Workload:
    if not isinstance(code, str) or not code:
        raise BadRequest("params.workload must be a workload name")
    kwargs: dict[str, Any] = {}
    if klass is not None:
        kwargs["klass"] = klass
    if nprocs is not None:
        kwargs["nprocs"] = int(nprocs)
    try:
        return get_workload(code, **kwargs)
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequest(f"cannot build workload: {exc}") from None


def _frequencies(raw: Any) -> Optional[tuple[float, ...]]:
    if raw is None:
        return None
    if not isinstance(raw, (list, tuple)) or not raw:
        raise BadRequest("params.frequencies_mhz must be a non-empty list")
    try:
        freqs = tuple(float(f) for f in raw)
    except (TypeError, ValueError):
        raise BadRequest("params.frequencies_mhz must be numbers") from None
    if len(set(freqs)) != len(freqs):
        raise BadRequest("params.frequencies_mhz must not repeat points")
    return freqs


@dataclass(frozen=True)
class SweepQuery:
    """A validated ``sweep`` request, normalized for coalescing.

    Two queries with the same :meth:`group_key` target the same
    (workload, cluster, seed) grid and are admitted into one
    ``map_sweep`` submission; each frequency is one point
    (:meth:`point_keys`), so overlapping queries share fills and each
    waiter gets exactly its own points fanned back.
    """

    code: str
    klass: Optional[str]
    nprocs: Optional[int]
    seed: int
    frequencies_mhz: Optional[tuple[float, ...]]

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "SweepQuery":
        unknown = set(params) - {
            "workload", "klass", "nprocs", "seed", "frequencies_mhz"
        }
        if unknown:
            raise BadRequest(f"unknown sweep params: {sorted(unknown)}")
        query = cls(
            code=params.get("workload"),  # type: ignore[arg-type]
            klass=params.get("klass"),
            nprocs=params.get("nprocs"),
            seed=int(params.get("seed", 0)),
            frequencies_mhz=_frequencies(params.get("frequencies_mhz")),
        )
        query.workload()  # validate eagerly, before admission
        return query

    def workload(self) -> Workload:
        return _resolve_workload(self.code, self.klass, self.nprocs)

    def group_key(self) -> str:
        return json.dumps(
            ["sweep", self.code.upper(), self.klass, self.nprocs, self.seed],
            sort_keys=True,
        )

    def resolved_frequencies(self) -> tuple[float, ...]:
        if self.frequencies_mhz is not None:
            return self.frequencies_mhz
        from repro.hardware.opoints import PENTIUM_M_TABLE

        return tuple(PENTIUM_M_TABLE.frequencies_mhz())

    def point_keys(self) -> list[tuple[str, float]]:
        return [(repr(mhz), mhz) for mhz in self.resolved_frequencies()]


@dataclass(frozen=True)
class AdviseQuery:
    """A validated ``advise`` request.

    The full advisor run is one point (single-flight): concurrent
    identical queries share one computation, and different metrics
    over the same workload still share every sweep fill through the
    service's warmed measurement cache.
    """

    code: str
    klass: Optional[str]
    nprocs: Optional[int]
    seed: int
    metric_spec: Any
    frequencies_mhz: Optional[tuple[float, ...]]
    include_daemon: bool
    include_future_daemons: bool
    max_delay_increase: Optional[float]

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "AdviseQuery":
        unknown = set(params) - {
            "workload", "klass", "nprocs", "seed", "metric",
            "frequencies_mhz", "include_daemon", "include_future_daemons",
            "max_delay_increase",
        }
        if unknown:
            raise BadRequest(f"unknown advise params: {sorted(unknown)}")
        cap = params.get("max_delay_increase")
        query = cls(
            code=params.get("workload"),  # type: ignore[arg-type]
            klass=params.get("klass"),
            nprocs=params.get("nprocs"),
            seed=int(params.get("seed", 0)),
            metric_spec=params.get("metric"),
            frequencies_mhz=_frequencies(params.get("frequencies_mhz")),
            include_daemon=bool(params.get("include_daemon", True)),
            include_future_daemons=bool(
                params.get("include_future_daemons", False)
            ),
            max_delay_increase=None if cap is None else float(cap),
        )
        query.workload()
        query.metric()
        return query

    def workload(self) -> Workload:
        return _resolve_workload(self.code, self.klass, self.nprocs)

    def metric(self) -> FusedMetric:
        return resolve_metric(self.metric_spec)

    def group_key(self) -> str:
        return json.dumps(
            ["advise", self.code.upper(), self.klass, self.nprocs],
            sort_keys=True,
        )

    def point_key(self) -> str:
        return json.dumps(
            [
                self.seed,
                self.metric().name,
                self.frequencies_mhz,
                self.include_daemon,
                self.include_future_daemons,
                self.max_delay_increase,
            ],
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# result payloads
# ----------------------------------------------------------------------
def advice_to_dict(advice: Advice) -> dict[str, Any]:
    """Serializable form of an :class:`~repro.core.advisor.Advice`.

    Carries every field the library caller would read — the winner,
    the full ranking with normalized numbers and measurement
    summaries, and the rendered report — so a service answer can be
    compared field-for-field against a direct ``advise`` call.
    """
    candidates = [
        {
            "label": c.label,
            "strategy": c.strategy.describe(),
            "norm_delay": c.norm_delay,
            "norm_energy": c.norm_energy,
            "metric_value": c.metric_value,
            "measurement": measurement_to_dict(c.measurement),
        }
        for c in advice.candidates
    ]
    degraded = any(
        c.measurement.extras.get("faults") for c in advice.candidates
    )
    return {
        "workload": advice.workload,
        "metric": advice.metric,
        "max_delay_increase": advice.max_delay_increase,
        "best": candidates[0]["label"],
        "candidates": candidates,
        "rendered": advice.render(),
        "degraded": degraded,
    }


def sweep_to_payload(sweep: SweepResult) -> dict[str, Any]:
    """Serializable form of a sweep answer (raw + normalized points)."""
    payload = sweep_to_dict(sweep)
    payload["normalized"] = {
        str(mhz): list(point) for mhz, point in sweep.normalized.items()
    }
    payload["degraded"] = any(
        m.extras.get("faults") for m in sweep.raw.values()
    )
    return payload
