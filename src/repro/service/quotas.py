"""Per-tenant admission control: in-flight caps and a qps token bucket.

The service is multi-tenant over one simulator: a tenant replaying a
campaign must not be able to monopolize the admission queue against a
tenant asking a single question.  Two independent caps per tenant:

* **in-flight** — how many admitted requests may be awaiting results
  at once.  Hitting it denies admission immediately (the tenant
  already owns its fair share of the queue) with a retry hint.
* **qps** — a token bucket (``qps`` refill, ``burst`` capacity)
  smoothing sustained request rates.  Denials carry the exact time
  until the next token as ``retry_after_s``.

Both are enforced *before* the admission batcher sees the request, so
a saturating tenant is shed at the door and the shared queue bound
stays available to everyone else.  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["QuotaDenied", "QuotaGate", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits (one shared config; buckets are per tenant)."""

    #: Admitted-but-unanswered requests allowed per tenant; ``None``
    #: disables the cap.
    max_in_flight: Optional[int] = 64
    #: Sustained queries per second per tenant; ``None`` disables.
    qps: Optional[float] = None
    #: Token-bucket capacity — how many queries may burst at once.
    burst: int = 32
    #: Retry hint attached to in-flight denials (a slot frees when any
    #: outstanding answer lands, so there is no exact time to quote).
    inflight_retry_hint_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 (or None)")
        if self.qps is not None and self.qps <= 0:
            raise ValueError("qps must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class QuotaDenied(Exception):
    """Admission refused; carries the structured backpressure fields."""

    def __init__(self, tenant: str, reason: str, retry_after_s: float) -> None:
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(f"tenant {tenant!r} over {reason} quota")


@dataclass
class _TenantState:
    in_flight: int = 0
    tokens: float = 0.0
    refilled_at: float = 0.0
    admitted: int = 0
    denied: int = 0


@dataclass
class QuotaGate:
    """Tracks every tenant's in-flight count and token bucket."""

    quota: TenantQuota = field(default_factory=TenantQuota)
    clock: Callable[[], float] = time.monotonic
    _tenants: dict[str, _TenantState] = field(default_factory=dict)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState(
                tokens=float(self.quota.burst), refilled_at=self.clock()
            )
        return state

    def admit(self, tenant: str) -> None:
        """Charge one request to ``tenant`` or raise :class:`QuotaDenied`.

        On success the caller *must* pair it with :meth:`release` once
        the response is written (including error responses) — the
        in-flight count is the contract that a disconnected or failed
        request cannot leak capacity.
        """
        quota = self.quota
        state = self._state(tenant)
        if (
            quota.max_in_flight is not None
            and state.in_flight >= quota.max_in_flight
        ):
            state.denied += 1
            raise QuotaDenied(
                tenant, "in-flight", quota.inflight_retry_hint_s
            )
        if quota.qps is not None:
            now = self.clock()
            state.tokens = min(
                float(quota.burst),
                state.tokens + (now - state.refilled_at) * quota.qps,
            )
            state.refilled_at = now
            if state.tokens < 1.0:
                state.denied += 1
                raise QuotaDenied(
                    tenant, "rate", (1.0 - state.tokens) / quota.qps
                )
            state.tokens -= 1.0
        state.in_flight += 1
        state.admitted += 1

    def release(self, tenant: str) -> None:
        state = self._state(tenant)
        if state.in_flight <= 0:
            raise RuntimeError(f"release without admit for tenant {tenant!r}")
        state.in_flight -= 1

    def in_flight(self, tenant: str) -> int:
        return self._state(tenant).in_flight

    def snapshot(self) -> dict[str, Any]:
        return {
            tenant: {
                "in_flight": s.in_flight,
                "admitted": s.admitted,
                "denied": s.denied,
            }
            for tenant, s in sorted(self._tenants.items())
        }
