"""The schedule-advisor service: sweeps and advice as a shared server.

``AdvisorService`` turns the library's :class:`ScheduleAdvisor` and
frequency sweeps into a long-running, multi-tenant asyncio server
(stdlib only).  The paper's question — "which gear schedule meets the
performance constraint at least energy?" — becomes one line of JSON on
a socket, and concurrency becomes *shared work* instead of repeated
work:

1. every request passes the per-tenant :class:`QuotaGate` (in-flight
   and qps caps — structured denial, never unbounded buffering);
2. admitted queries enter the :class:`AdmissionBatcher`, which
   coalesces a window of requests for the same (workload, cluster,
   seed) into one ``map_sweep`` grid — the batched straightline tiers
   evaluate the whole grid together, and per-point results fan back to
   each waiter;
3. all fills land in one shared, warmed :class:`MeasurementCache`
   (sharded on-disk slots + the in-process hot LRU), so tenants warm
   the cache for each other and the keys are exactly the library's —
   a service deployment can point at a campaign's cache directory and
   vice versa.

Answers are **bit-identical to serial library calls** by construction:
the compute path *is* ``ScheduleAdvisor.advise`` /
``frequency_sweep``'s task grid, routed through a
:class:`ParallelRunner` whose tiers are pinned bit-for-bit against the
event engine.  The differential tests in ``tests/service`` hold the
service to that, field for field.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

from repro.core.advisor import ScheduleAdvisor
from repro.core.strategies import ExternalStrategy
from repro.experiments.parallel import (
    ParallelRunner,
    RunTask,
    TaskFailedError,
    use,
)
from repro.experiments.runner import SweepResult
from repro.experiments.store import MeasurementCache
from repro.faults.spec import FaultSpec
from repro.service.batcher import AdmissionBatcher, OverloadedError
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEGRADED,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_QUOTA,
    OPS,
    AdviseQuery,
    BadRequest,
    SweepQuery,
    advice_to_dict,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    sweep_to_payload,
)
from repro.service.quotas import QuotaDenied, QuotaGate, TenantQuota

__all__ = ["AdvisorService", "ServiceConfig", "run_server"]


@dataclasses.dataclass
class ServiceConfig:
    """Everything a deployment tunes, in one value-typed bundle."""

    host: str = "127.0.0.1"
    port: int = 8763
    #: How long the first query of a window waits for companions to
    #: coalesce with (the batching latency floor under light load).
    window_s: float = 0.005
    #: A window holding this many points flushes early.
    max_batch: int = 256
    #: Admission bound: queued points beyond this are shed with a
    #: structured ``overloaded`` response.
    max_queue: int = 4096
    #: Per-tenant caps (shared config; per-tenant buckets).
    quota: TenantQuota = dataclasses.field(default_factory=TenantQuota)
    #: Worker processes for the underlying :class:`ParallelRunner`.
    jobs: int = 1
    #: Measurement-cache root; ``None`` serves without a disk cache
    #: (the runner's in-process memo still shares fills).
    cache_dir: Union[str, Path, None] = None
    #: On-disk fan-out of the cache (2 = ``ab/cd/<key>.json``), chosen
    #: for service deployments where one directory holds millions of
    #: slots.  Reads remain compatible with flatter layouts.
    shard_depth: int = 2
    #: Preload the hot LRU from disk at startup.
    warm_cache: bool = True
    #: Optional fault environment every simulation runs under.
    faults: Optional[FaultSpec] = None
    #: Tenant charged when a request names none.
    default_tenant: str = "anon"


def _first_line(text: str) -> str:
    return text.splitlines()[0] if text else text


class AdvisorService:
    """Protocol-level service core, independent of any transport.

    ``handle_request`` implements the whole pipeline for one decoded
    request; the TCP layer (:meth:`start` / :meth:`serve_forever`) and
    the in-process client used by tests and the load generator both sit
    on top of it.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        runner: Optional[ParallelRunner] = None,
        schedule: Optional[Callable[[float, Callable[[], None]], Any]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config = config or ServiceConfig()
        if runner is not None:
            self.runner = runner
        else:
            cache = (
                MeasurementCache(
                    config.cache_dir, shard_depth=config.shard_depth
                )
                if config.cache_dir is not None
                else None
            )
            self.runner = ParallelRunner(
                jobs=config.jobs, cache_dir=cache, faults=config.faults
            )
        self.warmed = 0
        if config.warm_cache and self.runner.cache is not None:
            self.warmed = self.runner.cache.warm()
        quota_kwargs: dict[str, Any] = {"quota": config.quota}
        if clock is not None:
            quota_kwargs["clock"] = clock
        self.quotas = QuotaGate(**quota_kwargs)
        self.batcher = AdmissionBatcher(
            self._run_grid,
            window_s=config.window_s,
            max_batch=config.max_batch,
            max_queue=config.max_queue,
            schedule=schedule,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # request pipeline
    # ------------------------------------------------------------------
    async def handle_line(self, line: bytes) -> dict[str, Any]:
        try:
            obj = decode_line(line)
        except BadRequest as exc:
            return error_response(None, ERR_BAD_REQUEST, str(exc))
        return await self.handle_request(obj)

    async def handle_request(
        self, obj: Mapping[str, Any], tenant: Optional[str] = None
    ) -> dict[str, Any]:
        """One request object in, one response object out.

        Never raises: every failure mode maps to a structured error
        response, and an admitted request always releases its quota
        slot — a failing grid cannot leak capacity.
        """
        request_id = obj.get("id")
        op = obj.get("op")
        if op not in OPS:
            return error_response(
                request_id,
                ERR_BAD_REQUEST,
                f"op must be one of {list(OPS)}, got {op!r}",
            )
        if op == "ping":
            return ok_response(request_id, op, {"pong": True})
        if op == "stats":
            return ok_response(request_id, op, self.stats_payload())

        raw_tenant = obj.get("tenant")
        if raw_tenant is not None and not isinstance(raw_tenant, str):
            return error_response(
                request_id, ERR_BAD_REQUEST, "tenant must be a string"
            )
        tenant = raw_tenant or tenant or self.config.default_tenant
        params = obj.get("params") or {}
        if not isinstance(params, Mapping):
            return error_response(
                request_id, ERR_BAD_REQUEST, "params must be an object"
            )
        try:
            query: Union[AdviseQuery, SweepQuery] = (
                AdviseQuery.from_params(params)
                if op == "advise"
                else SweepQuery.from_params(params)
            )
        except BadRequest as exc:
            return error_response(request_id, ERR_BAD_REQUEST, str(exc))

        try:
            self.quotas.admit(tenant)
        except QuotaDenied as exc:
            return error_response(
                request_id,
                ERR_QUOTA,
                str(exc),
                retry_after_s=exc.retry_after_s,
            )
        try:
            if isinstance(query, AdviseQuery):
                result = await self.batcher.submit(
                    query.group_key(), query.point_key(), query
                )
            else:
                result = await self._submit_sweep(query)
        except OverloadedError as exc:
            return error_response(
                request_id,
                ERR_OVERLOADED,
                str(exc),
                retry_after_s=exc.retry_after_s,
            )
        except TaskFailedError as exc:
            # A worker exhausted its retries under this grid.  The
            # client gets the failing spec (first line; the worker
            # traceback stays server-side), other grids and windows
            # are untouched.
            return error_response(request_id, ERR_DEGRADED, _first_line(str(exc)))
        except Exception as exc:
            return error_response(
                request_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.quotas.release(tenant)
        return ok_response(request_id, op, result)

    async def _submit_sweep(self, query: SweepQuery) -> dict[str, Any]:
        """Admit one point per requested frequency, then fan back in."""
        group = query.group_key()
        futures: list[asyncio.Future] = []
        try:
            for point_key, mhz in query.point_keys():
                futures.append(
                    self.batcher.submit(group, point_key, (query, mhz))
                )
        except OverloadedError:
            # Points admitted before the bound hit still run (another
            # waiter may share them); this request stops waiting.
            for future in futures:
                future.cancel()
            raise
        measurements = await asyncio.gather(*futures)
        frequencies = query.resolved_frequencies()
        sweep = SweepResult(
            workload=measurements[0].workload,
            raw=dict(zip(frequencies, measurements)),
            baseline_mhz=float(max(frequencies)),
        )
        return sweep_to_payload(sweep)

    # ------------------------------------------------------------------
    # grid execution (the batcher's run_grid callback)
    # ------------------------------------------------------------------
    async def _run_grid(
        self, group_key: str, points: dict[str, Any]
    ) -> dict[str, Any]:
        if json.loads(group_key)[0] == "sweep":
            return await self._run_sweep_grid(points)
        return await self._run_advise_grid(points)

    async def _run_sweep_grid(
        self, points: dict[str, Any]
    ) -> dict[str, Any]:
        """One ``map_sweep`` grid for every coalesced frequency point.

        All tasks share a single workload instance so the runner's
        batch tier groups them into one vectorized evaluation.
        """
        queries = list(points.values())
        first: SweepQuery = queries[0][0]
        workload = first.workload()
        point_keys = list(points)
        tasks = [
            RunTask(workload, ExternalStrategy(mhz=points[pk][1]), first.seed)
            for pk in point_keys
        ]
        measurements = await self.runner.amap_sweep(tasks)
        return dict(zip(point_keys, measurements))

    async def _run_advise_grid(
        self, points: dict[str, Any]
    ) -> dict[str, Any]:
        """Advisor runs are single-flight per distinct query.

        Points of one group run back to back on the runner, so the
        sweeps and baselines behind different metrics/seeds of the
        same workload share fills through the memo and cache.
        """
        loop = asyncio.get_running_loop()
        results: dict[str, Any] = {}
        for point_key, query in points.items():
            results[point_key] = await loop.run_in_executor(
                None, self._advise_sync, query
            )
        return results

    def _advise_sync(self, query: AdviseQuery) -> dict[str, Any]:
        advisor = ScheduleAdvisor(
            metric=query.metric(),
            frequencies_mhz=query.frequencies_mhz,
            include_daemon=query.include_daemon,
            include_future_daemons=query.include_future_daemons,
            max_delay_increase=query.max_delay_increase,
            seed=query.seed,
        )
        # Serialized on the runner's submission lock: the advisor's
        # whole methodology (profile, sweep, candidate grid) routes
        # through this service's shared runner.
        with self.runner.submit_lock:
            with use(self.runner):
                advice = advisor.advise(query.workload())
        return advice_to_dict(advice)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict[str, Any]:
        cache = self.runner.cache
        return {
            "runner": dataclasses.asdict(self.runner.stats),
            "batcher": self.batcher.stats.as_dict(),
            "quotas": self.quotas.snapshot(),
            "cache": {
                "enabled": cache is not None,
                "hot_entries": cache.hot_size if cache is not None else 0,
                "shard_depth": cache.shard_depth if cache is not None else None,
                "warmed": self.warmed,
            },
        }

    # ------------------------------------------------------------------
    # TCP transport
    # ------------------------------------------------------------------
    async def start(self) -> asyncio.AbstractServer:
        """Bind and start serving; ``port=0`` picks a free port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        return self._server

    @property
    def bound_port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        server = await self.start()
        async with server:
            await server.serve_forever()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One task per request line; responses stream back by
        completion order, correlated by ``id`` (clients may pipeline)."""
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._connections.add(conn_task)
        write_lock = asyncio.Lock()
        in_flight: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._respond(line, writer, write_lock)
                )
                in_flight.add(task)
                task.add_done_callback(in_flight.discard)
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)
        except asyncio.CancelledError:
            # Reaped at shutdown: end normally — on 3.11 the stream
            # protocol's done-callback would re-raise a cancelled
            # handler's CancelledError into the loop's exception
            # handler.
            for task in in_flight:
                task.cancel()
        finally:
            if conn_task is not None:
                self._connections.discard(conn_task)
            writer.close()
            # CancelledError included: a handler reaped at shutdown
            # (``aclose`` or loop teardown) must not leave the close
            # waiter's exception unretrieved.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _respond(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self.handle_line(line)
        async with write_lock:
            try:
                writer.write(encode_line(response))
                await writer.drain()
            except (ConnectionError, RuntimeError):  # client went away
                pass

    async def aclose(self) -> None:
        """Flush pending windows, stop the TCP server, free the pool."""
        await self.batcher.flush()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.runner.close()


def run_server(config: Optional[ServiceConfig] = None) -> None:
    """Blocking entry point (the CLI's ``serve`` target)."""
    service = AdvisorService(config)
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        service.runner.close()
