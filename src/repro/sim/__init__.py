"""Discrete-event simulation engine.

A small, dependency-free, SimPy-flavoured discrete-event kernel.  All of
the hardware, network and MPI substrates in :mod:`repro` run on top of
this engine: processes are Python generators that ``yield`` events, the
:class:`~repro.sim.engine.Environment` advances virtual time from event
to event, and power meters integrate piecewise-constant power between
events.

Public surface:

* :class:`~repro.sim.engine.Environment` — the event loop and clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf` —
  the things processes wait on.
* :class:`~repro.sim.process.Process` / ``env.process(gen)`` — running
  coroutine processes, with :meth:`~repro.sim.process.Process.interrupt`.
* :class:`~repro.sim.resources.Store` and
  :class:`~repro.sim.resources.Resource` — queued synchronisation
  primitives used by the network and MPI layers.
"""

from repro.sim.engine import Environment, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "StopSimulation",
    "Timeout",
]
