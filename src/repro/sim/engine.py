"""The simulation environment: clock + event heap."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError", "StopSimulation"]


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Environment:
    """Discrete-event simulation environment.

    Keeps the virtual clock and the pending-event heap, creates events
    and processes, and advances time event-by-event.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(2.5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    2.5
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start running ``generator`` as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        while self._queue:
            when, _, event = self._queue[0]
            if isinstance(event, Timeout) and event.cancelled:
                heapq.heappop(self._queue)
                continue
            return when
        return float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        while True:
            if not self._queue:
                raise IndexError("no more events")
            when, _, event = heapq.heappop(self._queue)
            if isinstance(event, Timeout) and event.cancelled:
                continue
            break
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError(f"event scheduled in the past: {when} < {self._now}")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event.ok and not event._defused:
            raise SimulationError(
                f"unhandled failure in simulation: {event._value!r}"
            ) from (event._value if isinstance(event._value, BaseException) else None)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain;
            a number — run until the clock reaches that time;
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value if stop_event.ok else None
            stop_event.callbacks.append(self._stop_callback)
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")

        try:
            while True:
                when = self.peek()
                if when == float("inf"):
                    break
                if when > stop_time:
                    self._now = stop_time
                    break
                self.step()
        except StopSimulation:
            assert stop_event is not None
            if not stop_event.ok:
                raise SimulationError(
                    f"awaited event failed: {stop_event._value!r}"
                ) from stop_event._value
            return stop_event.value

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "simulation ran out of events before the awaited event triggered"
            )
        if stop_time != float("inf") and self._now < stop_time:
            self._now = stop_time
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()
