"""The simulation environment: clock + event heap.

The event loop is the hottest code in the repository — every simulated
MPI message, CPU segment and battery sample passes through it — so
:meth:`Environment.run` keeps an inlined copy of :meth:`step` with the
heap, clock and ``heappop`` bound to locals, and cancelled timeouts are
skipped with a plain ``_cancelled`` flag check instead of an
``isinstance`` test.  Cancelled entries are removed lazily; a counter
triggers a compaction pass when more than half the heap is dead (see
``docs/performance.md``).
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.events import _PROCESSED, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError", "StopSimulation"]

#: Never bother compacting heaps with fewer dead entries than this —
#: popping a few stale entries lazily is cheaper than a rebuild.
COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Environment:
    """Discrete-event simulation environment.

    Keeps the virtual clock and the pending-event heap, creates events
    and processes, and advances time event-by-event.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(2.5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    2.5
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "_dead")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: cancelled timeouts still sitting in the heap
        self._dead = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start running ``generator`` as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def _note_cancelled(self) -> None:
        """Account for a timeout cancelled while still in the heap;
        compact once dead entries outnumber live ones."""
        self._dead += 1
        if self._dead > COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        # In-place so any local references to the heap stay valid.
        self._queue[:] = [
            entry for entry in self._queue if not entry[2]._cancelled
        ]
        heapq.heapify(self._queue)
        self._dead = 0

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        queue = self._queue
        while queue:
            when, _, event = queue[0]
            if event._cancelled:
                heapq.heappop(queue)
                self._dead -= 1
                continue
            return when
        return float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        queue = self._queue
        while True:
            if not queue:
                raise IndexError("no more events")
            when, _, event = heapq.heappop(queue)
            if event._cancelled:
                self._dead -= 1
                continue
            break
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError(f"event scheduled in the past: {when} < {self._now}")
        self._now = when
        callbacks, event._callbacks = event._callbacks, _PROCESSED
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)
        if not event._ok and not event._defused:
            raise SimulationError(
                f"unhandled failure in simulation: {event._value!r}"
            ) from (event._value if isinstance(event._value, BaseException) else None)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain;
            a number — run until the clock reaches that time;
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value if stop_event.ok else None
            stop_event._add_callback(self._stop_callback)
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")

        # Inlined step() loop: heap, pop and sentinel bound to locals.
        # `queue` stays valid across _compact() (in-place rebuild).
        # The common case (no time limit) skips the peek-then-pop double
        # heap access entirely.
        queue = self._queue
        heappop = heapq.heappop
        processed = _PROCESSED
        bounded = stop_time != float("inf")
        try:
            while queue:
                if bounded:
                    when, _, event = queue[0]
                    if event._cancelled:
                        heappop(queue)
                        self._dead -= 1
                        continue
                    if when > stop_time:
                        break
                    heappop(queue)
                else:
                    when, _, event = heappop(queue)
                    if event._cancelled:
                        self._dead -= 1
                        continue
                if when < self._now:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"event scheduled in the past: {when} < {self._now}"
                    )
                self._now = when
                callbacks, event._callbacks = event._callbacks, processed
                if callbacks is not None:
                    if type(callbacks) is list:
                        for callback in callbacks:
                            callback(event)
                    else:
                        callbacks(event)
                if not event._ok and not event._defused:
                    raise SimulationError(
                        f"unhandled failure in simulation: {event._value!r}"
                    ) from (
                        event._value
                        if isinstance(event._value, BaseException)
                        else None
                    )
        except StopSimulation:
            assert stop_event is not None
            if not stop_event.ok:
                raise SimulationError(
                    f"awaited event failed: {stop_event._value!r}"
                ) from stop_event._value
            return stop_event.value

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "simulation ran out of events before the awaited event triggered"
            )
        if stop_time != float("inf") and self._now < stop_time:
            self._now = stop_time
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()
