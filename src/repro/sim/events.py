"""Event primitives for the discrete-event kernel.

Events follow SimPy-like semantics:

* An event starts *untriggered*; :meth:`Event.succeed` or
  :meth:`Event.fail` triggers it, scheduling its callbacks to run at the
  current simulation time.
* Processes wait on events by ``yield``-ing them; the process resumes
  with the event's value (or the failure exception is raised inside the
  generator).
* :class:`Timeout` is an event triggered automatically after a delay.
* :class:`AllOf` / :class:`AnyOf` compose events.

Fast-path invariants (see ``docs/performance.md``):

* Callbacks are stored in ``_callbacks`` as ``None`` (no callbacks yet),
  a bare callable (the overwhelmingly common single-callback case — no
  list allocation), a list (two or more callbacks), or the
  ``_PROCESSED`` sentinel once they have been dispatched.  The public
  :attr:`Event.callbacks` property transparently promotes the compact
  forms to a real list, so external ``event.callbacks.append(...)``
  keeps working; hot paths use :meth:`Event._add_callback` instead.
* Every event carries a ``_cancelled`` flag so the environment's heap
  loop never needs an ``isinstance(event, Timeout)`` check; only
  :meth:`Timeout.cancel` ever sets it.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Interrupt", "AllOf", "AnyOf", "ConditionValue"]

_PENDING = object()
#: Sentinel stored in ``_callbacks`` once callbacks have been dispatched.
_PROCESSED = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "_callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        # None | bare callable | list | _PROCESSED — see module docstring.
        self._callbacks: Any = None
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False
        self._cancelled = False

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"

    @property
    def callbacks(self) -> Optional[list[Callable[["Event"], None]]]:
        """Callables invoked with this event once it is processed.

        ``None`` once the event has been processed.  Accessing this on a
        pending event materialises the internal compact representation
        into a mutable list, so ``event.callbacks.append(fn)`` works.
        """
        cbs = self._callbacks
        if cbs is _PROCESSED:
            return None
        if type(cbs) is list:
            return cbs
        lst = [] if cbs is None else [cbs]
        self._callbacks = lst
        return lst

    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Append ``fn`` without allocating a list for the single-callback
        case (the kernel's hot path)."""
        cbs = self._callbacks
        if cbs is None:
            self._callbacks = fn
        elif type(cbs) is list:
            cbs.append(fn)
        elif cbs is _PROCESSED:
            raise RuntimeError(f"{self!r} has already been processed")
        else:
            self._callbacks = [cbs, fn]

    def _remove_callback(self, fn: Callable[["Event"], None]) -> bool:
        """Detach ``fn`` if present; returns whether it was removed."""
        cbs = self._callbacks
        if type(cbs) is list:
            if fn in cbs:
                cbs.remove(fn)
                return True
            return False
        # Bound methods are recreated per attribute access, so compare
        # by equality, not identity.
        if cbs is not None and cbs is not _PROCESSED and cbs == fn:
            self._callbacks = None
            return True
        return False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (succeeded or failed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self._callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only meaningful if triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise AttributeError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carried by ``exception``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time.

    Supports :meth:`cancel` while still pending, which is used by the
    CPU model to reschedule work completions when the operating point
    changes mid-segment.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + Environment._schedule: timeouts are
        # created once per simulated segment/message, making this the
        # hottest constructor in the kernel.
        self.env = env
        self._callbacks = None
        self._ok = True
        self._value = value
        self._defused = False
        self._cancelled = False
        self._delay = delay
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + delay, eid, self))

    @property
    def delay(self) -> float:
        return self._delay

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent a pending timeout from firing (no effect if processed)."""
        if not self._cancelled:
            self._cancelled = True
            if self._callbacks is not _PROCESSED:
                # Still sitting in the heap: account for the dead entry
                # so the environment can compact when too many linger.
                self.env._note_cancelled()


class ConditionValue(dict):
    """Ordered mapping of event -> value produced by condition events."""

    def of(self, event: Event) -> Any:
        return self[event]


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(ConditionValue())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev._add_callback(self._check)

    def _collect_values(self) -> ConditionValue:
        # Only *processed* events contribute (their callbacks ran, so
        # they have observably happened); a Timeout carries its value
        # from creation but has not occurred until processed.
        result = ConditionValue()
        for ev in self.events:
            if ev.processed and ev.ok:
                result[ev] = ev.value
        return result

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggered once *all* component events have succeeded.

    Fails as soon as any component fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Triggered as soon as *any* component event succeeds."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(self._collect_values())
