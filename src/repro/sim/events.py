"""Event primitives for the discrete-event kernel.

Events follow SimPy-like semantics:

* An event starts *untriggered*; :meth:`Event.succeed` or
  :meth:`Event.fail` triggers it, scheduling its callbacks to run at the
  current simulation time.
* Processes wait on events by ``yield``-ing them; the process resumes
  with the event's value (or the failure exception is raised inside the
  generator).
* :class:`Timeout` is an event triggered automatically after a delay.
* :class:`AllOf` / :class:`AnyOf` compose events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Interrupt", "AllOf", "AnyOf", "ConditionValue"]

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value (succeeded or failed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only meaningful if triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise AttributeError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carried by ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time.

    Supports :meth:`cancel` while still pending, which is used by the
    CPU model to reschedule work completions when the operating point
    changes mid-segment.
    """

    __slots__ = ("_delay", "_cancelled")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._cancelled = False
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent a pending timeout from firing (no effect if processed)."""
        self._cancelled = True


class ConditionValue(dict):
    """Ordered mapping of event -> value produced by condition events."""

    def of(self, event: Event) -> Any:
        return self[event]


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(ConditionValue())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        # Only *processed* events contribute (their callbacks ran, so
        # they have observably happened); a Timeout carries its value
        # from creation but has not occurred until processed.
        result = ConditionValue()
        for ev in self.events:
            if ev.processed and ev.ok:
                result[ev] = ev.value
        return result

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggered once *all* component events have succeeded.

    Fails as soon as any component fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Triggered as soon as *any* component event succeeds."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(self._collect_values())
