"""Coroutine processes for the discrete-event kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import _PENDING, _PROCESSED, Event, Interrupt, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Process"]


class Process(Event):
    """A running generator.  The process *is* an event that triggers with
    the generator's return value when it finishes (or fails with the
    exception that escaped it).

    Processes are created through :meth:`Environment.process`; the
    generator advances every time an event it yielded is processed.
    """

    __slots__ = ("_generator", "_send", "_throw", "_resume_cb", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bound-method caches for the resume hot path (`self._resume` is
        # a fresh object on every attribute access otherwise).
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        #: The event this process is currently waiting on (None if running
        #: or finished).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off at the current time via an initialisation
        # event so that creation order does not matter.
        init = Event(env)
        init._add_callback(self._resume_cb)
        init.succeed()

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "active"
        return f"<Process {self.name} {state}>"

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event
        itself is unaffected and may still trigger later).
        """
        if self.triggered:
            raise RuntimeError(f"{self} has already terminated")
        if self.env._active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from the event we were waiting on (if the process has
        # not started yet, the interrupt simply lands right after its
        # initialisation event).
        target = self._target
        if target is not None and not target.processed:
            target._remove_callback(self._resume_cb)
        carrier = Event(self.env)
        carrier._add_callback(self._resume_cb)
        carrier._ok = False
        carrier._defused = True
        carrier._value = Interrupt(cause)
        self.env._schedule(carrier)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event._ok:
                value = event._value
                next_event = self._send(None if value is _PENDING else value)
            else:
                event._defused = True
                next_event = self._throw(event._value)
        except StopIteration as exc:
            env._active_process = None
            self.succeed(exc.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if type(next_event) is not Timeout and not isinstance(next_event, Event):
            raise TypeError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.env is not env:
            raise ValueError("process yielded an event from another environment")
        # Inlined _add_callback on the wait target — the per-yield path.
        cbs = next_event._callbacks
        if cbs is None:
            next_event._callbacks = self._resume_cb
            self._target = next_event
        elif cbs is _PROCESSED:
            # Already happened: resume immediately (at the current time).
            carrier = Event(env)
            carrier._callbacks = self._resume_cb
            carrier._ok = next_event._ok
            carrier._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
                carrier._defused = True
            env._schedule(carrier)
            self._target = carrier
        elif type(cbs) is list:
            cbs.append(self._resume_cb)
            self._target = next_event
        else:
            next_event._callbacks = [cbs, self._resume_cb]
            self._target = next_event
