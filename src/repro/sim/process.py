"""Coroutine processes for the discrete-event kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Process"]


class Process(Event):
    """A running generator.  The process *is* an event that triggers with
    the generator's return value when it finishes (or fails with the
    exception that escaped it).

    Processes are created through :meth:`Environment.process`; the
    generator advances every time an event it yielded is processed.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if running
        #: or finished).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off at the current time via an initialisation
        # event so that creation order does not matter.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "active"
        return f"<Process {self.name} {state}>"

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event
        itself is unaffected and may still trigger later).
        """
        if self.triggered:
            raise RuntimeError(f"{self} has already terminated")
        if self.env._active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from the event we were waiting on (if the process has
        # not started yet, the interrupt simply lands right after its
        # initialisation event).
        target = self._target
        if (
            target is not None
            and target.callbacks is not None
            and self._resume in target.callbacks
        ):
            target.callbacks.remove(self._resume)
        carrier = Event(self.env)
        carrier.callbacks.append(self._resume)
        carrier._ok = False
        carrier._defused = True
        carrier._value = Interrupt(cause)
        self.env._schedule(carrier)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None
        try:
            if event.ok:
                next_event = self._generator.send(event._value if event.triggered else None)
            else:
                event.defuse()
                next_event = self._generator.throw(event._value)
        except StopIteration as exc:
            self.env._active_process = None
            self.succeed(exc.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise TypeError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.env is not self.env:
            raise ValueError("process yielded an event from another environment")
        if next_event.processed:
            # Already happened: resume immediately (at the current time).
            carrier = Event(self.env)
            carrier.callbacks.append(self._resume)
            carrier._ok = next_event.ok
            carrier._value = next_event._value
            if not next_event.ok:
                next_event.defuse()
                carrier._defused = True
            self.env._schedule(carrier)
            self._target = carrier
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event
