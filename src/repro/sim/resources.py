"""Queued synchronisation primitives built on the event kernel.

Only the pieces the upper layers need:

* :class:`Store` — an unbounded (or bounded) FIFO of items; ``put`` and
  ``get`` return events.  Used for message queues in the virtual MPI
  layer.
* :class:`Resource` — a counted resource with FIFO (or priority) queuing
  of requests.  Used for network link arbitration.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Store", "Resource", "Request"]


class Store:
    """FIFO item store.

    ``put(item)`` returns an event that succeeds once the item is
    accepted (immediately unless the store is full).  ``get(filter)``
    returns an event that succeeds with the first item matching
    ``filter`` (any item if omitted); it blocks until one is available.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        event = Event(self.env)
        self._getters.append((event, filter))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move accepted puts into the store.
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                progress = True
            # Satisfy getters in FIFO order; a getter whose filter matches
            # nothing stays queued without blocking later getters.
            if self._getters and self.items:
                unmatched: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
                while self._getters and self.items:
                    event, flt = self._getters.popleft()
                    matched_index = None
                    if flt is None:
                        matched_index = 0
                    else:
                        for i, item in enumerate(self.items):
                            if flt(item):
                                matched_index = i
                                break
                    if matched_index is None:
                        unmatched.append((event, flt))
                        continue
                    item = self.items[matched_index]
                    del self.items[matched_index]
                    event.succeed(item)
                    progress = True
                self._getters.extendleft(reversed(unmatched))


class Request(Event):
    """A pending claim on a :class:`Resource`; succeed == acquired."""

    __slots__ = ("resource", "priority", "amount", "_released")

    def __init__(self, resource: "Resource", priority: float, amount: int) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.amount = amount
        self._released = False

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class Resource:
    """Counted resource with priority queuing.

    ``request(priority=...)`` returns a :class:`Request` event that
    succeeds when ``amount`` units are granted.  Lower priority values
    are served first; ties break FIFO.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: list[tuple[float, int, Request]] = []
        self._seq = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: float = 0.0, amount: int = 1) -> Request:
        if amount < 1 or amount > self.capacity:
            raise ValueError(f"cannot request {amount} of capacity {self.capacity}")
        req = Request(self, priority, amount)
        self._seq += 1
        import heapq

        heapq.heappush(self._waiting, (priority, self._seq, req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        if request._released:
            return  # idempotent: releasing twice must not corrupt counts
        request._released = True
        if not request.triggered:
            # Cancel a queued request.
            self._waiting = [(p, s, r) for (p, s, r) in self._waiting if r is not request]
            import heapq

            heapq.heapify(self._waiting)
            return
        self._in_use -= request.amount
        if self._in_use < 0:  # pragma: no cover - defensive
            raise RuntimeError("resource released more than acquired")
        self._grant()

    def _grant(self) -> None:
        import heapq

        while self._waiting:
            priority, seq, req = self._waiting[0]
            if self._in_use + req.amount > self.capacity:
                break
            heapq.heappop(self._waiting)
            self._in_use += req.amount
            req.succeed()
