"""Straightline executor: static-gear runs without an event heap.

For a run whose operating points never change (no-DVS baseline, the
EXTERNAL strategy), fault-free and untraced, every quantity the event
engine produces is a closed-form chain of float operations: segment end
times are chained sums, per-node energy is a piecewise-constant
integral over state-change breakpoints, and collectives complete a
fixed duration after the last arrival.  This module evaluates a
:class:`~repro.workloads.compile.CompiledProgram` by direct
accumulation — no heap, no generators — replicating the event engine's
arithmetic *in the same order*, so every :class:`Measurement` summary
field is bit-for-bit identical to the event engine's.

The replication contract (pinned by
``tests/sim/test_straightline_equivalence.py``):

* segments start at ``max(enqueue time, CPU free time)`` and last
  ``max(0, stall_until - start) + cycles / f + offchip`` — the exact
  expression ``CpuCore._duration`` evaluates;
* energy accumulates one ``energy += power * dt`` term per state-change
  breakpoint with ``dt > 0`` plus a final ``power * (T_end - t_last)``
  term — the exact sequence ``EnergyMeter`` produces, using
  ``NodePowerParameters.node_power_w`` itself for every power value;
* network channel grants are FIFO per node: ``grant = max(request,
  channel_free)``, serialization from the rx grant, releases at
  serialization end, delivery one latency later — matching
  ``Network._transfer`` over the engine's synchronous-grant
  :class:`Resource`;
* collectives complete at ``max(arrival times) + collective_seconds``.

Anything whose timing the executor cannot order deterministically (a
channel request arriving before one already granted, a rank-dependency
cycle) raises :class:`StraightlineUnsupported`; ``run_workload`` falls
back to the event engine, which also reproduces genuine program errors
(deadlocks, mismatched collectives).
"""

from __future__ import annotations

from typing import Optional
from weakref import WeakKeyDictionary

from repro.workloads.compile import (
    classify_channels,
    OP_COLLECTIVE,
    OP_COMPUTE,
    OP_IDLE,
    OP_IRECV,
    OP_ISEND,
    OP_WAIT,
    REQ_RECV,
    CompiledProgram,
    CompileError,
    compile_workload,
)

__all__ = [
    "StraightlineUnsupported",
    "run_straightline",
    "try_run_straightline",
    "run_batch",
]


class StraightlineUnsupported(RuntimeError):
    """The run cannot be evaluated on the straightline tier.

    Raised when the configuration is ineligible (dynamic strategy,
    faults, tracing) or when execution hits an ordering the direct
    accumulator cannot reproduce deterministically.  Callers fall back
    to the event engine.

    ``reason`` is a stable telemetry code (``dvs_in_flight``,
    ``out_of_order_channel``, ``divergent_control``, ``deadlock``,
    ``wait_order``, ``no_plan``, or the generic ``unsupported``)
    suitable for per-reason fallback counters; the message stays the
    human-readable diagnosis.
    """

    def __init__(self, message: str, reason: str = "unsupported") -> None:
        super().__init__(message)
        self.reason = reason


# Event kinds in the per-node breakpoint list.
_EV_START = 0  # a segment becomes active: payload (act, busy, mem, nic)
_EV_END = 1  # the active segment completes
_EV_PUSH = 2  # push a wait-state token: payload (act, busy, mem, nic)
_EV_POP = 3  # pop the topmost matching wait-state token
_EV_TOUCH = 4  # accounting boundary only (DVS call overhead stall)
_EV_GEAR = 5  # operating-point change: payload (new opoint, new mhz)


_LISTS_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _program_lists(compiled: CompiledProgram) -> tuple:
    """Python-list view of a compiled program, memoized per program.

    Grouped ranks share body array objects (see ``CompiledProgram``);
    each distinct array converts once and its list object is shared —
    consumers only read them, so the view's memory scales with rank
    groups, not ranks.
    """
    lists = _LISTS_CACHE.get(compiled)
    if lists is None:
        def shared(arrays):
            memo: dict[int, list] = {}
            out = []
            for a in arrays:
                v = memo.get(id(a))
                if v is None:
                    v = memo[id(a)] = a.tolist()
                out.append(v)
            return out

        rb = compiled.req_base
        lists = (
            shared(compiled.ops),
            shared(compiled.iargs),
            shared(compiled.fargs),
            compiled.req_kind.tolist(),
            compiled.req_owner.tolist(),
            compiled.req_peer.tolist(),
            compiled.req_nbytes.tolist(),
            compiled.req_eager.tolist(),
            compiled.req_match.tolist(),
            rb.tolist() if rb is not None else [0] * compiled.nprocs,
        )
        _LISTS_CACHE[compiled] = lists
    return lists


#: compiled program -> {(plan, opoints): lowered actions}.  GearPlan is a
#: frozen dataclass and tables hash by content, so sweeps that revisit a
#: plan (e.g. the same gear pair across seeds) lower it once.  Each
#: per-program dict is LRU-bounded at ``_ACTIONS_CACHE_CAP`` entries:
#: grids with many one-shot plans (the optimizer's candidate search)
#: would otherwise grow it without limit.
_ACTIONS_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()
_ACTIONS_CACHE_CAP = 64

#: process-wide gear-plan lowering counters (runner telemetry: sweeps
#: snapshot deltas into ``CacheStats.lowering_hits``/``lowering_misses``).
_LOWERING_STATS = {"hits": 0, "misses": 0}


def lowering_cache_counters() -> tuple[int, int]:
    """``(hits, misses)`` of the gear-plan lowering cache, process-wide."""
    return _LOWERING_STATS["hits"], _LOWERING_STATS["misses"]

#: operating-point table -> (frequency_hz array, frequency_mhz array).
#: Shared read-only across batch executors; only ever indexed.
_TABLES_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()

#: power parameters -> {(opoints, activity key): per-point power array}.
#: ``node_power_w`` is pure in (point, activity), so the vectors survive
#: across batches; consumers index but never mutate them.
_PVEC_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


def _lower_gear_actions(compiled: CompiledProgram, plan, opoints) -> list[list[tuple]]:
    """Lower a :class:`GearPlan` onto a compiled program's hook markers.

    Returns, per rank, ``(op position, target opoint index)`` pairs in
    program order — one per ``set_cpuspeed`` call the plan issues at
    that marker.  A frequency the table doesn't carry, or a plan that
    doesn't cover every rank, raises :class:`CompileError`; the caller
    falls back and the event engine surfaces the genuine error.
    """
    per_prog = _ACTIONS_CACHE.get(compiled)
    if per_prog is None:
        per_prog = _ACTIONS_CACHE[compiled] = {}
    key = (plan, opoints)
    cached = per_prog.get(key)
    if cached is not None:
        _LOWERING_STATS["hits"] += 1
        per_prog[key] = per_prog.pop(key)  # LRU: refresh recency
        return cached
    exact = {p.frequency_mhz: i for i, p in enumerate(opoints)}
    per_rank: list[list[tuple]] = []
    try:
        for rank in range(compiled.nprocs):
            acts: list[tuple] = []
            for pos, kind, phase in compiled.markers[rank]:
                for mhz in plan.calls_at(kind, phase, rank):
                    idx = exact.get(mhz)
                    if idx is None:  # inexact MHz: by_mhz's tolerant scan
                        idx = opoints.index_of(opoints.by_mhz(mhz))
                    acts.append((pos, idx))
            per_rank.append(acts)
    except (KeyError, IndexError, ValueError) as exc:
        raise CompileError(f"gear plan not executable: {exc!r}") from exc
    _LOWERING_STATS["misses"] += 1
    per_prog[key] = per_rank
    while len(per_prog) > _ACTIONS_CACHE_CAP:
        per_prog.pop(next(iter(per_prog)))  # evict least-recently used
    return per_rank


class _Node:
    """Per-node gear state + the breakpoint event list.

    ``freq_hz``/``mhz``/``opoint``/``index`` track the *current* gear
    (mutated by :meth:`_Executor._apply_gear`); ``start_opoint`` and
    ``start_mhz`` keep the post-setup state :meth:`_Executor.finalize`
    integrates from.
    """

    __slots__ = ("freq_hz", "mhz", "opoint", "index", "start_opoint",
                 "start_mhz", "stall_until", "cpu_free", "events")

    def __init__(self, freq_hz: float, mhz: float, opoint, stall_until: float,
                 index: int = -1) -> None:
        self.freq_hz = freq_hz
        self.mhz = mhz
        self.opoint = opoint
        self.index = index
        self.start_opoint = opoint
        self.start_mhz = mhz
        self.stall_until = stall_until
        self.cpu_free = 0.0
        self.events: list[tuple] = []  # (t, seq, kind, payload)


class _Chan:
    """One simplex network channel (a capacity-1 FIFO resource)."""

    __slots__ = ("free", "max_req")

    def __init__(self) -> None:
        self.free = 0.0
        self.max_req = 0.0


class _Slot:
    """One collective call site (mirrors ``_CollectiveSlot``)."""

    __slots__ = ("arrivals", "wires", "done_t")

    def __init__(self) -> None:
        self.arrivals: dict[int, float] = {}
        self.wires: dict[int, float] = {}
        self.done_t: Optional[float] = None


class _Rank:
    __slots__ = ("rank", "pc", "t", "phase", "wait_req", "coll_seq", "spawn",
                 "finish", "ops", "iargs", "fargs", "node", "acts", "act_i",
                 "rbase")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.rbase = 0  # global id of this rank's first request
        self.pc = 0
        self.t = 0.0
        self.phase = "op"  # op | wait | coll | done
        self.wait_req = -1
        self.coll_seq = -1
        self.spawn: list[int] = []
        self.finish = 0.0
        # Filled by the executor: this rank's program + its node, so the
        # dispatch loop avoids a per-op double index.
        self.ops: list[int] = []
        self.iargs: list[int] = []
        self.fargs: list = []
        self.node: Optional[_Node] = None
        # Gear actions: (op position, target index) pairs in program
        # order; act_i is the cursor of the next unapplied action.
        self.acts: list[tuple] = []
        self.act_i = 0


class _Executor:
    """Direct-accumulation interpreter for one compiled run."""

    def __init__(self, compiled: CompiledProgram, cost, net_params, power_params,
                 nodes: list[_Node], opoints=None,
                 gear_actions: Optional[list[list[tuple]]] = None,
                 transition_latency_s: float = 20e-6,
                 coll_n: Optional[int] = None) -> None:
        self.c = compiled
        self.cost = cost
        self.net = net_params
        self.power = power_params
        self.nodes = nodes
        self.n = compiled.nprocs
        # Collective durations scale with the communicator size.  A
        # quotient (group-representative) run interprets G rank groups
        # but models an N-rank job, so the two counts differ there.
        self.coll_n = coll_n if coll_n is not None else compiled.nprocs
        self.fastest_hz = compiled.fastest_hz
        self.opoints = opoints
        self.transition_latency_s = transition_latency_s
        self.dvs_overhead_s = cost.dvs_call_overhead_s
        self.transitions = 0
        self._has_gears = bool(gear_actions) and any(gear_actions)
        # Engine: Communicator._max_freq_ratio() over the (static) ranks.
        # With in-run gear changes the ratio is re-read per collective
        # (see _start_collective); this cached value covers static runs.
        self.freq_ratio = (
            max(nd.freq_hz for nd in nodes) / compiled.fastest_hz
        )
        # Python lists of Python floats/ints: the accumulation must use
        # the same scalar arithmetic as the event engine, not numpy's.
        # The conversion is pure and the program immutable, so it is
        # shared across every point of a sweep.
        (self.ops, self.iargs, self.fargs, self.req_kind, self.req_owner,
         self.req_peer, self.req_nbytes, self.req_eager,
         self.req_match, self.req_base) = _program_lists(compiled)
        nreq = compiled.n_requests
        self.done_t: list[Optional[float]] = [None] * nreq
        self.posted_t: list[Optional[float]] = [None] * nreq
        self.delivered_t: list[Optional[float]] = [None] * nreq
        self.rts_t: list[Optional[float]] = [None] * nreq
        self.wire: list[float] = [0.0] * nreq
        self.tx = [_Chan() for _ in range(self.n)]
        self.rx = [_Chan() for _ in range(self.n)]
        self.slots = [_Slot() for _ in compiled.coll_kinds]
        self.ranks = [_Rank(r) for r in range(self.n)]
        for r in self.ranks:
            r.ops = self.ops[r.rank]
            r.iargs = self.iargs[r.rank]
            r.fargs = self.fargs[r.rank]
            r.rbase = self.req_base[r.rank]
            r.node = nodes[r.rank]
            if gear_actions:
                r.acts = gear_actions[r.rank]
        self._seq = 0
        self._seq_late = 1 << 62
        self._dirty = False
        #: Poll times (sampled tier only; static runs leave it empty).
        #: Every node's daemon reads busy_seconds() at each poll — a
        #: time-accounting touch on all nodes at once — so finalize
        #: merges this one shared list instead of per-node events.
        self._ticks: list[float] = []
        self.comm_sig = cost.comm_progress.as_tuple()
        self.wait_sig = cost.blocked_wait.as_tuple()
        # Bound-method caches for the interpreter's hottest calls.
        self._send_cycles = cost.send_cycles
        self._recv_cycles = cost.recv_cycles
        self._p2p_wire_bytes = cost.p2p_wire_bytes

    # ------------------------------------------------------------------
    # breakpoint emission + the CPU FIFO
    # ------------------------------------------------------------------
    def _emit(self, node: _Node, t: float, kind: int, payload=None) -> None:
        self._seq += 1
        node.events.append((t, self._seq, kind, payload))

    def _emit_late(self, node: _Node, t: float, kind: int, payload=None) -> None:
        """Emit an event that sorts *after* same-time rank events.

        The engine resumes a rendezvous send proc via an event inserted
        at the CTS timestamp itself, so its pushes/pops always fire
        after every continuation of events scheduled earlier — e.g. the
        receiver's own wait-state push at the same instant.  The
        straightline worklist may discover the CTS while other ranks
        still trail it, so these breakpoints draw from a high counter:
        plain tuple sort then lands them last within their timestamp.
        Only the relative order of *pushes with different signatures*
        is observable (pops remove a matching token wherever it sits),
        and that is exactly the order this preserves.
        """
        self._seq_late += 1
        node.events.append((t, self._seq_late, kind, payload))

    def _run_seg(self, node: _Node, t_req: float, cycles: float, offchip: float,
                 act: float, busy: float, mem: float, nic: float) -> float:
        """Enqueue one work segment; returns its completion time.

        Start and duration reproduce ``CpuCore``: the segment starts
        when the FIFO drains (or immediately), consumes any pending
        transition stall, then runs ``cycles`` at the static clock.
        """
        start = t_req if t_req > node.cpu_free else node.cpu_free
        stall = node.stall_until - start
        if stall < 0.0:
            stall = 0.0
        planned = stall + cycles / node.freq_hz + offchip
        end = start + planned
        seq = self._seq
        events = node.events
        events.append((start, seq + 1, _EV_START, (act, busy, mem, nic)))
        events.append((end, seq + 2, _EV_END, None))
        self._seq = seq + 2
        node.cpu_free = end
        return end

    # ------------------------------------------------------------------
    # piecewise-static gear changes (lowered set_cpuspeed hook calls)
    # ------------------------------------------------------------------
    def _apply_actions(self, r: _Rank, pc: int) -> None:
        acts = r.acts
        i = r.act_i
        while i < len(acts) and acts[i][0] <= pc:
            self._apply_gear(r, acts[i][1])
            i += 1
        r.act_i = i

    def _apply_gear(self, r: _Rank, target: int) -> None:
        """One lowered ``set_cpuspeed`` call at the rank's current time.

        Replicates ``RankContext.set_cpuspeed`` → ``_actuate`` →
        ``CpuCore`` with no injector: the call-overhead stall (a time
        boundary, no meter update), then — only when the operating
        point actually changes — the transition-latency stall and the
        gear breakpoint where ``set_speed_index`` notifies the meter.
        """
        node = r.node
        t = r.t
        if node.cpu_free > t:
            # The engine would retime the queued/active segment around
            # the transition; the straightline FIFO cannot.
            raise StraightlineUnsupported("DVS call while a segment is in flight",
                                    reason="dvs_in_flight")
        overhead = self.dvs_overhead_s
        if overhead != 0.0:
            base = node.stall_until if node.stall_until > t else t
            node.stall_until = base + overhead
            self._emit(node, t, _EV_TOUCH, None)
        if target != node.index:
            op = self.opoints[target]
            base = node.stall_until if node.stall_until > t else t
            node.stall_until = base + self.transition_latency_s
            node.index = target
            node.freq_hz = op.frequency_hz
            node.mhz = op.frequency_mhz
            node.opoint = op
            self.transitions += 1
            self._emit(node, t, _EV_GEAR, (op, op.frequency_mhz))

    # ------------------------------------------------------------------
    # network channels (Resource with synchronous FIFO grants)
    # ------------------------------------------------------------------
    def _grant(self, chan: _Chan, t_req: float) -> float:
        if t_req < chan.max_req and t_req < chan.free:
            # A request earlier than one already granted while the
            # channel is busy: the engine would have granted this one
            # first.  The straightline order is wrong — bail out.
            raise StraightlineUnsupported("out-of-order network channel demand",
                                          reason="out_of_order_channel")
        if t_req > chan.max_req:
            chan.max_req = t_req
        return t_req if t_req > chan.free else chan.free

    def _transfer(self, src: int, dst: int, nbytes: float, t0: float) -> float:
        """Wire a message; returns its delivery time (``Network._transfer``)."""
        if src == dst:
            return t0 + nbytes / (400e6)
        tx, rx = self.tx[src], self.rx[dst]
        g1 = self._grant(tx, t0)
        g2 = self._grant(rx, g1)
        ser_end = g2 + self.net.serialization_s(nbytes)
        tx.free = ser_end
        rx.free = ser_end
        return ser_end + self.net.latency_s

    # ------------------------------------------------------------------
    # send-proc chains
    # ------------------------------------------------------------------
    def _flush(self, rank: _Rank) -> None:
        """Run the rank's pending send procs (they start at its yields)."""
        if not rank.spawn:
            return
        pending, rank.spawn = rank.spawn, []
        for req_id in pending:
            self._run_send_chain(req_id, rank.t)

    def _run_send_chain(self, s_id: int, ft: float) -> None:
        self._dirty = True  # may resolve the peer's recv request
        src = self.req_owner[s_id]
        nbytes = self.req_nbytes[s_id]
        node = self.nodes[src]
        ratio = node.freq_hz / self.fastest_hz
        self.wire[s_id] = self._p2p_wire_bytes(nbytes, ratio)
        sw_end = self._run_seg(
            node, ft, self._send_cycles(nbytes), 0.0, 1.0, 1.0, 0.0, 0.4
        )
        self._finish_send(s_id, sw_end)

    def _finish_send(self, s_id: int, sw_end: float) -> None:
        """Transfer/RTS tail of a send chain, from the send-work end."""
        self._dirty = True
        src = self.req_owner[s_id]
        dst = self.req_peer[s_id]
        r_id = self.req_match[s_id]
        if self.req_eager[s_id]:
            # MPI_Send may return once the buffer is copied out.
            self.done_t[s_id] = sw_end
            delivered = self._transfer(src, dst, self.wire[s_id], sw_end)
            self.delivered_t[s_id] = delivered
            pt = self.posted_t[r_id]
            if pt is not None:
                self.done_t[r_id] = pt if pt > delivered else delivered
        else:
            # Rendezvous: RTS rides one latency; transfer starts at CTS.
            self.rts_t[s_id] = sw_end + self.net.latency_s
            if self.posted_t[r_id] is not None:
                self._complete_rndv(s_id)

    def _complete_rndv(self, s_id: int) -> None:
        self._dirty = True  # resolves requests on both sides
        r_id = self.req_match[s_id]
        rts = self.rts_t[s_id]
        pt = self.posted_t[r_id]
        cts = pt if pt > rts else rts  # CTS fires when both sides met
        src = self.req_owner[s_id]
        dst = self.req_peer[s_id]
        src_node, dst_node = self.nodes[src], self.nodes[dst]
        # Both CPUs progress the message for the whole transfer.  These
        # ride the late counter: the engine's send proc resumes via an
        # event inserted at CTS time, after same-instant rank events.
        self._emit_late(src_node, cts, _EV_PUSH, self.comm_sig)
        self._emit_late(dst_node, cts, _EV_PUSH, self.comm_sig)
        delivered = self._transfer(src, dst, self.wire[s_id], cts)
        self._emit_late(src_node, delivered, _EV_POP, self.comm_sig)
        self._emit_late(dst_node, delivered, _EV_POP, self.comm_sig)
        self.delivered_t[s_id] = delivered
        self.done_t[s_id] = delivered
        self.done_t[r_id] = delivered

    # ------------------------------------------------------------------
    # the worklist
    # ------------------------------------------------------------------
    def run(self) -> float:
        """Execute every rank; returns the makespan T_end."""
        ranks = self.ranks
        done_t = self.done_t
        slots = self.slots
        step = self._step
        while True:
            best = None
            best_nt = 0.0
            second = None
            second_nt = 0.0
            all_done = True
            for r in ranks:
                phase = r.phase
                if phase == "done":
                    continue
                all_done = False
                if phase == "op":
                    nt = r.t
                elif phase == "wait":
                    nt = done_t[r.wait_req]
                else:  # coll
                    nt = slots[r.coll_seq].done_t
                if nt is None:
                    continue
                # Ranks are scanned in id order, so strict < keeps the
                # lowest-rank winner on ties — same as the tuple key.
                if best is None or nt < best_nt:
                    best, best_nt, second, second_nt = r, nt, best, best_nt
                elif second is None or nt < second_nt:
                    second, second_nt = r, nt
            if all_done:
                break
            if best is None:
                # Every live rank blocked on an unresolved dependency:
                # the program would deadlock (or needs an ordering this
                # tier cannot establish).  Let the event engine decide.
                raise StraightlineUnsupported("no runnable rank (program deadlock?)",
                                              reason="deadlock")
            # Burst: keep stepping the chosen rank without rescanning
            # while the order is provably unchanged.  Exactness: no
            # other rank's next-time can move unless a step resolves a
            # request or collective (the _dirty flag), and the chosen
            # rank's own time only grows, so comparing against the
            # stale runner-up under the same (time, rank) tie-break
            # reproduces the full scan's choice.
            while True:
                self._dirty = False
                step(best)
                if self._dirty or best.phase != "op":
                    break
                if second is None:
                    continue  # only resolvable rank; nobody to overtake
                nt = best.t
                if nt < second_nt or (nt == second_nt and best.rank < second.rank):
                    continue
                break
        return max(r.finish for r in ranks)

    def _step(self, r: _Rank) -> None:
        phase = r.phase
        if phase == "wait":
            self._resume_wait(r)
            return
        if phase == "coll":
            r.t = self.slots[r.coll_seq].done_t
            r.phase = "op"
            r.pc += 1
            return
        ops = r.ops
        pc = r.pc
        if r.act_i < len(r.acts):
            # Lowered hook calls fire before the op recorded after them
            # (the hook runs synchronously before the program's next
            # yield in the engine).
            self._apply_actions(r, pc)
        if pc >= len(ops):
            if r.spawn:
                self._flush(r)
            r.finish = r.t
            r.phase = "done"
            return
        code = ops[pc]
        if code == OP_COMPUTE:
            cyc, off, act, busy, mem, nic = r.fargs[pc]
            end = self._run_seg(r.node, r.t, cyc, off, act, busy, mem, nic)
            if r.spawn:
                self._flush(r)
            r.t = end
            r.pc = pc + 1
        elif code == OP_IDLE:
            if r.spawn:
                self._flush(r)
            r.t = r.t + r.fargs[pc][0]
            r.pc = pc + 1
        elif code == OP_ISEND:
            r.spawn.append(r.rbase + r.iargs[pc])
            r.pc = pc + 1
        elif code == OP_IRECV:
            self._post_recv(r, r.rbase + r.iargs[pc])
            r.pc = pc + 1
        elif code == OP_WAIT:
            self._start_wait(r, r.rbase + r.iargs[pc])
        else:  # OP_COLLECTIVE
            self._start_collective(r)

    def _post_recv(self, r: _Rank, req_id: int) -> None:
        self.posted_t[req_id] = r.t
        s_id = self.req_match[req_id]
        if self.req_eager[s_id]:
            dv = self.delivered_t[s_id]
            if dv is not None:
                # Delivered-then-posted matches in the mailbox at post
                # time; posted-then-delivered matches at delivery.
                self.done_t[req_id] = r.t if r.t > dv else dv
        elif self.rts_t[s_id] is not None and self.done_t[s_id] is None:
            self._complete_rndv(s_id)

    def _start_wait(self, r: _Rank, req_id: int) -> None:
        d = self.done_t[req_id]
        node = r.node
        if d is not None and d <= r.t:
            # Already triggered: wait() performs no blocking yield.
            if self.req_kind[req_id] == REQ_RECV:
                end = self._unpack(node, r.t, req_id)
                if r.spawn:
                    self._flush(r)  # the unpack run_work is the first yield
                r.t = end
            r.pc += 1
            return
        # Untriggered: push the blocked signature, then yield (which
        # starts any send procs spawned in this burst).
        self._emit(node, r.t, _EV_PUSH, self.wait_sig)
        if r.spawn:
            self._flush(r)
        d = self.done_t[req_id]  # flushing may complete our own send
        if d is None:
            r.wait_req = req_id
            r.phase = "wait"
            return
        self._complete_wait(r, req_id, d)

    def _resume_wait(self, r: _Rank) -> None:
        d = self.done_t[r.wait_req]
        self._complete_wait(r, r.wait_req, d)
        r.phase = "op"

    def _complete_wait(self, r: _Rank, req_id: int, d: float) -> None:
        if d < r.t:
            # The request completed before we decided to block — the
            # engine would not have pushed the wait state.  Our
            # worklist order diverged; refuse rather than guess.
            raise StraightlineUnsupported("wait resolved before block point",
                                          reason="wait_order")
        node = r.node
        self._emit(node, d, _EV_POP, self.wait_sig)
        r.t = d
        if self.req_kind[req_id] == REQ_RECV:
            r.t = self._unpack(node, d, req_id)
        r.pc += 1

    def _unpack(self, node: _Node, t: float, req_id: int) -> float:
        nbytes = self.req_nbytes[self.req_match[req_id]]
        return self._run_seg(
            node, t, self._recv_cycles(nbytes), 0.0, 1.0, 1.0, 0.4, 0.3
        )

    def _start_collective(self, r: _Rank) -> None:
        seq = r.iargs[r.pc]
        f = r.fargs[r.pc]
        wire = f[0]
        copy = f[1]
        node = r.node
        pack_end = self._run_seg(
            node, r.t,
            self.cost.collective_overhead_cycles
            + self.cost.pack_cycles_per_byte * copy,
            0.0, 1.0, 1.0, 0.4, 0.0,
        )
        if r.spawn:
            self._flush(r)
        self._emit(node, pack_end, _EV_PUSH, self.comm_sig)
        slot = self.slots[seq]
        slot.arrivals[r.rank] = pack_end
        slot.wires[r.rank] = wire
        r.t = pack_end
        r.coll_seq = seq
        r.phase = "coll"
        if len(slot.arrivals) == self.n:
            self._dirty = True  # unblocks every parked rank
            all_at = max(slot.arrivals.values())
            # The engine's completing rank reads every rank's *current*
            # frequency; at completion each rank is parked inside this
            # collective, so the ratio is exact here too.  Static runs
            # use the cached constant (same expression, same value).
            ratio = self.freq_ratio
            if self._has_gears:
                ratio = max(nd.freq_hz for nd in self.nodes) / self.fastest_hz
            duration = self.cost.collective_seconds(
                self.c.coll_kinds[seq],
                self.coll_n,
                max(slot.wires.values()),
                self.net,
                freq_ratio=ratio,
                jitter_s=0.0,
            )
            slot.done_t = all_at + duration
            for rr in range(self.n):
                self._emit(self.nodes[rr], slot.done_t, _EV_POP, self.comm_sig)

    # ------------------------------------------------------------------
    # energy + time accounting
    # ------------------------------------------------------------------
    def finalize(self, t_end: float) -> tuple[list[float], list[dict[float, float]]]:
        """Integrate each node's breakpoints; returns (energy, time) lists.

        Replicates the meter exactly: one ``energy += p * dt`` per
        *meter* breakpoint with ``dt > 0``, power refreshed after every
        meter breakpoint, plus the final ``p * (T_end - t_last)`` read.
        The engine has two distinct boundary sets — ``EnergyMeter``
        updates only at notify points (segment start/end, push/pop,
        gear change), while the CPU's time accounting (``_touch``) also
        fires at overhead-only stalls — so energy and the per-MHz time
        histogram advance from separate ``t_last`` cursors.  The
        histogram accrues one ``hist[mhz] += dt`` per touch boundary at
        the *pre-boundary* frequency, in chronological order, exactly
        as ``CpuStats.time_at_mhz`` accumulates.

        Sampled runs add one more accounting-boundary set: the daemons'
        poll times, shared by every node (``_ticks``).  They are merged
        chronologically into each node's walk rather than stored as
        per-node TOUCH events.  A tick that coincides with an event
        time contributes no boundary of its own — the event's boundary
        at the same instant already advances the cursor, exactly as the
        engine's same-time touch produces ``dt == 0``.
        """
        idle = self.power.cpu_idle_activity
        power_w = self.power.node_power_w
        idle_key = (idle, 0.0, 0.0)
        ticks = self._ticks
        n_tk = len(ticks)
        energies: list[float] = []
        hists: list[dict[float, float]] = []
        for node in self.nodes:
            # (t, seq) is globally unique, so plain tuple sort never
            # reaches the payload — identical order, no key function.
            events = sorted(node.events)
            opoint = node.start_opoint
            mhz = node.start_mhz
            # One power cache per operating point visited (gear runs
            # revisit points; each (activity, mem, nic) key maps to a
            # different wattage at each point).
            caches: dict[float, dict[tuple, float]] = {}
            cache = caches.setdefault(mhz, {})
            p_idle = power_w(opoint, idle, 0.0, 0.0)
            cache[idle_key] = p_idle
            cache_get = cache.get

            active = None
            stack: list[tuple] = []
            p_cur = p_idle
            t_last_e = 0.0  # meter boundary (notify events only)
            t_last_t = 0.0  # accounting boundary (every event)
            energy = 0.0
            hist: dict[float, float] = {}
            hist_get = hist.get
            i = 0
            k = 0  # cursor into the shared poll-time list
            n_ev = len(events)
            while i < n_ev:
                ev = events[i]
                t = ev[0]
                if t > t_end:
                    break  # the engine stops at the job's completion
                while k < n_tk:
                    tk = ticks[k]
                    if tk > t:
                        break
                    k += 1
                    if tk < t:
                        dt = tk - t_last_t
                        if dt > 0:
                            hist[mhz] = hist_get(mhz, 0.0) + dt
                            t_last_t = tk
                    # tk == t: the event boundary below covers it
                dt = t - t_last_t
                if dt > 0:
                    hist[mhz] = hist_get(mhz, 0.0) + dt
                    t_last_t = t
                if ev[2] == _EV_TOUCH:
                    i1 = i + 1
                    if i1 >= n_ev or events[i1][0] != t:
                        # Lone touch (a poll or overhead-only stall):
                        # accounting boundary only, no meter update.
                        i = i1
                        continue
                notify = False
                gear = False
                while True:
                    kind = ev[2]
                    if kind != _EV_TOUCH:
                        if not notify:
                            notify = True
                            dte = t - t_last_e
                            if dte > 0:
                                energy += p_cur * dte
                                t_last_e = t
                        if kind == _EV_START:
                            active = ev[3]
                        elif kind == _EV_END:
                            active = None
                        elif kind == _EV_PUSH:
                            stack.append(ev[3])
                        elif kind == _EV_POP:
                            payload = ev[3]
                            for j in range(len(stack) - 1, -1, -1):
                                if stack[j] == payload:
                                    del stack[j]
                                    break
                        else:  # _EV_GEAR
                            opoint, mhz = ev[3]
                            gear = True
                    i += 1
                    if i >= n_ev:
                        break
                    ev = events[i]
                    if ev[0] != t:
                        break
                if not notify:
                    continue  # overhead-only stall: no meter update
                if gear:
                    cache = caches.setdefault(mhz, {})
                    cache_get = cache.get
                if active is not None:
                    key = (active[0], active[2], active[3])
                elif stack:
                    top = stack[-1]
                    dyn = top[0] if top[0] > idle else idle
                    key = (dyn, top[2], top[3])
                else:
                    key = idle_key
                p_cur = cache_get(key)
                if p_cur is None:
                    p_cur = power_w(opoint, key[0], key[1], key[2])
                    cache[key] = p_cur
            # Polls after the node's last event (it finished early or
            # sat idle): still accounting boundaries, up to T_end.
            while k < n_tk:
                tk = ticks[k]
                if tk > t_end:
                    break
                k += 1
                dt = tk - t_last_t
                if dt > 0:
                    hist[mhz] = hist_get(mhz, 0.0) + dt
                    t_last_t = tk
            # EnergyMeter.energy_j(): one final read at T_end.
            energies.append(energy + p_cur * (t_end - t_last_e))
            dt = t_end - t_last_t
            if dt > 0:
                hist[mhz] = hist_get(mhz, 0.0) + dt
            hists.append(hist)
        return energies, hists


def _execute(compiled: CompiledProgram, cost, net_params, power_params,
             nodes: list[_Node], opoints=None, gear_actions=None,
             transition_latency_s: float = 20e-6):
    ex = _Executor(compiled, cost, net_params, power_params, nodes,
                   opoints=opoints, gear_actions=gear_actions,
                   transition_latency_s=transition_latency_s)
    t_end = ex.run()
    energies, hists = ex.finalize(t_end)
    return t_end, energies, hists, ex.transitions


# ----------------------------------------------------------------------
# sampled control: daemon strategies without the event heap
# ----------------------------------------------------------------------
class _SegRec:
    """One scheduled CPU segment, kept retimable until its end is final.

    The static executor forgets a segment the moment it computes its
    end; under a polling daemon a gear change can land *inside* a
    segment, so the sampled executor keeps, per node, the live tail of
    its segment FIFO with exactly the fields ``CpuCore`` retimes:
    ``scheduled_at``/``planned`` (progress fraction), the remaining
    work, and the indices of the segment's breakpoint events so a
    retime can patch their times in place.
    """

    __slots__ = ("t_req", "start", "end", "scheduled_at", "planned",
                 "cycles_left", "offchip_left", "ev_start", "ev_end",
                 "attached")

    def __init__(self, t_req, start, end, planned, cycles, offchip,
                 ev_start, ev_end) -> None:
        self.t_req = t_req
        self.start = start
        self.end = end
        self.scheduled_at = start
        self.planned = planned
        self.cycles_left = cycles
        self.offchip_left = offchip
        self.ev_start = ev_start
        self.ev_end = ev_end
        #: indices of extra events pinned to this segment's end (the
        #: collective arrival push) — retimed together with it.
        self.attached: list[int] = []


class _SNode(_Node):
    """A :class:`_Node` plus sampled-control bookkeeping.

    ``segs``/``seg_lo`` is the retimable segment tail; the remaining
    fields are the incremental busy-time replay the poll's utilization
    sample reads: ``carry`` holds indices of this node's events not yet
    integrated (indices stay valid through retime patching), and
    ``b_active``/``b_stack`` mirror the engine CPU's active-segment /
    wait-stack state at the replay cursor ``busy_t``.

    ``cyc_acc``/``cyc_lo`` are the lazy retired-cycle counter for
    ``observes="cycles"`` controllers: ``cyc_acc`` is the engine's
    ``CpuStats.cycles_retired`` (boundary commits only, in the same
    chronological addition order), ``cyc_lo`` the first segment whose
    completion is not yet committed.
    """

    __slots__ = ("segs", "seg_lo", "scan", "carry", "busy_acc", "busy_t",
                 "busy_level", "b_active", "b_stack", "cyc_acc", "cyc_lo")

    def __init__(self, freq_hz, mhz, opoint, stall_until, index=-1) -> None:
        super().__init__(freq_hz, mhz, opoint, stall_until, index)
        self.segs: list[_SegRec] = []
        self.seg_lo = 0
        self.scan = 0
        self.carry: list[int] = []
        self.busy_acc = 0.0
        self.busy_t = 0.0
        self.busy_level = 0.0
        self.b_active: Optional[tuple] = None
        self.b_stack: list[tuple] = []
        self.cyc_acc = 0.0
        self.cyc_lo = 0


class _SampledExecutor(_Executor):
    """Straightline interpreter for interval-polling daemon strategies.

    Between poll ticks the run is gear-static, so the parent worklist
    advances ranks exactly as the static tier — but only while their
    next event falls *before* the next unapplied tick (the horizon).
    When nothing can move below the horizon, the barrier first
    finalizes deferred timings that became final, then applies the
    tick: per node (daemon creation order = node order), produce the
    controller's observation — the engine's exact ``busy_seconds``
    accumulation, ``cycles_retired_now()`` counter, or instantaneous
    ``power_w()`` — hand it to the strategy's stateful controller
    (per-node ``step``, or gather→``decide``→scatter when the
    controller carries a global reduction), and apply each emitted
    ``set_speed_index`` — no-op when the gear already matches, else a
    transition stall plus the engine's mid-segment retime cascaded
    down the node's segment FIFO.

    Two timings cannot be computed eagerly once segments are
    retimable, and are deferred until their inputs are final (strictly
    below the horizon, hence beyond further retiming):

    * a send chain's post-serialization steps (eager transfer / RTS),
      which read the send segment's end;
    * a collective's completion, which reads ``max(arrivals)`` and the
      ranks' *current* frequencies at that instant — gear state is
      constant between ticks, and every pending deferral's time is
      provably past the last applied tick, so processing them before
      the next tick reads exactly the engine's gear state.

    Exact collisions the engine resolves by event-id order (a poll
    landing on a segment boundary or a rank resume time) raise
    :class:`StraightlineUnsupported`; callers fall back.
    """

    def __init__(self, compiled: CompiledProgram, cost, net_params,
                 power_params, nodes: list[_SNode], opoints,
                 controller, transition_latency_s: float = 20e-6) -> None:
        super().__init__(compiled, cost, net_params, power_params, nodes,
                         opoints=opoints, gear_actions=None,
                         transition_latency_s=transition_latency_s)
        interval = controller.interval_s
        if interval <= 0:
            raise StraightlineUnsupported("non-positive poll interval")
        self.interval = interval
        observes = controller.observes
        if observes not in ("busy", "cycles", "power"):
            raise StraightlineUnsupported(
                f"unknown controller observation {observes!r}"
            )
        self.observes = observes
        make = controller.make
        make_global = controller.make_global
        if make is None and make_global is None:
            raise StraightlineUnsupported(
                "controller has neither per-node nor global form"
            )
        self.ctrls = (
            [make() for _ in range(self.n)] if make is not None else None
        )
        self.gctrl = make_global() if make_global is not None else None
        #: bound per-node hooks, hoisted out of the per-poll hot loop:
        #: ``step`` scatters setpoints directly; under a global
        #: reduction the per-node controllers are summarizers instead,
        #: their ``carry`` feeding the reduction's ``decide``.
        self._ctrl_steps = None
        self._ctrl_carries = None
        if self.ctrls is not None:
            try:
                if self.gctrl is None:
                    self._ctrl_steps = [c.step for c in self.ctrls]
                else:
                    self._ctrl_carries = [c.carry for c in self.ctrls]
            except AttributeError as exc:
                raise StraightlineUnsupported(
                    f"controller misses a required hook: {exc}"
                ) from exc
            for c in self.ctrls:
                bind = getattr(c, "bind", None)
                if bind is not None:
                    bind(opoints, power_params)
        if self.gctrl is not None:
            bind = getattr(self.gctrl, "bind", None)
            if bind is not None:
                bind(opoints, power_params, self.n)
        #: Only a busy_seconds() read is a time-accounting touch on the
        #: engine CPU; cycle-counter and power reads are not, so their
        #: polls must *not* become histogram boundaries.
        self._tick_touch = observes == "busy"
        self._track_cycles = observes == "cycles"
        #: memoized node_power_w per (opoint index, activity key) for
        #: ``observes="power"`` sampling.
        self._pow_memo: dict[tuple, float] = {}
        #: applied poll/reduction ticks (runner telemetry).
        self.reduction_ticks = 0
        self.horizon = interval
        self.max_index = opoints.max_index
        #: (send request id, its segment record) awaiting a final end.
        self._defer_sends: list[tuple[int, _SegRec]] = []
        #: collective slot sequence numbers awaiting final arrivals.
        self._defer_colls: list[int] = []
        self._last_rec: Optional[_SegRec] = None

    # -- segment records -----------------------------------------------
    def _run_seg(self, node: _SNode, t_req: float, cycles: float,
                 offchip: float, act: float, busy: float, mem: float,
                 nic: float) -> float:
        start = t_req if t_req > node.cpu_free else node.cpu_free
        stall = node.stall_until - start
        if stall < 0.0:
            stall = 0.0
        planned = stall + cycles / node.freq_hz + offchip
        end = start + planned
        seq = self._seq
        events = node.events
        ev_i = len(events)
        events.append((start, seq + 1, _EV_START, (act, busy, mem, nic)))
        events.append((end, seq + 2, _EV_END, None))
        self._seq = seq + 2
        node.cpu_free = end
        rec = _SegRec(t_req, start, end, planned, cycles, offchip,
                      ev_i, ev_i + 1)
        node.segs.append(rec)
        self._last_rec = rec
        return end

    # -- deferrable send chains ----------------------------------------
    def _run_send_chain(self, s_id: int, ft: float) -> None:
        self._dirty = True
        src = self.req_owner[s_id]
        nbytes = self.req_nbytes[s_id]
        node = self.nodes[src]
        # ft is strictly below the horizon (ranks only step there), so
        # the gear this ratio reads is the engine's at the same instant.
        ratio = node.freq_hz / self.fastest_hz
        self.wire[s_id] = self._p2p_wire_bytes(nbytes, ratio)
        sw_end = self._run_seg(
            node, ft, self._send_cycles(nbytes), 0.0, 1.0, 1.0, 0.0, 0.4
        )
        if sw_end >= self.horizon:
            # A tick may still retime this segment; the transfer/RTS
            # timings read its end, so they wait for finality.
            self._defer_sends.append((s_id, self._last_rec))
            return
        self._finish_send(s_id, sw_end)

    # (the transfer/RTS tail is the inherited ``_Executor._finish_send``)

    # -- deferrable collectives ----------------------------------------
    def _start_collective(self, r: _Rank) -> None:
        seq = r.iargs[r.pc]
        f = r.fargs[r.pc]
        wire = f[0]
        copy = f[1]
        node = r.node
        pack_end = self._run_seg(
            node, r.t,
            self.cost.collective_overhead_cycles
            + self.cost.pack_cycles_per_byte * copy,
            0.0, 1.0, 1.0, 0.4, 0.0,
        )
        rec = self._last_rec
        if r.spawn:
            self._flush(r)
        self._emit(node, pack_end, _EV_PUSH, self.comm_sig)
        rec.attached.append(len(node.events) - 1)
        slot = self.slots[seq]
        slot.arrivals[r.rank] = pack_end
        slot.wires[r.rank] = wire
        r.t = pack_end
        r.coll_seq = seq
        r.phase = "coll"
        if len(slot.arrivals) == self.n:
            if not self._finish_coll(seq, defer=True):
                self._defer_colls.append(seq)

    def _finish_coll(self, seq: int, defer: bool) -> bool:
        slot = self.slots[seq]
        all_at = max(slot.arrivals.values())
        if defer and all_at >= self.horizon:
            return False
        self._dirty = True
        # The engine's completing rank reads every rank's *current*
        # frequency at all_at; gear state is constant between ticks and
        # all_at lies past the last applied tick, so this read matches.
        ratio = max(nd.freq_hz for nd in self.nodes) / self.fastest_hz
        duration = self.cost.collective_seconds(
            self.c.coll_kinds[seq],
            self.coll_n,
            max(slot.wires.values()),
            self.net,
            freq_ratio=ratio,
            jitter_s=0.0,
        )
        slot.done_t = all_at + duration
        for rr in range(self.n):
            self._emit(self.nodes[rr], slot.done_t, _EV_POP, self.comm_sig)
        return True

    # -- the tick: observation + controller + retime -------------------
    def _apply_tick(self, t: float) -> None:
        """One poll: every node's daemon fires, in node (= rank) order.

        Per node, three fused stages (this loop is the tier's hot path
        — a sub-second-interval daemon spends most of the run here):

        1. *observation* — advance the node's sample to ``t``.  For
           ``"busy"`` samples (and the activity state ``"power"``
           samples read) this replays breakpoint events strictly
           before ``t`` in (time, seq) order, accumulating one
           ``busy += level * dt`` term per boundary with ``dt > 0`` —
           the grouping ``CpuCore._touch`` produces, whose touch
           points are exactly these events plus (for busy reads) the
           poll times themselves.  Due events are split off as tuples
           (nothing can patch them between here and consumption) while
           kept entries stay *indices* — those can still be retimed in
           place.  Plain tuple sort is (time, seq) order: seqs are
           unique, so comparison never reaches the payload.
           ``"cycles"`` samples need no replay at all — the counter is
           the lazy segment-commit sum (:meth:`_cycles_at`).
        2. the controller's transitions: a per-node ``step`` applies
           its setpoints immediately; under a global reduction the
           samples are gathered instead (through the summarizers'
           ``carry`` when present) and ``decide``'s setpoints are
           scattered after every node observed — both in node order,
           exactly the engine's daemon/coordinator callback order.
        3. ``scan`` skips past any GEARs this poll appended: they sit
           exactly at ``t`` with the busy cursor already there —
           zero-dt boundaries that move no wait-state, mattering only
           to finalize's meter cursor.  (Retimes patch in place, never
           append, so nothing else landed since stage 1.)

        Only a ``busy_seconds()`` poll is an accounting boundary for
        the time-at-MHz histogram (never a meter update) on *every*
        node at once — recorded once in the shared ``_ticks`` list
        rather than as per-node TOUCH events.  Cycle-counter and power
        reads touch nothing on the engine CPU, so their ticks stay out
        of the list and the histogram's float grouping matches.
        """
        nodes = self.nodes
        steps = self._ctrl_steps
        carries = self._ctrl_carries
        gctrl = self.gctrl
        max_index = self.max_index
        observes = self.observes
        samples: list = []
        for n_idx in range(self.n):
            node = nodes[n_idx]
            if observes == "cycles":
                sample = self._cycles_at(node, t)
            else:
                events = node.events
                n_ev = len(events)
                carry = node.carry
                if node.scan < n_ev:
                    carry.extend(range(node.scan, n_ev))
                    node.scan = n_ev
                t_last = node.busy_t
                level = node.busy_level
                acc = node.busy_acc
                if carry:
                    # Lazy split: most polls find nothing due (the
                    # crossing segment's end is the only pending
                    # entry), so probe before paying for the due/keep
                    # list build.
                    due = None
                    for i in carry:
                        if events[i][0] < t:
                            due = []
                            keep = []
                            for i2 in carry:
                                ev = events[i2]
                                if ev[0] < t:
                                    due.append(ev)
                                else:
                                    keep.append(i2)
                            break
                    if due:
                        node.carry = keep
                        due.sort()
                        active = node.b_active
                        stack = node.b_stack
                        for ev in due:
                            dt = ev[0] - t_last
                            if dt > 0:
                                acc += level * dt
                                t_last = ev[0]
                            kind = ev[2]
                            if kind == _EV_START:
                                active = ev[3]
                            elif kind == _EV_END:
                                active = None
                            elif kind == _EV_PUSH:
                                stack.append(ev[3])
                            elif kind == _EV_POP:
                                payload = ev[3]
                                for j in range(len(stack) - 1, -1, -1):
                                    if stack[j] == payload:
                                        del stack[j]
                                        break
                            # TOUCH/GEAR: accounting boundary only
                            if active is not None:
                                level = active[1]
                            elif stack:
                                level = stack[-1][1]
                            else:
                                level = 0.0
                        node.b_active = active
                        node.busy_level = level
                dt = t - t_last
                if dt > 0:
                    acc += level * dt
                    node.busy_acc = acc
                node.busy_t = t
                sample = acc if observes == "busy" else self._power_at(node, t)
            if gctrl is not None:
                if carries is not None:
                    sample = carries[n_idx](t, sample, node.index, max_index)
                samples.append(sample)
                continue
            for target in steps[n_idx](t, sample, node.index, max_index):
                if target == node.index:
                    continue  # set_speed_index no-op: no stall, no event
                self._set_speed_at_tick(n_idx, t, target)
                node.scan = len(node.events)
        if gctrl is not None:
            indices = [nd.index for nd in nodes]
            for n_idx, target in gctrl.decide(t, samples, indices):
                node = nodes[n_idx]
                if target == node.index:
                    continue  # set_speed_index no-op: no stall, no event
                self._set_speed_at_tick(n_idx, t, target)
                node.scan = len(node.events)
        if self._tick_touch:
            self._ticks.append(t)
        self.reduction_ticks += 1

    def _cycles_at(self, node: _SNode, t: float) -> float:
        """``CpuCore.cycles_retired_now()`` at the tick, lazily.

        ``stats.cycles_retired`` advances one boundary commit per
        completed segment; reproducing its float value means replaying
        those commits as the same chronological additions.  Completions
        strictly before the tick commit here (their ``cycles_left`` is
        final: retimes only move boundaries past the last applied
        tick); mid-segment retime commits interleave at the tick itself
        (:meth:`_retime_node`).  The crossing segment then contributes
        its in-flight share — elapsed over the stall-inclusive plan,
        exactly the live counter read.  A segment boundary exactly at
        the tick is an engine event-id tie (and a retimed plan's
        recomputed fraction need not be exactly 1.0), so it raises.
        """
        segs = node.segs
        k = node.cyc_lo
        n_segs = len(segs)
        acc = node.cyc_acc
        while k < n_segs:
            rec = segs[k]
            if rec.end >= t:
                break
            acc += rec.cycles_left
            k += 1
        node.cyc_lo = k
        node.cyc_acc = acc
        if k == n_segs:
            return acc
        rec = segs[k]
        if rec.end == t:
            raise StraightlineUnsupported(
                "segment boundary collides with poll tick"
            )
        if rec.start <= t and rec.planned > 0:
            elapsed = t - rec.scheduled_at
            frac = min(1.0, max(0.0, elapsed / rec.planned))
            acc = acc + rec.cycles_left * frac
        return acc

    def _power_at(self, node: _SNode, t: float) -> tuple:
        """``Node.power_w()`` at the tick, plus the activity key it
        used, as ``(power_w, dyn, mem, nic)``.

        The key derivation is finalize's meter formula over the busy
        replay's wait-state (the engine CPU's activity properties at
        the poll); the wattage is memoized per (operating point,
        activity key) — ``node_power_w`` is pure, so the cached float
        is the engine's fresh evaluation bit-for-bit.  Any breakpoint
        exactly at the tick leaves the activity state event-id-order
        ambiguous, so it raises (callers fall back).
        """
        events = node.events
        for i in node.carry:
            if events[i][0] == t:
                raise StraightlineUnsupported(
                    "activity boundary collides with poll tick"
                )
        idle = self.power.cpu_idle_activity
        active = node.b_active
        if active is not None:
            key = (active[0], active[2], active[3])
        else:
            stack = node.b_stack
            if stack:
                top = stack[-1]
                dyn = top[0] if top[0] > idle else idle
                key = (dyn, top[2], top[3])
            else:
                key = (idle, 0.0, 0.0)
        memo_key = (node.index, key)
        p = self._pow_memo.get(memo_key)
        if p is None:
            p = self.power.node_power_w(node.opoint, key[0], key[1], key[2])
            self._pow_memo[memo_key] = p
        return (p, key[0], key[1], key[2])

    def _set_speed_at_tick(self, n_idx: int, t: float, target: int) -> None:
        """``CpuCore.set_speed_index`` for an actual change at a poll.

        The engine's order: account progress of the active segment,
        switch the gear, queue the transition stall, reschedule at the
        new frequency.  The progress fraction uses the segment's stale
        ``scheduled_at``/``planned``, so updating node state first is
        equivalent — the retime below reads only record fields.
        """
        node = self.nodes[n_idx]
        op = self.opoints[target]
        base = node.stall_until if node.stall_until > t else t
        node.stall_until = base + self.transition_latency_s
        node.index = target
        node.freq_hz = op.frequency_hz
        node.mhz = op.frequency_mhz
        node.opoint = op
        self.transitions += 1
        self._retime_node(n_idx, t)
        self._emit(node, t, _EV_GEAR, (op, op.frequency_mhz))

    def _retime_node(self, n_idx: int, t: float) -> None:
        node = self.nodes[n_idx]
        segs = node.segs
        k = node.seg_lo
        n_segs = len(segs)
        while k < n_segs and segs[k].end <= t:
            if segs[k].end == t:
                # The engine orders the completion vs. the poll by
                # event id; this tier cannot reproduce that tie.
                raise StraightlineUnsupported(
                    "segment boundary collides with poll tick"
                )
            k += 1
        node.seg_lo = k
        if k == n_segs:
            return  # only the stall moved; future segments read it
        first = segs[k]
        if first.start == t:
            raise StraightlineUnsupported(
                "segment boundary collides with poll tick"
            )
        events = node.events
        r = self.ranks[n_idx]
        freq_hz = node.freq_hz
        stall_until = node.stall_until
        if first.start > t:
            # No crossing segment: the node's CPU is idle at the tick
            # (the rank is blocked — its next segment was pre-created
            # at a resolution time past the tick).  The engine creates
            # that work *after* the poll, pricing it with the new gear
            # and the poll's transition stall; the queued-segment
            # cascade below computes exactly that, so start it here.
            prev_end = t
        else:
            # The crossing segment: CpuCore._progress_active (shrink by
            # the elapsed fraction of the stale plan) +
            # _reschedule_active (new stall + remaining work at the new
            # clock).
            elapsed = t - first.scheduled_at
            if first.planned > 0:
                frac = elapsed / first.planned
                if frac > 1.0:
                    frac = 1.0
                elif frac < 0.0:
                    frac = 0.0
            else:
                frac = 1.0
            keep = 1.0 - frac
            if self._track_cycles:
                # CpuCore._progress_active commits the executed share
                # to the retired counter before shrinking.  Completions
                # before the tick were committed by this tick's
                # observation, so this addition lands in the engine's
                # chronological order.
                node.cyc_acc += first.cycles_left * frac
            first.cycles_left *= keep
            first.offchip_left *= keep
            stall = stall_until - t
            if stall < 0.0:
                stall = 0.0
            planned = stall + first.cycles_left / freq_hz + first.offchip_left
            first.scheduled_at = t
            first.planned = planned
            prev_end = t + planned
            self._move_end(node, r, first, prev_end, events)
            k += 1
        # Queued segments restart back-to-back at the new frequency —
        # each begins when its predecessor completes, or at its own
        # enqueue time if that lies later (a pre-created future
        # segment), exactly as the engine's completion->_start chain.
        for i in range(k, n_segs):
            q = segs[i]
            start = q.t_req if q.t_req > prev_end else prev_end
            stall = stall_until - start
            if stall < 0.0:
                stall = 0.0
            planned = stall + q.cycles_left / freq_hz + q.offchip_left
            ev = events[q.ev_start]
            events[q.ev_start] = (start, ev[1], ev[2], ev[3])
            q.start = start
            q.scheduled_at = start
            q.planned = planned
            prev_end = start + planned
            self._move_end(node, r, q, prev_end, events)
        node.cpu_free = prev_end

    def _move_end(self, node: _SNode, r: _Rank, rec: _SegRec,
                  new_end: float, events: list) -> None:
        """Rebind everything carrying a segment's old end time.

        Timestamps flow by assignment: the rank's resume time, a
        collective arrival, and pinned events all hold the *same float
        object* the segment's end produced, so identity comparison
        finds exactly the bindings to move — no value ambiguity.
        """
        old = rec.end
        rec.end = new_end
        ev = events[rec.ev_end]
        events[rec.ev_end] = (new_end, ev[1], ev[2], ev[3])
        for i in rec.attached:
            ev = events[i]
            events[i] = (new_end, ev[1], ev[2], ev[3])
        if r.t is old:
            r.t = new_end
        if r.phase == "coll":
            slot = self.slots[r.coll_seq]
            if slot.arrivals.get(r.rank) is old:
                slot.arrivals[r.rank] = new_end

    # -- the barrier-aware worklist ------------------------------------
    def _process_due(self) -> bool:
        """Finalize deferred timings whose inputs became final."""
        horizon = self.horizon
        due: list[tuple[float, int, int]] = []
        if self._defer_sends:
            keep = []
            for item in self._defer_sends:
                end = item[1].end
                if end < horizon:
                    due.append((end, 0, item[0]))
                else:
                    keep.append(item)
            self._defer_sends = keep
        if self._defer_colls:
            keep_c = []
            for seq in self._defer_colls:
                all_at = max(self.slots[seq].arrivals.values())
                if all_at < horizon:
                    due.append((all_at, 1, seq))
                else:
                    keep_c.append(seq)
            self._defer_colls = keep_c
        if not due:
            return False
        # Chronological finalization keeps channel grants FIFO.
        due.sort()
        for end, kind, ident in due:
            if kind == 0:
                self._finish_send(ident, end)
            else:
                self._finish_coll(ident, defer=False)
        return True

    def run(self) -> float:
        ranks = self.ranks
        done_t = self.done_t
        slots = self.slots
        step = self._step
        while True:
            best = None
            best_nt = 0.0
            second = None
            second_nt = 0.0
            all_done = True
            any_resolvable = False
            for r in ranks:
                phase = r.phase
                if phase == "done":
                    continue
                all_done = False
                if phase == "op":
                    nt = r.t
                elif phase == "wait":
                    nt = done_t[r.wait_req]
                else:  # coll
                    nt = slots[r.coll_seq].done_t
                if nt is None:
                    continue
                any_resolvable = True
                if best is None or nt < best_nt:
                    best, best_nt, second, second_nt = r, nt, best, best_nt
                elif second is None or nt < second_nt:
                    second, second_nt = r, nt
            if all_done:
                break
            horizon = self.horizon
            if best is not None and best_nt < horizon:
                # Burst below both the runner-up and the horizon: the
                # parent's exactness argument, with the tick as one
                # more stale bound that only this rank's step can't
                # move.
                while True:
                    self._dirty = False
                    step(best)
                    if self._dirty or best.phase != "op":
                        break
                    nt = best.t
                    if nt >= horizon:
                        break
                    if second is None:
                        continue
                    if nt < second_nt or (
                        nt == second_nt and best.rank < second.rank
                    ):
                        continue
                    break
                continue
            if best is not None and best_nt == horizon:
                # Engine event-id order decides poll-vs-resume; bail.
                raise StraightlineUnsupported(
                    "rank event collides with poll tick"
                )
            if self._process_due():
                continue
            if not (any_resolvable or self._defer_sends or self._defer_colls):
                raise StraightlineUnsupported(
                    "no runnable rank (program deadlock?)", reason="deadlock"
                )
            snap = self.transitions
            self._apply_tick(horizon)
            horizon += self.interval
            self.horizon = horizon
            # Steady-state burst: a tick that issued no transition
            # leaves every rank bound and deferred record untouched, so
            # the rescan above would reproduce this snapshot verbatim —
            # keep polling while the next tick stays strictly below the
            # earliest pending rank.  Exit on a transition (retimes make
            # ``best_nt`` stale), on ``horizon >= best_nt`` (the rescan
            # then bursts the rank or raises on the exact tie), or when
            # deferral records exist (their dues interleave with ticks).
            if (best is not None and self.transitions == snap
                    and not self._defer_sends and not self._defer_colls):
                interval = self.interval
                while horizon < best_nt:
                    self._apply_tick(horizon)
                    horizon += interval
                    self.horizon = horizon
                    if self.transitions != snap:
                        break
        t_end = max(r.finish for r in ranks)
        # Ticks strictly before t_end were all applied (every finish is
        # set below the then-current horizon, and ticks only fire below
        # a blocked rank's pending time).  Deferred send chains the job
        # outlived still finalize — the engine runs their truncated
        # procs up to t_end; anything they place later is dropped by
        # finalize, like the engine's unprocessed heap tail.
        if self._defer_sends:
            self._defer_sends.sort(key=lambda item: item[1].end)
            for s_id, rec in self._defer_sends:
                self._finish_send(s_id, rec.end)
            self._defer_sends = []
        return t_end


# ----------------------------------------------------------------------
# the public runners
# ----------------------------------------------------------------------
def run_straightline(
    workload,
    strategy=None,
    seed: int = 0,
    network_params=None,
    power=None,
    opoints=None,
    transition_latency_s: float = 20e-6,
    stats=None,
    vector: bool = True,
):
    """Measure a static- or piecewise-static-gear run on this tier.

    No cluster is built: the post-setup node state the event engine
    would reach is derived directly from the strategy's
    :meth:`~repro.core.strategies.base.Strategy.gear_plan` (the fresh
    CPU parks at the fastest point; a t=0 speed call to a different
    point leaves one transition stall behind), then the plan's
    remaining calls are lowered onto the program's hook markers and
    evaluated directly.  Raises
    :class:`~repro.workloads.compile.CompileError` or
    :class:`StraightlineUnsupported` when the run needs the event
    engine; :func:`try_run_straightline` converts those into ``None``.

    ``vector`` (default on) lets gear-plan runs without point-to-point
    traffic execute on the quotient program — one interpreter rank per
    execution group (see :func:`_vector_partition`) — so interpretation
    cost scales with distinct rank groups, not ranks.  The result is
    bit-for-bit identical either way; the flag exists for differential
    tests and benchmarking the per-rank path.

    ``stats``, when a dict, receives tier telemetry:
    ``reduction_ticks`` (poll/reduction ticks of a stateful-controller
    run); for gear-plan runs ``vector`` (whether the grouped path ran)
    and ``groups`` (execution group count; = nprocs on fallback).
    """
    from repro.core.framework import Measurement
    from repro.core.strategies.base import NoDvsStrategy
    from repro.hardware.network import NetworkParameters
    from repro.hardware.opoints import PENTIUM_M_TABLE
    from repro.hardware.power import NEMO_POWER

    strategy = strategy or NoDvsStrategy()
    plan = strategy.gear_plan(workload)
    controller = None
    if plan is None:
        controller = strategy.controller()
        if controller is None:
            raise StraightlineUnsupported(
                "strategy has no static gear plan (dynamic DVS)",
                reason="no_plan",
            )
    power = NEMO_POWER if power is None else power
    opoints = PENTIUM_M_TABLE if opoints is None else opoints
    net = network_params if network_params is not None else NetworkParameters()
    node_ids = list(range(workload.nprocs))

    compiled = compile_workload(workload, opoints.fastest.frequency_hz)
    max_idx = opoints.max_index
    if controller is not None:
        # Most daemon strategies perform no setup-time speed calls:
        # every node starts at the cluster default (the fastest point)
        # and the first poll lands one interval in.  A controller with
        # a ``start_index`` hook (the power-cap pre-shed) replicates
        # its strategy's uniform setup call instead: same state as the
        # gear-plan path's t=0 speed call — one pending transition
        # stall, setup transitions excluded from the count, finalize
        # integrating from the shed point.
        start_idx = max_idx
        if controller.start_index is not None:
            start_idx = controller.start_index(opoints, power, workload.nprocs)
            if not 0 <= start_idx <= max_idx:
                raise StraightlineUnsupported(
                    f"controller start index {start_idx} out of range"
                )
        op = opoints[start_idx]
        stall = transition_latency_s if start_idx != max_idx else 0.0
        snodes = [
            _SNode(op.frequency_hz, op.frequency_mhz, op, stall, start_idx)
            for _ in range(workload.nprocs)
        ]
        ex = _SampledExecutor(
            compiled, workload.cost_model(), net, power, snodes,
            opoints=opoints, controller=controller,
            transition_latency_s=transition_latency_s,
        )
        t_end = ex.run()
        energies, hists = ex.finalize(t_end)
        transitions = ex.transitions
        if stats is not None:
            stats["reduction_ticks"] = ex.reduction_ticks
    else:
        actions = _lower_gear_actions(compiled, plan, opoints)
        start_idx = _start_indices(plan, opoints, workload.nprocs)
        part, fallback_reason = None, "vector_disabled"
        if vector:
            part, fallback_reason = _vector_partition(
                compiled, lambda r: (start_idx[r], tuple(actions[r]))
            )
        if stats is not None:
            stats["fallback_reason"] = fallback_reason
            stats["groups"] = (
                len(part[1]) if part is not None else workload.nprocs
            )
        if part is not None:
            exec_of, members = part
            qprog = _quotient_program(compiled, exec_of, members)
            t_end, e_nodes, time_at, transitions = _run_grouped(
                compiled, members, qprog, workload.cost_model(), net,
                power, opoints, start_idx, actions, transition_latency_s,
            )
            per_node = {nid: float(e_nodes[nid]) for nid in node_ids}
            return Measurement(
                workload=workload.tag,
                strategy=strategy.describe(),
                elapsed_s=t_end - 0.0,
                energy_j=sum(per_node.values()),
                per_node_energy_j=per_node,
                dvs_transitions=transitions,
                time_at_mhz=time_at,
                acpi_energy_j=None,
                baytech_energy_j=None,
                trace=None,
                report=None,
                extras={},
            )
        nodes = []
        for idx in start_idx:
            op = opoints[idx]
            stall = transition_latency_s if idx != max_idx else 0.0
            nodes.append(_Node(op.frequency_hz, op.frequency_mhz, op, stall, idx))
        t_end, energies, hists, transitions = _execute(
            compiled, workload.cost_model(), net, power, nodes,
            opoints=opoints, gear_actions=actions,
            transition_latency_s=transition_latency_s,
        )

    started_at = 0.0
    per_node = {nid: energies[nid] for nid in node_ids}
    # Merge per-node histograms in node-id order: one addition per
    # (node, mhz) pair, same as summing CpuStats.time_at_mhz over nodes.
    time_at: dict[float, float] = {}
    for nid in node_ids:
        for mhz, secs in hists[nid].items():
            time_at[mhz] = time_at.get(mhz, 0.0) + secs
    return Measurement(
        workload=workload.tag,
        strategy=strategy.describe(),
        elapsed_s=t_end - started_at,
        energy_j=sum(per_node.values()),
        per_node_energy_j=per_node,
        dvs_transitions=transitions,
        time_at_mhz=time_at,
        acpi_energy_j=None,
        baytech_energy_j=None,
        trace=None,
        report=None,
        extras={},
    )


def try_run_straightline(
    workload,
    strategy=None,
    seed: int = 0,
    network_params=None,
    power=None,
    opoints=None,
    transition_latency_s: float = 20e-6,
    stats=None,
    vector: bool = True,
):
    """Like :func:`run_straightline` but returns ``None`` on fallback.

    On a decline, ``stats`` (when given) records the telemetry code
    under ``"fallback_reason"`` — the exception's ``reason`` for
    :class:`StraightlineUnsupported`, ``"compile_error"`` for programs
    the compiler rejects.
    """
    try:
        return run_straightline(
            workload,
            strategy,
            seed=seed,
            network_params=network_params,
            power=power,
            opoints=opoints,
            transition_latency_s=transition_latency_s,
            stats=stats,
            vector=vector,
        )
    except StraightlineUnsupported as exc:
        if stats is not None:
            stats["fallback_reason"] = getattr(exc, "reason", "unsupported")
        return None
    except CompileError:
        if stats is not None:
            stats["fallback_reason"] = "compile_error"
        return None


# ----------------------------------------------------------------------
# batched evaluation: many points of one workload, structure-of-arrays
# ----------------------------------------------------------------------
class _BNode:
    """Per-node state for a batch of B runs, as (B,) float64 arrays."""

    __slots__ = ("freq_hz", "opi", "start_opi", "stall_until", "cpu_free",
                 "live_stall", "events")

    def __init__(self, opi, freq_hz, stall_until, zeros) -> None:
        self.opi = opi  # (B,) operating-point indices
        self.start_opi = opi
        self.freq_hz = freq_hz
        self.stall_until = stall_until
        # False once every element's stall is provably consumed (CPU
        # starts only grow); lets segments skip the clamp arithmetic.
        self.live_stall = True
        self.cpu_free = zeros
        # (t_array, seq, kind, payload, mask) — mask is None (applies to
        # every element) or a (B,) bool array (partial gear changes).
        self.events: list[tuple] = []


class _BRank:
    __slots__ = ("rank", "pc", "t", "phase", "wait_req", "coll_seq", "spawn",
                 "finish", "ops", "iargs", "fargs", "node", "acts", "act_i",
                 "rbase")

    def __init__(self, rank: int, zeros) -> None:
        self.rank = rank
        self.rbase = 0
        self.pc = 0
        self.t = zeros
        self.phase = "op"
        self.wait_req = -1
        self.coll_seq = -1
        self.spawn: list[int] = []
        self.finish = zeros
        self.ops: list[int] = []
        self.iargs: list[int] = []
        self.fargs: list = []
        self.node = None
        self.acts: list[tuple] = []  # (op position, (B,) target indices)
        self.act_i = 0


class _BChan:
    __slots__ = ("free", "max_req")

    def __init__(self, zeros) -> None:
        self.free = zeros
        self.max_req = zeros


class _BatchExecutor:
    """Structure-of-arrays interpreter for B same-shape runs at once.

    Every quantity the scalar :class:`_Executor` keeps as one float is a
    (B,) float64 array here; all arithmetic is elementwise (``a + b``,
    ``np.maximum``, ``np.where``), which evaluates the identical IEEE
    operations per element, so results stay bit-for-bit equal to B
    scalar runs.  The one thing a batch cannot vectorize is *control
    flow*: the worklist's rank choice, wait readiness, and same-time
    event ordering must agree across every element.  Each decision is
    guarded; a divergent batch raises :class:`StraightlineUnsupported`
    and the caller re-evaluates in smaller groups (down to per-point
    scalar runs).

    Cost-model calls with per-element arguments (p2p collision wire
    bytes, collective durations) stay scalar — they branch internally —
    and are memoized per distinct argument tuple, which collapses to a
    handful of entries because frequencies come from a small table.
    """

    def __init__(self, compiled: CompiledProgram, cost, net_params,
                 power_params, opoints, start_idx, gear_actions,
                 transition_latency_s: float,
                 coll_n: Optional[int] = None) -> None:
        import numpy as np

        self.np = np
        self.c = compiled
        self.cost = cost
        self.net = net_params
        self.power = power_params
        self.opoints = opoints
        self.n = compiled.nprocs
        self.coll_n = coll_n if coll_n is not None else compiled.nprocs
        self.B = B = len(start_idx[0])
        self.fastest_hz = compiled.fastest_hz
        self.transition_latency_s = transition_latency_s
        self.dvs_overhead_s = cost.dvs_call_overhead_s
        self.transitions = np.zeros(B, dtype=np.int64)
        tabs = _TABLES_CACHE.get(opoints)
        if tabs is None:
            tabs = (np.array([op.frequency_hz for op in opoints]),
                    np.array([op.frequency_mhz for op in opoints]))
            _TABLES_CACHE[opoints] = tabs
        self.freq_tab, self.mhz_tab = tabs
        max_idx = opoints.max_index
        zeros = np.zeros(B)
        self.nodes = []
        for r in range(self.n):
            opi = start_idx[r]
            # Strategy setup runs at t=0 on a CPU parked at the fastest
            # point: a changed index leaves the transition stall behind.
            stall = np.where(opi != max_idx, transition_latency_s, 0.0)
            self.nodes.append(_BNode(opi, self.freq_tab[opi], stall, zeros))
        self._has_gears = bool(gear_actions) and any(gear_actions)
        ratio = self.nodes[0].freq_hz
        for nd in self.nodes[1:]:
            ratio = np.maximum(ratio, nd.freq_hz)
        self.freq_ratio = ratio / compiled.fastest_hz
        (self.ops, self.iargs, self.fargs, self.req_kind, self.req_owner,
         self.req_peer, self.req_nbytes, self.req_eager,
         self.req_match, self.req_base) = _program_lists(compiled)
        nreq = compiled.n_requests
        self.done_t: list = [None] * nreq
        self.posted_t: list = [None] * nreq
        self.delivered_t: list = [None] * nreq
        self.rts_t: list = [None] * nreq
        self.wire: list = [0.0] * nreq
        self.tx = [_BChan(zeros) for _ in range(self.n)]
        self.rx = [_BChan(zeros) for _ in range(self.n)]
        self.slots = [_Slot() for _ in compiled.coll_kinds]
        self.ranks = [_BRank(r, zeros) for r in range(self.n)]
        for r in self.ranks:
            r.ops = self.ops[r.rank]
            r.iargs = self.iargs[r.rank]
            r.fargs = self.fargs[r.rank]
            r.rbase = self.req_base[r.rank]
            r.node = self.nodes[r.rank]
            if gear_actions:
                r.acts = gear_actions[r.rank]
        self._seq = 0
        self._seq_late = 1 << 62
        self.comm_sig = cost.comm_progress.as_tuple()
        self.wait_sig = cost.blocked_wait.as_tuple()
        self._send_cycles = cost.send_cycles
        self._recv_cycles = cost.recv_cycles
        self._wire_memo: dict = {}
        self._coll_memo: dict = {}
        self._pvec_cache: dict = {}
        self._dirty = False
        self._partial_gear = False

    # -- breakpoints ----------------------------------------------------
    def _emit(self, node, t, kind, payload=None, mask=None) -> None:
        self._seq += 1
        node.events.append((t, self._seq, kind, payload, mask))

    def _emit_late(self, node, t, kind, payload=None) -> None:
        self._seq_late += 1
        node.events.append((t, self._seq_late, kind, payload, None))

    def _run_seg(self, node, t_req, cycles, offchip, act, busy, mem, nic):
        np = self.np
        if t_req is node.cpu_free:  # back-to-back segments: max(x, x) == x
            start = t_req
        else:
            start = np.maximum(t_req, node.cpu_free)
        if node.live_stall:
            stall = node.stall_until - start
            stall = np.where(stall < 0.0, 0.0, stall)
            planned = stall + cycles / node.freq_hz + offchip
            end = start + planned
            # Later starts are >= this end; once the whole batch is past
            # the stall the clamp is identically +0.0 and 0.0 + x == x.
            if bool((node.stall_until <= end).all()):
                node.live_stall = False
        else:
            planned = cycles / node.freq_hz
            if offchip != 0.0:
                planned = planned + offchip
            end = start + planned
        seq = self._seq
        events = node.events
        events.append((start, seq + 1, _EV_START, (act, busy, mem, nic), None))
        events.append((end, seq + 2, _EV_END, None, None))
        self._seq = seq + 2
        node.cpu_free = end
        return end

    # -- gear changes ---------------------------------------------------
    def _apply_actions(self, r, pc: int) -> None:
        acts = r.acts
        i = r.act_i
        while i < len(acts) and acts[i][0] <= pc:
            self._apply_gear(r, acts[i][1])
            i += 1
        r.act_i = i

    def _apply_gear(self, r, target) -> None:
        np = self.np
        node = r.node
        t = r.t
        if bool(np.any(node.cpu_free > t)):
            raise StraightlineUnsupported("DVS call while a segment is in flight",
                                    reason="dvs_in_flight")
        overhead = self.dvs_overhead_s
        if overhead != 0.0:
            node.stall_until = np.maximum(node.stall_until, t) + overhead
            node.live_stall = True
            self._emit(node, t, _EV_TOUCH, None)
        changed = target != node.opi
        if bool(changed.any()):
            if not bool(changed.all()):
                # Heterogeneous change: the gear event applies to only
                # part of the batch, so finalize needs per-event masks.
                self._partial_gear = True
            base = np.maximum(node.stall_until, t)
            node.stall_until = np.where(
                changed, base + self.transition_latency_s, node.stall_until
            )
            node.live_stall = True
            opi_new = np.where(changed, target, node.opi)
            node.opi = opi_new
            node.freq_hz = self.freq_tab[opi_new]
            self.transitions = self.transitions + changed
            self._emit(node, t, _EV_GEAR, opi_new, mask=changed)

    # -- network --------------------------------------------------------
    def _grant(self, chan, t_req):
        np = self.np
        if bool(np.any((t_req < chan.max_req) & (t_req < chan.free))):
            raise StraightlineUnsupported("out-of-order network channel demand",
                                          reason="out_of_order_channel")
        chan.max_req = np.maximum(chan.max_req, t_req)
        return np.maximum(t_req, chan.free)

    def _transfer(self, src: int, dst: int, nbytes, t0):
        if src == dst:
            return t0 + nbytes / (400e6)
        tx, rx = self.tx[src], self.rx[dst]
        g1 = self._grant(tx, t0)
        g2 = self._grant(rx, g1)
        ser_end = g2 + self.net.serialization_s(nbytes)
        tx.free = ser_end
        rx.free = ser_end
        return ser_end + self.net.latency_s

    def _wire_vec(self, nbytes, node):
        """Per-element ``p2p_wire_bytes`` for one sender node.

        Memoized per ``(nbytes, freq array object)``: ``node.freq_hz``
        is *replaced* (never mutated) by ``_apply_gear``, so one cached
        (B,) result serves every message of that byte count until the
        node's next gear change — the entry keeps the frequency array
        alive, pinning its ``id``.  On a miss the branchy scalar
        formula runs once per *distinct* ratio instead of once per
        element.
        """
        if not self.cost.collision_applies_p2p:
            return nbytes  # scalar: broadcasts exactly
        np = self.np
        memo = self._wire_memo
        key = (nbytes, id(node.freq_hz))
        hit = memo.get(key)
        if hit is not None:
            return hit[1]
        fn = self.cost.p2p_wire_bytes
        ratio = node.freq_hz / self.fastest_hz
        uniq, inv = np.unique(ratio, return_inverse=True)
        vals = np.array([fn(nbytes, rk) for rk in uniq.tolist()])
        out = vals[inv]
        memo[key] = (node.freq_hz, out)
        return out

    def _coll_vec(self, kind: str, wmax: float, ratio):
        np = self.np
        memo = self._coll_memo
        fn = self.cost.collective_seconds
        out = np.empty(self.B)
        for k, rk in enumerate(ratio.tolist()):
            key = (kind, wmax, rk)
            v = memo.get(key)
            if v is None:
                v = fn(kind, self.coll_n, wmax, self.net,
                       freq_ratio=rk, jitter_s=0.0)
                memo[key] = v
            out[k] = v
        return out

    # -- send chains ----------------------------------------------------
    def _flush(self, rank) -> None:
        if not rank.spawn:
            return
        pending, rank.spawn = rank.spawn, []
        for req_id in pending:
            self._run_send_chain(req_id, rank.t)

    def _run_send_chain(self, s_id: int, ft) -> None:
        self._dirty = True  # may resolve the peer's recv request
        np = self.np
        src = self.req_owner[s_id]
        dst = self.req_peer[s_id]
        nbytes = self.req_nbytes[s_id]
        node = self.nodes[src]
        self.wire[s_id] = self._wire_vec(nbytes, node)
        sw_end = self._run_seg(
            node, ft, self._send_cycles(nbytes), 0.0, 1.0, 1.0, 0.0, 0.4
        )
        r_id = self.req_match[s_id]
        if self.req_eager[s_id]:
            self.done_t[s_id] = sw_end
            delivered = self._transfer(src, dst, self.wire[s_id], sw_end)
            self.delivered_t[s_id] = delivered
            pt = self.posted_t[r_id]
            if pt is not None:
                self.done_t[r_id] = np.maximum(pt, delivered)
        else:
            self.rts_t[s_id] = sw_end + self.net.latency_s
            if self.posted_t[r_id] is not None:
                self._complete_rndv(s_id)

    def _complete_rndv(self, s_id: int) -> None:
        self._dirty = True  # resolves requests on both sides
        np = self.np
        r_id = self.req_match[s_id]
        cts = np.maximum(self.posted_t[r_id], self.rts_t[s_id])
        src = self.req_owner[s_id]
        dst = self.req_peer[s_id]
        src_node, dst_node = self.nodes[src], self.nodes[dst]
        self._emit_late(src_node, cts, _EV_PUSH, self.comm_sig)
        self._emit_late(dst_node, cts, _EV_PUSH, self.comm_sig)
        delivered = self._transfer(src, dst, self.wire[s_id], cts)
        self._emit_late(src_node, delivered, _EV_POP, self.comm_sig)
        self._emit_late(dst_node, delivered, _EV_POP, self.comm_sig)
        self.delivered_t[s_id] = delivered
        self.done_t[s_id] = delivered
        self.done_t[r_id] = delivered

    # -- the worklist ---------------------------------------------------
    def run(self):
        np = self.np
        ranks = self.ranks
        done_t = self.done_t
        slots = self.slots
        step = self._step
        while True:
            rows = []
            cands = []
            all_done = True
            for r in ranks:
                phase = r.phase
                if phase == "done":
                    continue
                all_done = False
                if phase == "op":
                    nt = r.t
                elif phase == "wait":
                    nt = done_t[r.wait_req]
                else:
                    nt = slots[r.coll_seq].done_t
                if nt is None:
                    continue
                rows.append(nt)
                cands.append(r)
            if all_done:
                break
            if not rows:
                raise StraightlineUnsupported("no runnable rank (program deadlock?)",
                                              reason="deadlock")
            if len(cands) == 1:
                # Only one resolvable rank: a rescan would pick it again
                # until it parks or resolves someone else's request.
                best = cands[0]
                while True:
                    self._dirty = False
                    step(best)
                    if self._dirty or best.phase != "op":
                        break
                continue
            M = np.stack(rows)
            b = int(np.argmin(M[:, 0]))
            mb = M[b]
            # Engine order: earliest next-time, lowest rank on ties —
            # must hold in EVERY element, or the batch's single control
            # flow would mis-order some element's schedule.
            if not (M >= mb).all() or (b > 0 and not (M[:b] > mb).all()):
                raise StraightlineUnsupported("rank schedule diverges across batch",
                                              reason="divergent_control")
            best = cands[b]
            # Ranks fully tied with the winner (equal next-time in every
            # element) run consecutively in rank order — the engine's
            # tie-break — so they can share this rescan.  A rank tied in
            # only part of the batch falls back to single-step + rescan,
            # where the guard above decides (or splits).
            mb0 = float(mb[0])
            sweep = [best]
            for j in range(b + 1, len(cands)):
                if float(rows[j][0]) == mb0:
                    if bool((rows[j] == mb).all()):
                        sweep.append(cands[j])
                    else:
                        sweep = None
                        break
            if sweep is None:
                self._dirty = False
                step(best)
                continue
            if len(sweep) == 1:
                # Burst: keep stepping the chosen rank without
                # rescanning while the order is provably unchanged in
                # every element.  Exactness: no other rank's next-time
                # can move unless a step resolves a request or
                # collective (the _dirty flag), and the chosen rank's
                # own time only grows — so while it stays strictly
                # earliest everywhere, the full rescan would pick it
                # again.  Ties break to a rescan, which re-applies the
                # (time, rank) guard above.
                if len(cands) > 1:
                    # np.stack copied the rows, so masking row b touches
                    # nothing the ranks still reference.
                    M[b] = np.inf
                    others = M.min(axis=0)
                else:
                    others = None
                while True:
                    self._dirty = False
                    step(best)
                    if self._dirty or best.phase != "op":
                        break
                    if others is None:
                        continue  # only resolvable rank; nobody to overtake
                    if bool((best.t < others).all()):
                        continue
                    break
                continue
            # Tied sweep: each tied rank runs — at the shared time —
            # until it parks or provably moves past the tie in every
            # element; then the next tied rank is exactly the rescan's
            # choice.  Any resolution (dirty) or ambiguity aborts to a
            # rescan, whose guard re-establishes (or refuses) the order.
            aborted = False
            for r in sweep:
                while True:
                    self._dirty = False
                    step(r)
                    if self._dirty:
                        aborted = True
                        break
                    if r.phase != "op":
                        break  # parked or done: next tied rank
                    if float(r.t[0]) == mb0:
                        if bool((r.t == mb).all()):
                            continue  # still at the tie: r keeps winning
                        aborted = True
                        break
                    if bool((r.t > mb).all()):
                        break  # strictly past the tie everywhere
                    aborted = True
                    break
                if aborted:
                    break
        return np.max(np.stack([r.finish for r in ranks]), axis=0)

    def _step(self, r) -> None:
        phase = r.phase
        if phase == "wait":
            self._complete_wait(r, r.wait_req, self.done_t[r.wait_req])
            r.phase = "op"
            return
        if phase == "coll":
            r.t = self.slots[r.coll_seq].done_t
            r.phase = "op"
            r.pc += 1
            return
        ops = r.ops
        pc = r.pc
        if r.act_i < len(r.acts):
            self._apply_actions(r, pc)
        if pc >= len(ops):
            if r.spawn:
                self._flush(r)
            r.finish = r.t
            r.phase = "done"
            return
        code = ops[pc]
        if code == OP_COMPUTE:
            cyc, off, act, busy, mem, nic = r.fargs[pc]
            end = self._run_seg(r.node, r.t, cyc, off, act, busy, mem, nic)
            if r.spawn:
                self._flush(r)
            r.t = end
            r.pc = pc + 1
        elif code == OP_IDLE:
            if r.spawn:
                self._flush(r)
            r.t = r.t + r.fargs[pc][0]
            r.pc = pc + 1
        elif code == OP_ISEND:
            r.spawn.append(r.rbase + r.iargs[pc])
            r.pc = pc + 1
        elif code == OP_IRECV:
            self._post_recv(r, r.rbase + r.iargs[pc])
            r.pc = pc + 1
        elif code == OP_WAIT:
            self._start_wait(r, r.rbase + r.iargs[pc])
        else:
            self._start_collective(r)

    def _post_recv(self, r, req_id: int) -> None:
        np = self.np
        self.posted_t[req_id] = r.t
        s_id = self.req_match[req_id]
        if self.req_eager[s_id]:
            dv = self.delivered_t[s_id]
            if dv is not None:
                self.done_t[req_id] = np.maximum(r.t, dv)
        elif self.rts_t[s_id] is not None and self.done_t[s_id] is None:
            self._complete_rndv(s_id)

    def _start_wait(self, r, req_id: int) -> None:
        np = self.np
        d = self.done_t[req_id]
        node = r.node
        if d is not None:
            le = d <= r.t
            if le.all():
                if self.req_kind[req_id] == REQ_RECV:
                    end = self._unpack(node, r.t, req_id)
                    if r.spawn:
                        self._flush(r)
                    r.t = end
                r.pc += 1
                return
            if le.any():
                # Already-triggered in some elements, blocking in others:
                # the wait-state push would apply to only part of the
                # batch and the two schedules diverge from here.
                raise StraightlineUnsupported("wait readiness diverges across batch",
                                              reason="divergent_control")
        self._emit(node, r.t, _EV_PUSH, self.wait_sig)
        if r.spawn:
            self._flush(r)
        d = self.done_t[req_id]
        if d is None:
            r.wait_req = req_id
            r.phase = "wait"
            return
        self._complete_wait(r, req_id, d)

    def _complete_wait(self, r, req_id: int, d) -> None:
        np = self.np
        if bool(np.any(d < r.t)):
            raise StraightlineUnsupported("wait resolved before block point",
                                          reason="wait_order")
        node = r.node
        self._emit(node, d, _EV_POP, self.wait_sig)
        r.t = d
        if self.req_kind[req_id] == REQ_RECV:
            r.t = self._unpack(node, d, req_id)
        r.pc += 1

    def _unpack(self, node, t, req_id: int):
        nbytes = self.req_nbytes[self.req_match[req_id]]
        return self._run_seg(
            node, t, self._recv_cycles(nbytes), 0.0, 1.0, 1.0, 0.4, 0.3
        )

    def _start_collective(self, r) -> None:
        np = self.np
        seq = r.iargs[r.pc]
        f = r.fargs[r.pc]
        wire = f[0]
        copy = f[1]
        node = r.node
        pack_end = self._run_seg(
            node, r.t,
            self.cost.collective_overhead_cycles
            + self.cost.pack_cycles_per_byte * copy,
            0.0, 1.0, 1.0, 0.4, 0.0,
        )
        if r.spawn:
            self._flush(r)
        self._emit(node, pack_end, _EV_PUSH, self.comm_sig)
        slot = self.slots[seq]
        slot.arrivals[r.rank] = pack_end
        slot.wires[r.rank] = wire
        r.t = pack_end
        r.coll_seq = seq
        r.phase = "coll"
        if len(slot.arrivals) == self.n:
            self._dirty = True  # unblocks every parked rank
            # max is associative and exact (result is an operand; no
            # NaN, no -0.0 in times), so the reduction order is free.
            all_at = np.max(np.stack(list(slot.arrivals.values())), axis=0)
            ratio = self.freq_ratio
            if self._has_gears:
                cur = np.max(np.stack([nd.freq_hz for nd in self.nodes]), axis=0)
                ratio = cur / self.fastest_hz
            duration = self._coll_vec(
                self.c.coll_kinds[seq], max(slot.wires.values()), ratio
            )
            slot.done_t = all_at + duration
            for rr in range(self.n):
                self._emit(self.nodes[rr], slot.done_t, _EV_POP, self.comm_sig)

    # -- accounting -----------------------------------------------------
    def _power_vec(self, key):
        v = self._pvec_cache.get(key)
        if v is None:
            per_power = _PVEC_CACHE.get(self.power)
            if per_power is None:
                per_power = _PVEC_CACHE[self.power] = {}
            gkey = (self.opoints, key)
            v = per_power.get(gkey)
            if v is None:
                power_w = self.power.node_power_w
                v = self.np.array(
                    [power_w(op, key[0], key[1], key[2]) for op in self.opoints]
                )
                per_power[gkey] = v
            self._pvec_cache[key] = v
        return v

    def finalize(self, t_end):
        """Per-node (B,) energies + per-node per-element time histograms.

        Same integration as the scalar :meth:`_Executor.finalize`, with
        every accumulator widened to (B,).  Events are totally ordered
        by element 0's times; a guard checks the order holds in every
        element (per-element processing must be chronological for the
        piecewise-constant integrals to be exact).  Elements reach
        their own ``t_end`` at different times: contributions beyond an
        element's end are masked to exact ``+0.0`` adds, freezing its
        accumulators the way the scalar loop's early break does.  The
        power-state machine (active segment, wait-state stack) is
        *shared* — signatures are program constants, identical across
        elements — and only per-element operating points index into
        per-key power vectors.
        """
        np = self.np
        energies = []
        hists = []
        for node in self.nodes:
            events = sorted(node.events, key=lambda e: (e[0][0], e[1]))
            T = None
            if events:
                T = np.stack([e[0] for e in events])
                if T.shape[0] > 1:
                    if bool(np.any(T[1:] < T[:-1])):
                        raise StraightlineUnsupported(
                            "event order diverges across batch",
                            reason="divergent_control",
                        )
                    # Same-time events order by seq; where the sort put a
                    # higher seq first (its element-0 time was smaller),
                    # every element must separate the pair strictly.
                    seqs = np.array([e[1] for e in events])
                    desc = seqs[:-1] > seqs[1:]
                    if bool(np.any(desc & np.any(T[1:] <= T[:-1], axis=1))):
                        raise StraightlineUnsupported(
                            "event order diverges across batch",
                            reason="divergent_control",
                        )
            if self._partial_gear:
                energy, node_hists = self._integrate_masked(node, events, t_end)
            else:
                energy, node_hists = self._integrate_matrix(
                    node, events, T, t_end
                )
            energies.append(energy)
            hists.append(node_hists)
        return energies, hists

    def _integrate_matrix(self, node, events, T, t_end):
        """Whole-event-list integration, one numpy pass per quantity.

        Valid when every recorded gear event applies to the full batch
        (no partial masks): the power-state machine is then shared and
        only the operating point and each element's own end time vary
        per element.  Exactness vs :meth:`_integrate_masked`: boundary
        times are clamped to ``t_end`` so intervals past an element's
        end contribute exact ``+0.0``; the energy fold is ``np.cumsum``
        along the event axis — the same left-to-right sequential
        additions as the per-event loop — and each histogram cell is
        ``np.bincount``'s single in-order pass over the same addends.
        """
        np = self.np
        B = self.B
        idle = self.power.cpu_idle_activity
        idle_key = (idle, 0.0, 0.0)
        mhz_tab = self.mhz_tab
        opi0 = node.start_opi
        n_ev = len(events)

        # Shared power-state machine (pure Python): the key in effect
        # after each meter-visible (non-TOUCH) event, plus gear sites.
        keys: list[tuple] = []
        nontouch: list[int] = []
        gears: list[tuple] = []  # (event index, non-TOUCH position, opi array)
        active = None
        stack: list[tuple] = []
        for i in range(n_ev):
            kind = events[i][2]
            payload = events[i][3]
            if kind == _EV_TOUCH:
                continue
            if kind == _EV_START:
                active = payload
            elif kind == _EV_END:
                active = None
            elif kind == _EV_PUSH:
                stack.append(payload)
            elif kind == _EV_POP:
                for j in range(len(stack) - 1, -1, -1):
                    if stack[j] == payload:
                        del stack[j]
                        break
            else:  # _EV_GEAR
                gears.append((i, len(keys), payload))
            if active is not None:
                key = (active[0], active[2], active[3])
            elif stack:
                top = stack[-1]
                dyn = top[0] if top[0] > idle else idle
                key = (dyn, top[2], top[3])
            else:
                key = idle_key
            keys.append(key)
            nontouch.append(i)
        m = len(keys)

        # Power id per energy interval: interval i runs from boundary i
        # to i+1 under the state after the first i non-TOUCH events.
        key_ids: dict = {}
        kid = np.empty(m + 1, dtype=np.intp)
        kid[0] = key_ids.setdefault(idle_key, 0)
        for i, k in enumerate(keys):
            v = key_ids.get(k)
            if v is None:
                v = key_ids[k] = len(key_ids)
            kid[i + 1] = v
        pmat = np.stack([self._power_vec(k) for k in key_ids])

        start_mhz = mhz_tab[opi0]
        row_maps: list[dict] = [{float(start_mhz[k]): 0} for k in range(B)]
        if gears:
            OPI = np.empty((m + 1, B), dtype=np.intp)
            ROW = np.empty((n_ev + 1, B), dtype=np.intp)
            cur_opi = opi0
            cur_row = np.zeros(B, dtype=np.intp)
            prev_e = prev_h = 0
            for g_h, g_e, payload in gears:
                OPI[prev_e:g_e + 1] = cur_opi
                ROW[prev_h:g_h + 1] = cur_row
                cur_opi = payload
                mhz_new = mhz_tab[payload]
                cur_row = np.empty(B, dtype=np.intp)
                for k in range(B):
                    mm = float(mhz_new[k])
                    rm = row_maps[k]
                    rw = rm.get(mm)
                    if rw is None:
                        rw = rm[mm] = len(rm)
                    cur_row[k] = rw
                prev_e, prev_h = g_e + 1, g_h + 1
            OPI[prev_e:] = cur_opi
            ROW[prev_h:] = cur_row
            P = pmat[kid[:, None], OPI]
        else:
            ROW = None
            P = pmat[kid][:, opi0]

        # Boundaries, clamped per element: [0, t_0, ..., t_last, t_end].
        if n_ev:
            Tc = np.minimum(T, t_end)
            Te = Tc if m == n_ev else Tc[np.array(nontouch, dtype=np.intp)]
        BE = np.empty((m + 2, B))
        BE[0] = 0.0
        if m:
            BE[1:m + 1] = Te
        BE[m + 1] = t_end
        C = P * (BE[1:] - BE[:-1])
        energy = np.cumsum(C, axis=0)[-1]

        BH = np.empty((n_ev + 2, B))
        BH[0] = 0.0
        if n_ev:
            BH[1:n_ev + 1] = Tc
        BH[n_ev + 1] = t_end
        DTh = BH[1:] - BH[:-1]
        node_hists = []
        if ROW is None:
            tot = np.cumsum(DTh, axis=0)[-1]
            for k in range(B):
                v = float(tot[k])
                node_hists.append({float(start_mhz[k]): v} if v != 0.0 else {})
        else:
            for k in range(B):
                rm = row_maps[k]
                vals = np.bincount(
                    ROW[:, k], weights=DTh[:, k], minlength=len(rm)
                )
                hk = {}
                for mm, rw in rm.items():
                    v = float(vals[rw])
                    if v != 0.0:
                        hk[mm] = v
                node_hists.append(hk)
        return energy, node_hists

    def _integrate_masked(self, node, events, t_end):
        """Per-event integration with element masks (partial gear
        changes present: some gear events apply to only part of the
        batch, so the operating-point/histogram state must advance
        under each event's own mask)."""
        np = self.np
        B = self.B
        cols = np.arange(B)
        idle = self.power.cpu_idle_activity
        idle_key = (idle, 0.0, 0.0)
        mhz_tab = self.mhz_tab
        opi = node.start_opi
        p_cur = self._power_vec(idle_key)[opi]
        t_last_e = np.zeros(B)
        t_last_t = np.zeros(B)
        energy = np.zeros(B)
        # Histogram: H[row, k] is element k's row-th distinct MHz.
        row_maps: list[dict] = [{} for _ in range(B)]
        start_mhz = mhz_tab[opi]
        for k in range(B):
            row_maps[k][float(start_mhz[k])] = 0
        row_cur = np.zeros(B, dtype=np.intp)
        H = np.zeros((1, B))
        active = None
        stack: list[tuple] = []
        for t, seq, kind, payload, emask in events:
            tm = t <= t_end
            if emask is not None:
                tm = tm & emask
            dt = np.where(tm, t - t_last_t, 0.0)
            H[row_cur, cols] += dt
            t_last_t = np.where(tm, t, t_last_t)
            if kind == _EV_TOUCH:
                continue
            dte = np.where(tm, t - t_last_e, 0.0)
            energy = energy + p_cur * dte
            t_last_e = np.where(tm, t, t_last_e)
            if kind == _EV_START:
                active = payload
            elif kind == _EV_END:
                active = None
            elif kind == _EV_PUSH:
                stack.append(payload)
            elif kind == _EV_POP:
                for j in range(len(stack) - 1, -1, -1):
                    if stack[j] == payload:
                        del stack[j]
                        break
            else:  # _EV_GEAR
                opi = np.where(tm, payload, opi)
                mhz_new = mhz_tab[payload]
                n_rows = H.shape[0]
                for k in np.nonzero(tm)[0]:
                    m = float(mhz_new[k])
                    rm = row_maps[k]
                    rw = rm.get(m)
                    if rw is None:
                        rw = len(rm)
                        rm[m] = rw
                        if rw >= n_rows:
                            H = np.vstack([H, np.zeros((1, B))])
                            n_rows += 1
                    row_cur[k] = rw
            if active is not None:
                key = (active[0], active[2], active[3])
            elif stack:
                top = stack[-1]
                dyn = top[0] if top[0] > idle else idle
                key = (dyn, top[2], top[3])
            else:
                key = idle_key
            p_cur = np.where(tm, self._power_vec(key)[opi], p_cur)
        dtf = t_end - t_last_t
        H[row_cur, cols] += np.where(dtf > 0.0, dtf, 0.0)
        energy = energy + p_cur * (t_end - t_last_e)
        node_hists = []
        for k in range(B):
            hk = {}
            for m, rw in row_maps[k].items():
                v = H[rw, k]
                if v != 0.0:
                    hk[m] = float(v)
            node_hists.append(hk)
        return energy, node_hists


def _start_indices(plan, opoints, nprocs: int) -> list[int]:
    """Post-setup operating-point index per rank for one plan."""
    if plan.start_mhz_per_rank is not None:
        if len(plan.start_mhz_per_rank) != nprocs:
            # The scalar path's strategy.setup raises the real error.
            raise StraightlineUnsupported("per-node plan length mismatch")
        return [
            opoints.index_of(opoints.by_mhz(m)) for m in plan.start_mhz_per_rank
        ]
    if plan.start_mhz is not None:
        return [opoints.index_of(opoints.by_mhz(plan.start_mhz))] * nprocs
    return [opoints.max_index] * nprocs


# ----------------------------------------------------------------------
# node-major vectorized tier: one interpreter rank per execution group
# ----------------------------------------------------------------------
#: compiled program -> {execution partition: quotient CompiledProgram}.
#: A quotient program holds one representative rank per execution group
#: and shares every body array with the original, so it costs a handful
#: of small objects per distinct partition.
_QUOTIENT_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _vector_partition(compiled: CompiledProgram, point_key):
    """Execution groups: body groups refined by per-rank gear state.

    Two ranks may share one interpreter rank only when they share a
    program body *and* identical gear state at every instant of the run
    — ``point_key(rank)`` must capture the post-setup operating point
    and the lowered gear actions.  Returns ``((exec_of, members), None)``
    with group ids in first-rank order, or ``(None, reason)`` when the
    refinement degenerates to one rank per group (nothing to share,
    ``no_compression``), the compiler found no groups (``no_groups``),
    or the program's point-to-point traffic does not classify into
    exact group-level channel classes (the classifier's ``p2p_*``
    code — see :func:`repro.workloads.compile.classify_channels`).
    """
    if compiled.group_of is None:
        return None, "no_groups"
    gof = compiled.group_of
    sig_to_exec: dict = {}
    exec_of: list[int] = []
    members: list[list[int]] = []
    for r in range(compiled.nprocs):
        sig = (int(gof[r]), point_key(r))
        e = sig_to_exec.get(sig)
        if e is None:
            e = sig_to_exec[sig] = len(members)
            members.append([])
        exec_of.append(e)
        members[e].append(r)
    if len(members) >= compiled.nprocs:
        return None, "no_compression"
    if compiled.n_requests:
        verdict = classify_channels(compiled, exec_of, members)
        if not verdict.exact:
            return None, verdict.reason
    return (exec_of, members), None


def _quotient_program(compiled: CompiledProgram, exec_of: list[int],
                      members: list[list[int]]) -> CompiledProgram:
    """A ``CompiledProgram`` over one representative rank per group.

    Shares the representatives' body arrays by reference; only the tiny
    per-rank index vectors are new.  Collective call-site seqs are
    global already, so every representative arrives at the same slots
    the full program would.

    When the program carries point-to-point traffic (admitted only
    after :func:`repro.workloads.compile.classify_channels` certified
    the partition), the request table is *remapped*: the quotient keeps
    each representative's request rows, re-bases them contiguously, and
    rewrites peers to the peer's execution group — sound because every
    lane holds one member per group, so "the peer's group's rank" in
    the quotient plays exactly the peer's role in the representative's
    lane, and matched requests sit at the same rank-local index in
    every lane.
    """
    import numpy as np

    per_prog = _QUOTIENT_CACHE.get(compiled)
    if per_prog is None:
        per_prog = _QUOTIENT_CACHE[compiled] = {}
    key = tuple(exec_of)
    q = per_prog.get(key)
    if q is None:
        reps = [m[0] for m in members]
        G = len(reps)
        if compiled.n_requests:
            base = compiled.req_base
            counts = np.diff(base, append=compiled.n_requests)
            rep_counts = counts[reps]
            new_base = np.zeros(G, dtype=np.int64)
            np.cumsum(rep_counts[:-1], out=new_base[1:])
            sel = (
                np.concatenate(
                    [
                        np.arange(base[r], base[r] + counts[r])
                        for r in reps
                    ]
                )
                if int(rep_counts.sum())
                else np.zeros(0, dtype=np.int64)
            )
            eo = np.asarray(exec_of, dtype=np.int64)
            peers = compiled.req_peer[sel]
            req_rows = dict(
                req_kind=compiled.req_kind[sel],
                req_owner=np.repeat(np.arange(G, dtype=np.int64),
                                    rep_counts),
                req_peer=eo[peers],
                req_tag=compiled.req_tag[sel],
                req_nbytes=compiled.req_nbytes[sel],
                req_eager=compiled.req_eager[sel],
                req_match=(
                    new_base[eo[peers]]
                    + (compiled.req_match[sel] - base[peers])
                ),
            )
        else:
            new_base = np.zeros(G, dtype=np.int64)
            req_rows = dict(
                req_kind=compiled.req_kind,
                req_owner=compiled.req_owner,
                req_peer=compiled.req_peer,
                req_tag=compiled.req_tag,
                req_nbytes=compiled.req_nbytes,
                req_eager=compiled.req_eager,
                req_match=compiled.req_match,
            )
        q = CompiledProgram(
            nprocs=G,
            fastest_hz=compiled.fastest_hz,
            ops=[compiled.ops[r] for r in reps],
            iargs=[compiled.iargs[r] for r in reps],
            fargs=[compiled.fargs[r] for r in reps],
            coll_kinds=compiled.coll_kinds,
            markers=tuple(compiled.markers[r] for r in reps),
            req_base=new_base,
            group_of=np.arange(G, dtype=np.int64),
            group_members=tuple(
                np.array([g], dtype=np.int64) for g in range(G)
            ),
            **req_rows,
        )
        per_prog[key] = q
    return q


def _gear_event_counts(node, B=None):
    """Per-element count of gear transitions recorded on one node.

    The executors increment their transition counters exactly once per
    emitted ``_EV_GEAR`` event (setup-time speed calls never emit), so
    counting events recovers the per-node share of the total — which a
    quotient run needs to weight by group size.  ``B`` selects the
    batch event layout (masked events count only masked elements).
    """
    if B is None:
        return sum(1 for ev in node.events if ev[2] == _EV_GEAR)
    import numpy as np

    cnt = np.zeros(B, dtype=np.int64)
    for ev in node.events:
        if ev[2] == _EV_GEAR:
            mask = ev[4]
            cnt += 1 if mask is None else mask
    return cnt


def _merge_hists_nodewise(nprocs: int, members: list[list[int]],
                          hists_g: list[dict]) -> dict:
    """Node-order merge of per-group histograms into one ``time_at``.

    Replicates the scalar tail's fold — ``time_at[mhz] += hists[nid]
    [mhz]`` for ``nid`` in id order — as one ``np.cumsum`` over an
    (N,) node-order vector per distinct MHz key.  Exact: ``cumsum`` is
    the same left-to-right sequential addition chain, and the zeros
    standing in for nodes without the key add exactly ``+0.0`` (every
    recorded duration is positive, so no ``-0.0`` can flip sign).
    """
    import numpy as np

    keys: list = []
    seen: set = set()
    for h in hists_g:
        for m in h:
            if m not in seen:
                seen.add(m)
                keys.append(m)
    time_at: dict = {}
    for m in keys:
        v = np.zeros(nprocs)
        for g, mem in enumerate(members):
            s = hists_g[g].get(m)
            if s is not None:
                v[mem] = s
        time_at[m] = float(np.cumsum(v)[-1])
    return time_at


def _run_grouped(compiled: CompiledProgram, members: list[list[int]],
                 qprog: CompiledProgram, cost, net, power, opoints,
                 start_idx: list[int], actions, transition_latency_s: float):
    """Evaluate a static/piecewise-static run on the quotient program.

    Interprets one representative rank per execution group (``coll_n``
    keeps collective durations modelling the full N-rank communicator)
    and broadcasts the per-group results over the member nodes with
    numpy fancy indexing.  Exactness: with no point-to-point traffic,
    ranks in one execution group compute identical float chains — the
    only cross-rank couplings are collective completions, and ``max``
    over the distinct per-group values equals ``max`` over the full
    rank set bit-for-bit (the result is always an operand).

    Returns ``(t_end, e_nodes, time_at, transitions)`` with ``e_nodes``
    an (N,) array of per-node energies.
    """
    import numpy as np

    reps = [m[0] for m in members]
    max_idx = opoints.max_index
    nodes = []
    for r in reps:
        idx = start_idx[r]
        op = opoints[idx]
        stall = transition_latency_s if idx != max_idx else 0.0
        nodes.append(_Node(op.frequency_hz, op.frequency_mhz, op, stall, idx))
    ex = _Executor(
        qprog, cost, net, power, nodes, opoints=opoints,
        gear_actions=[actions[r] for r in reps] if actions else None,
        transition_latency_s=transition_latency_s,
        coll_n=compiled.nprocs,
    )
    t_end = ex.run()
    energies_g, hists_g = ex.finalize(t_end)

    counts = np.array([len(m) for m in members], dtype=np.int64)
    trans_g = np.array([_gear_event_counts(nd) for nd in nodes],
                       dtype=np.int64)
    transitions = int(np.dot(counts, trans_g))
    e_nodes = np.empty(compiled.nprocs)
    for g, mem in enumerate(members):
        e_nodes[mem] = energies_g[g]
    time_at = _merge_hists_nodewise(compiled.nprocs, members, hists_g)
    return t_end, e_nodes, time_at, transitions


def run_batch(
    workload,
    points,
    *,
    network_params=None,
    power=None,
    opoints=None,
    transition_latency_s: float = 20e-6,
    vector: bool = True,
    stats: Optional[dict] = None,
):
    """Measure many ``(strategy, seed)`` points of one workload at once.

    Returns one :class:`Measurement` per point, in input order, each
    bit-for-bit equal to what :func:`run_straightline` (and therefore
    the event engine) produces for that point.  Points whose gear plans
    share the same action *shape* (the hook positions where calls fire)
    are evaluated together by :class:`_BatchExecutor` as (B,) arrays;
    the seed is accepted for signature parity but cannot influence a
    straightline-eligible run (no fault injection, no jitter — nothing
    draws randomness).  Groups whose control flow diverges across
    elements are split and retried, down to scalar runs.

    With ``vector`` (default on), a batch whose execution partition the
    classifier certifies (including point-to-point traffic with exact
    group-level channel classes — see
    :func:`repro.workloads.compile.classify_channels`) runs on the
    quotient program — one interpreter rank per execution group shared
    by *every point of the batch* — so a (B points × N nodes) sweep
    costs (B × G) work.  A quotient batch whose control flow diverges
    *across batch elements* splits directly (the per-rank batch would
    diverge on the same lanes); one the classifier declines falls back
    to the per-rank batch before any splitting.

    ``stats``, when given, accumulates tier telemetry: points measured
    per tier (``quotient_points`` / ``per_rank_points`` /
    ``scalar_points``), bisection ``splits``, and a
    ``fallback_reasons`` histogram of every quotient decline.

    Raises :class:`StraightlineUnsupported` (dynamic strategy) or
    :class:`~repro.workloads.compile.CompileError` like the scalar
    entry point; callers fall back to the event engine per point.
    """
    import numpy as np

    from repro.core.framework import Measurement
    from repro.core.strategies.base import NoDvsStrategy
    from repro.hardware.network import NetworkParameters
    from repro.hardware.opoints import PENTIUM_M_TABLE
    from repro.hardware.power import NEMO_POWER

    power = NEMO_POWER if power is None else power
    opoints = PENTIUM_M_TABLE if opoints is None else opoints
    net = network_params if network_params is not None else NetworkParameters()
    points = [(s or NoDvsStrategy(), seed) for s, seed in points]
    if not points:
        return []
    compiled = compile_workload(workload, opoints.fastest.frequency_hz)

    groups: dict[tuple, list[int]] = {}
    prepared: dict[int, tuple] = {}
    for i, (strat, _seed) in enumerate(points):
        plan = strat.gear_plan(workload)
        if plan is None:
            raise StraightlineUnsupported(
                "strategy has no static gear plan (dynamic DVS)",
                reason="no_plan",
            )
        acts = _lower_gear_actions(compiled, plan, opoints)
        start = _start_indices(plan, opoints, workload.nprocs)
        sig = tuple(tuple(pos for pos, _t in rank_acts) for rank_acts in acts)
        groups.setdefault(sig, []).append(i)
        prepared[i] = (start, acts)

    cost = workload.cost_model()
    results: list = [None] * len(points)

    def _note(key: str, n: int = 1) -> None:
        if stats is not None:
            stats[key] = stats.get(key, 0) + n

    def _note_reason(reason: Optional[str]) -> None:
        if stats is not None and reason:
            hist = stats.setdefault("fallback_reasons", {})
            hist[reason] = hist.get(reason, 0) + 1

    def scalar(i: int):
        _note("scalar_points")
        strat, seed = points[i]
        return run_straightline(
            workload,
            strat,
            seed=seed,
            network_params=network_params,
            power=power,
            opoints=opoints,
            transition_latency_s=transition_latency_s,
        )

    quotient_able = vector and compiled.group_of is not None

    def evaluate(idxs: list[int]) -> None:
        if len(idxs) == 1:
            results[idxs[0]] = scalar(idxs[0])
            return
        try:
            batch_measure(idxs)
        except StraightlineUnsupported:
            # Divergent control flow: smaller batches share more of it.
            _note("splits")
            mid = len(idxs) // 2
            evaluate(idxs[:mid])
            evaluate(idxs[mid:])

    def grouped_batch(idxs: list[int]) -> bool:
        """Quotient-program batch: (B, G) work for a (B, N) sweep.

        The execution partition must hold for *every* point of the
        batch at once (one quotient program serves the whole batch),
        so body groups are refined by each rank's start index and
        lowered actions across all points.  Per-group results broadcast
        to member nodes exactly as the scalar grouped path.
        """
        part, reason = _vector_partition(
            compiled,
            lambda r: (
                tuple(prepared[i][0][r] for i in idxs),
                tuple(tuple(prepared[i][1][r]) for i in idxs),
            ),
        )
        if part is None:
            _note_reason(reason)
            return False
        exec_of, members = part
        reps = [m[0] for m in members]
        qprog = _quotient_program(compiled, exec_of, members)
        B = len(idxs)
        start_idx = [
            np.array([prepared[i][0][r] for i in idxs], dtype=np.intp)
            for r in reps
        ]
        gear_actions = []
        for r in reps:
            template = prepared[idxs[0]][1][r]
            acts = []
            for a, (pos, _t) in enumerate(template):
                targets = np.array(
                    [prepared[i][1][r][a][1] for i in idxs], dtype=np.intp
                )
                acts.append((pos, targets))
            gear_actions.append(acts)
        ex = _BatchExecutor(
            qprog, cost, net, power, opoints, start_idx, gear_actions,
            transition_latency_s, coll_n=workload.nprocs,
        )
        t_end = ex.run()
        energies_g, hists_g = ex.finalize(t_end)
        counts = np.array([len(m) for m in members], dtype=np.int64)
        trans_mat = np.stack(
            [_gear_event_counts(nd, B) for nd in ex.nodes]
        )  # (G, B)
        trans = counts @ trans_mat
        node_ids = list(range(workload.nprocs))
        e_nodes = np.empty((workload.nprocs, B))
        for g, mem in enumerate(members):
            e_nodes[mem] = energies_g[g]
        for k, i in enumerate(idxs):
            strat, _seed = points[i]
            per_node = {nid: float(e_nodes[nid][k]) for nid in node_ids}
            time_at = _merge_hists_nodewise(
                workload.nprocs, members, [h[k] for h in hists_g]
            )
            results[i] = Measurement(
                workload=workload.tag,
                strategy=strat.describe(),
                elapsed_s=float(t_end[k]),
                energy_j=sum(per_node.values()),
                per_node_energy_j=per_node,
                dvs_transitions=int(trans[k]),
                time_at_mhz=time_at,
                acpi_energy_j=None,
                baytech_energy_j=None,
                trace=None,
                report=None,
                extras={},
            )
        return True

    def batch_measure(idxs: list[int]) -> None:
        if quotient_able:
            try:
                if grouped_batch(idxs):
                    _note("quotient_points", len(idxs))
                    return
            except StraightlineUnsupported as exc:
                _note_reason(getattr(exc, "reason", "unsupported"))
                if getattr(exc, "reason", "") == "divergent_control":
                    # The quotient lanes diverged across batch elements;
                    # the per-rank batch interprets those same lanes, so
                    # split right away instead of paying an N-rank
                    # attempt that is all but certain to diverge too.
                    raise
                # Anything else: the per-rank batch may still hold.
        B = len(idxs)
        start_idx = [
            np.array([prepared[i][0][r] for i in idxs], dtype=np.intp)
            for r in range(workload.nprocs)
        ]
        gear_actions = []
        for r in range(workload.nprocs):
            template = prepared[idxs[0]][1][r]
            acts = []
            for a, (pos, _t) in enumerate(template):
                targets = np.array(
                    [prepared[i][1][r][a][1] for i in idxs], dtype=np.intp
                )
                acts.append((pos, targets))
            gear_actions.append(acts)
        ex = _BatchExecutor(
            compiled, cost, net, power, opoints, start_idx, gear_actions,
            transition_latency_s,
        )
        t_end = ex.run()
        energies, hists = ex.finalize(t_end)
        node_ids = list(range(workload.nprocs))
        for k, i in enumerate(idxs):
            strat, _seed = points[i]
            per_node = {nid: float(energies[nid][k]) for nid in node_ids}
            time_at: dict[float, float] = {}
            for nid in node_ids:
                for mhz, secs in hists[nid][k].items():
                    time_at[mhz] = time_at.get(mhz, 0.0) + secs
            results[i] = Measurement(
                workload=workload.tag,
                strategy=strat.describe(),
                elapsed_s=float(t_end[k]),
                energy_j=sum(per_node.values()),
                per_node_energy_j=per_node,
                dvs_transitions=int(ex.transitions[k]),
                time_at_mhz=time_at,
                acpi_energy_j=None,
                baytech_energy_j=None,
                trace=None,
                report=None,
                extras={},
            )
        _note("per_rank_points", len(idxs))

    for idxs in groups.values():
        evaluate(idxs)
    return results
