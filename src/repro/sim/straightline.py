"""Straightline executor: static-gear runs without an event heap.

For a run whose operating points never change (no-DVS baseline, the
EXTERNAL strategy), fault-free and untraced, every quantity the event
engine produces is a closed-form chain of float operations: segment end
times are chained sums, per-node energy is a piecewise-constant
integral over state-change breakpoints, and collectives complete a
fixed duration after the last arrival.  This module evaluates a
:class:`~repro.workloads.compile.CompiledProgram` by direct
accumulation — no heap, no generators — replicating the event engine's
arithmetic *in the same order*, so every :class:`Measurement` summary
field is bit-for-bit identical to the event engine's.

The replication contract (pinned by
``tests/sim/test_straightline_equivalence.py``):

* segments start at ``max(enqueue time, CPU free time)`` and last
  ``max(0, stall_until - start) + cycles / f + offchip`` — the exact
  expression ``CpuCore._duration`` evaluates;
* energy accumulates one ``energy += power * dt`` term per state-change
  breakpoint with ``dt > 0`` plus a final ``power * (T_end - t_last)``
  term — the exact sequence ``EnergyMeter`` produces, using
  ``NodePowerParameters.node_power_w`` itself for every power value;
* network channel grants are FIFO per node: ``grant = max(request,
  channel_free)``, serialization from the rx grant, releases at
  serialization end, delivery one latency later — matching
  ``Network._transfer`` over the engine's synchronous-grant
  :class:`Resource`;
* collectives complete at ``max(arrival times) + collective_seconds``.

Anything whose timing the executor cannot order deterministically (a
channel request arriving before one already granted, a rank-dependency
cycle) raises :class:`StraightlineUnsupported`; ``run_workload`` falls
back to the event engine, which also reproduces genuine program errors
(deadlocks, mismatched collectives).
"""

from __future__ import annotations

from typing import Optional
from weakref import WeakKeyDictionary

from repro.workloads.compile import (
    OP_COLLECTIVE,
    OP_COMPUTE,
    OP_IDLE,
    OP_IRECV,
    OP_ISEND,
    OP_WAIT,
    REQ_RECV,
    CompiledProgram,
    CompileError,
    compile_workload,
)

__all__ = ["StraightlineUnsupported", "run_straightline", "try_run_straightline"]


class StraightlineUnsupported(RuntimeError):
    """The run cannot be evaluated on the straightline tier.

    Raised when the configuration is ineligible (dynamic strategy,
    faults, tracing) or when execution hits an ordering the direct
    accumulator cannot reproduce deterministically.  Callers fall back
    to the event engine.
    """


# Event kinds in the per-node breakpoint list.
_EV_START = 0  # a segment becomes active: payload (act, busy, mem, nic)
_EV_END = 1  # the active segment completes
_EV_PUSH = 2  # push a wait-state token: payload (act, busy, mem, nic)
_EV_POP = 3  # pop the topmost matching wait-state token


_LISTS_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _program_lists(compiled: CompiledProgram) -> tuple:
    """Python-list view of a compiled program, memoized per program."""
    lists = _LISTS_CACHE.get(compiled)
    if lists is None:
        lists = (
            [a.tolist() for a in compiled.ops],
            [a.tolist() for a in compiled.iargs],
            [a.tolist() for a in compiled.fargs],
            compiled.req_kind.tolist(),
            compiled.req_owner.tolist(),
            compiled.req_peer.tolist(),
            compiled.req_nbytes.tolist(),
            compiled.req_eager.tolist(),
            compiled.req_match.tolist(),
        )
        _LISTS_CACHE[compiled] = lists
    return lists


class _Node:
    """Static per-node state + the breakpoint event list."""

    __slots__ = ("freq_hz", "mhz", "opoint", "stall_until", "cpu_free", "events")

    def __init__(self, freq_hz: float, mhz: float, opoint, stall_until: float) -> None:
        self.freq_hz = freq_hz
        self.mhz = mhz
        self.opoint = opoint
        self.stall_until = stall_until
        self.cpu_free = 0.0
        self.events: list[tuple] = []  # (t, seq, kind, payload)


class _Chan:
    """One simplex network channel (a capacity-1 FIFO resource)."""

    __slots__ = ("free", "max_req")

    def __init__(self) -> None:
        self.free = 0.0
        self.max_req = 0.0


class _Slot:
    """One collective call site (mirrors ``_CollectiveSlot``)."""

    __slots__ = ("arrivals", "wires", "done_t")

    def __init__(self) -> None:
        self.arrivals: dict[int, float] = {}
        self.wires: dict[int, float] = {}
        self.done_t: Optional[float] = None


class _Rank:
    __slots__ = ("rank", "pc", "t", "phase", "wait_req", "coll_seq", "spawn",
                 "finish", "ops", "iargs", "fargs", "node")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.pc = 0
        self.t = 0.0
        self.phase = "op"  # op | wait | coll | done
        self.wait_req = -1
        self.coll_seq = -1
        self.spawn: list[int] = []
        self.finish = 0.0
        # Filled by the executor: this rank's program + its node, so the
        # dispatch loop avoids a per-op double index.
        self.ops: list[int] = []
        self.iargs: list[int] = []
        self.fargs: list = []
        self.node: Optional[_Node] = None


class _Executor:
    """Direct-accumulation interpreter for one compiled run."""

    def __init__(self, compiled: CompiledProgram, cost, net_params, power_params,
                 nodes: list[_Node]) -> None:
        self.c = compiled
        self.cost = cost
        self.net = net_params
        self.power = power_params
        self.nodes = nodes
        self.n = compiled.nprocs
        self.fastest_hz = compiled.fastest_hz
        # Engine: Communicator._max_freq_ratio() over the (static) ranks.
        self.freq_ratio = (
            max(nd.freq_hz for nd in nodes) / compiled.fastest_hz
        )
        # Python lists of Python floats/ints: the accumulation must use
        # the same scalar arithmetic as the event engine, not numpy's.
        # The conversion is pure and the program immutable, so it is
        # shared across every point of a sweep.
        (self.ops, self.iargs, self.fargs, self.req_kind, self.req_owner,
         self.req_peer, self.req_nbytes, self.req_eager,
         self.req_match) = _program_lists(compiled)
        nreq = compiled.n_requests
        self.done_t: list[Optional[float]] = [None] * nreq
        self.posted_t: list[Optional[float]] = [None] * nreq
        self.delivered_t: list[Optional[float]] = [None] * nreq
        self.rts_t: list[Optional[float]] = [None] * nreq
        self.wire: list[float] = [0.0] * nreq
        self.tx = [_Chan() for _ in range(self.n)]
        self.rx = [_Chan() for _ in range(self.n)]
        self.slots = [_Slot() for _ in compiled.coll_kinds]
        self.ranks = [_Rank(r) for r in range(self.n)]
        for r in self.ranks:
            r.ops = self.ops[r.rank]
            r.iargs = self.iargs[r.rank]
            r.fargs = self.fargs[r.rank]
            r.node = nodes[r.rank]
        self._seq = 0
        self._dirty = False
        self.comm_sig = cost.comm_progress.as_tuple()
        self.wait_sig = cost.blocked_wait.as_tuple()
        # Bound-method caches for the interpreter's hottest calls.
        self._send_cycles = cost.send_cycles
        self._recv_cycles = cost.recv_cycles
        self._p2p_wire_bytes = cost.p2p_wire_bytes

    # ------------------------------------------------------------------
    # breakpoint emission + the CPU FIFO
    # ------------------------------------------------------------------
    def _emit(self, node: _Node, t: float, kind: int, payload=None) -> None:
        self._seq += 1
        node.events.append((t, self._seq, kind, payload))

    def _run_seg(self, node: _Node, t_req: float, cycles: float, offchip: float,
                 act: float, busy: float, mem: float, nic: float) -> float:
        """Enqueue one work segment; returns its completion time.

        Start and duration reproduce ``CpuCore``: the segment starts
        when the FIFO drains (or immediately), consumes any pending
        transition stall, then runs ``cycles`` at the static clock.
        """
        start = t_req if t_req > node.cpu_free else node.cpu_free
        stall = node.stall_until - start
        if stall < 0.0:
            stall = 0.0
        planned = stall + cycles / node.freq_hz + offchip
        end = start + planned
        seq = self._seq
        events = node.events
        events.append((start, seq + 1, _EV_START, (act, busy, mem, nic)))
        events.append((end, seq + 2, _EV_END, None))
        self._seq = seq + 2
        node.cpu_free = end
        return end

    # ------------------------------------------------------------------
    # network channels (Resource with synchronous FIFO grants)
    # ------------------------------------------------------------------
    def _grant(self, chan: _Chan, t_req: float) -> float:
        if t_req < chan.max_req and t_req < chan.free:
            # A request earlier than one already granted while the
            # channel is busy: the engine would have granted this one
            # first.  The straightline order is wrong — bail out.
            raise StraightlineUnsupported("out-of-order network channel demand")
        if t_req > chan.max_req:
            chan.max_req = t_req
        return t_req if t_req > chan.free else chan.free

    def _transfer(self, src: int, dst: int, nbytes: float, t0: float) -> float:
        """Wire a message; returns its delivery time (``Network._transfer``)."""
        if src == dst:
            return t0 + nbytes / (400e6)
        tx, rx = self.tx[src], self.rx[dst]
        g1 = self._grant(tx, t0)
        g2 = self._grant(rx, g1)
        ser_end = g2 + self.net.serialization_s(nbytes)
        tx.free = ser_end
        rx.free = ser_end
        return ser_end + self.net.latency_s

    # ------------------------------------------------------------------
    # send-proc chains
    # ------------------------------------------------------------------
    def _flush(self, rank: _Rank) -> None:
        """Run the rank's pending send procs (they start at its yields)."""
        if not rank.spawn:
            return
        pending, rank.spawn = rank.spawn, []
        for req_id in pending:
            self._run_send_chain(req_id, rank.t)

    def _run_send_chain(self, s_id: int, ft: float) -> None:
        self._dirty = True  # may resolve the peer's recv request
        src = self.req_owner[s_id]
        dst = self.req_peer[s_id]
        nbytes = self.req_nbytes[s_id]
        node = self.nodes[src]
        ratio = node.freq_hz / self.fastest_hz
        self.wire[s_id] = self._p2p_wire_bytes(nbytes, ratio)
        sw_end = self._run_seg(
            node, ft, self._send_cycles(nbytes), 0.0, 1.0, 1.0, 0.0, 0.4
        )
        r_id = self.req_match[s_id]
        if self.req_eager[s_id]:
            # MPI_Send may return once the buffer is copied out.
            self.done_t[s_id] = sw_end
            delivered = self._transfer(src, dst, self.wire[s_id], sw_end)
            self.delivered_t[s_id] = delivered
            pt = self.posted_t[r_id]
            if pt is not None:
                self.done_t[r_id] = pt if pt > delivered else delivered
        else:
            # Rendezvous: RTS rides one latency; transfer starts at CTS.
            self.rts_t[s_id] = sw_end + self.net.latency_s
            if self.posted_t[r_id] is not None:
                self._complete_rndv(s_id)

    def _complete_rndv(self, s_id: int) -> None:
        self._dirty = True  # resolves requests on both sides
        r_id = self.req_match[s_id]
        rts = self.rts_t[s_id]
        pt = self.posted_t[r_id]
        cts = pt if pt > rts else rts  # CTS fires when both sides met
        src = self.req_owner[s_id]
        dst = self.req_peer[s_id]
        src_node, dst_node = self.nodes[src], self.nodes[dst]
        # Both CPUs progress the message for the whole transfer.
        self._emit(src_node, cts, _EV_PUSH, self.comm_sig)
        self._emit(dst_node, cts, _EV_PUSH, self.comm_sig)
        delivered = self._transfer(src, dst, self.wire[s_id], cts)
        self._emit(src_node, delivered, _EV_POP, self.comm_sig)
        self._emit(dst_node, delivered, _EV_POP, self.comm_sig)
        self.delivered_t[s_id] = delivered
        self.done_t[s_id] = delivered
        self.done_t[r_id] = delivered

    # ------------------------------------------------------------------
    # the worklist
    # ------------------------------------------------------------------
    def run(self) -> float:
        """Execute every rank; returns the makespan T_end."""
        ranks = self.ranks
        done_t = self.done_t
        slots = self.slots
        step = self._step
        while True:
            best = None
            best_nt = 0.0
            second = None
            second_nt = 0.0
            all_done = True
            for r in ranks:
                phase = r.phase
                if phase == "done":
                    continue
                all_done = False
                if phase == "op":
                    nt = r.t
                elif phase == "wait":
                    nt = done_t[r.wait_req]
                else:  # coll
                    nt = slots[r.coll_seq].done_t
                if nt is None:
                    continue
                # Ranks are scanned in id order, so strict < keeps the
                # lowest-rank winner on ties — same as the tuple key.
                if best is None or nt < best_nt:
                    best, best_nt, second, second_nt = r, nt, best, best_nt
                elif second is None or nt < second_nt:
                    second, second_nt = r, nt
            if all_done:
                break
            if best is None:
                # Every live rank blocked on an unresolved dependency:
                # the program would deadlock (or needs an ordering this
                # tier cannot establish).  Let the event engine decide.
                raise StraightlineUnsupported("no runnable rank (program deadlock?)")
            # Burst: keep stepping the chosen rank without rescanning
            # while the order is provably unchanged.  Exactness: no
            # other rank's next-time can move unless a step resolves a
            # request or collective (the _dirty flag), and the chosen
            # rank's own time only grows, so comparing against the
            # stale runner-up under the same (time, rank) tie-break
            # reproduces the full scan's choice.
            while True:
                self._dirty = False
                step(best)
                if self._dirty or best.phase != "op":
                    break
                if second is None:
                    continue  # only resolvable rank; nobody to overtake
                nt = best.t
                if nt < second_nt or (nt == second_nt and best.rank < second.rank):
                    continue
                break
        return max(r.finish for r in ranks)

    def _step(self, r: _Rank) -> None:
        phase = r.phase
        if phase == "wait":
            self._resume_wait(r)
            return
        if phase == "coll":
            r.t = self.slots[r.coll_seq].done_t
            r.phase = "op"
            r.pc += 1
            return
        ops = r.ops
        pc = r.pc
        if pc >= len(ops):
            if r.spawn:
                self._flush(r)
            r.finish = r.t
            r.phase = "done"
            return
        code = ops[pc]
        if code == OP_COMPUTE:
            cyc, off, act, busy, mem, nic = r.fargs[pc]
            end = self._run_seg(r.node, r.t, cyc, off, act, busy, mem, nic)
            if r.spawn:
                self._flush(r)
            r.t = end
            r.pc = pc + 1
        elif code == OP_IDLE:
            if r.spawn:
                self._flush(r)
            r.t = r.t + r.fargs[pc][0]
            r.pc = pc + 1
        elif code == OP_ISEND:
            r.spawn.append(r.iargs[pc])
            r.pc = pc + 1
        elif code == OP_IRECV:
            self._post_recv(r, r.iargs[pc])
            r.pc = pc + 1
        elif code == OP_WAIT:
            self._start_wait(r, r.iargs[pc])
        else:  # OP_COLLECTIVE
            self._start_collective(r)

    def _post_recv(self, r: _Rank, req_id: int) -> None:
        self.posted_t[req_id] = r.t
        s_id = self.req_match[req_id]
        if self.req_eager[s_id]:
            dv = self.delivered_t[s_id]
            if dv is not None:
                # Delivered-then-posted matches in the mailbox at post
                # time; posted-then-delivered matches at delivery.
                self.done_t[req_id] = r.t if r.t > dv else dv
        elif self.rts_t[s_id] is not None and self.done_t[s_id] is None:
            self._complete_rndv(s_id)

    def _start_wait(self, r: _Rank, req_id: int) -> None:
        d = self.done_t[req_id]
        node = r.node
        if d is not None and d <= r.t:
            # Already triggered: wait() performs no blocking yield.
            if self.req_kind[req_id] == REQ_RECV:
                end = self._unpack(node, r.t, req_id)
                if r.spawn:
                    self._flush(r)  # the unpack run_work is the first yield
                r.t = end
            r.pc += 1
            return
        # Untriggered: push the blocked signature, then yield (which
        # starts any send procs spawned in this burst).
        self._emit(node, r.t, _EV_PUSH, self.wait_sig)
        if r.spawn:
            self._flush(r)
        d = self.done_t[req_id]  # flushing may complete our own send
        if d is None:
            r.wait_req = req_id
            r.phase = "wait"
            return
        self._complete_wait(r, req_id, d)

    def _resume_wait(self, r: _Rank) -> None:
        d = self.done_t[r.wait_req]
        self._complete_wait(r, r.wait_req, d)
        r.phase = "op"

    def _complete_wait(self, r: _Rank, req_id: int, d: float) -> None:
        if d < r.t:
            # The request completed before we decided to block — the
            # engine would not have pushed the wait state.  Our
            # worklist order diverged; refuse rather than guess.
            raise StraightlineUnsupported("wait resolved before block point")
        node = r.node
        self._emit(node, d, _EV_POP, self.wait_sig)
        r.t = d
        if self.req_kind[req_id] == REQ_RECV:
            r.t = self._unpack(node, d, req_id)
        r.pc += 1

    def _unpack(self, node: _Node, t: float, req_id: int) -> float:
        nbytes = self.req_nbytes[self.req_match[req_id]]
        return self._run_seg(
            node, t, self._recv_cycles(nbytes), 0.0, 1.0, 1.0, 0.4, 0.3
        )

    def _start_collective(self, r: _Rank) -> None:
        seq = r.iargs[r.pc]
        f = r.fargs[r.pc]
        wire = f[0]
        copy = f[1]
        node = r.node
        pack_end = self._run_seg(
            node, r.t,
            self.cost.collective_overhead_cycles
            + self.cost.pack_cycles_per_byte * copy,
            0.0, 1.0, 1.0, 0.4, 0.0,
        )
        if r.spawn:
            self._flush(r)
        self._emit(node, pack_end, _EV_PUSH, self.comm_sig)
        slot = self.slots[seq]
        slot.arrivals[r.rank] = pack_end
        slot.wires[r.rank] = wire
        r.t = pack_end
        r.coll_seq = seq
        r.phase = "coll"
        if len(slot.arrivals) == self.n:
            self._dirty = True  # unblocks every parked rank
            all_at = max(slot.arrivals.values())
            duration = self.cost.collective_seconds(
                self.c.coll_kinds[seq],
                self.n,
                max(slot.wires.values()),
                self.net,
                freq_ratio=self.freq_ratio,
                jitter_s=0.0,
            )
            slot.done_t = all_at + duration
            for rr in range(self.n):
                self._emit(self.nodes[rr], slot.done_t, _EV_POP, self.comm_sig)

    # ------------------------------------------------------------------
    # energy + time accounting
    # ------------------------------------------------------------------
    def finalize(self, t_end: float) -> tuple[list[float], list[float]]:
        """Integrate each node's breakpoints; returns (energy, time) lists.

        Replicates the meter exactly: one ``energy += p * dt`` per
        breakpoint with ``dt > 0``, power refreshed after every
        breakpoint, plus the final ``p * (T_end - t_last)`` read.
        """
        idle = self.power.cpu_idle_activity
        energies: list[float] = []
        times: list[float] = []
        for node in self.nodes:
            # (t, seq) is globally unique, so plain tuple sort never
            # reaches the payload — identical order, no key function.
            events = sorted(node.events)
            power_w = self.power.node_power_w
            opoint = node.opoint
            idle_key = (idle, 0.0, 0.0)
            p_idle = power_w(opoint, idle, 0.0, 0.0)
            cache: dict[tuple, float] = {idle_key: p_idle}
            cache_get = cache.get

            active = None
            stack: list[tuple] = []
            p_cur = p_idle
            t_last = 0.0
            energy = 0.0
            time_acc = 0.0
            i = 0
            n_ev = len(events)
            while i < n_ev:
                ev = events[i]
                t = ev[0]
                if t > t_end:
                    break  # the engine stops at the job's completion
                dt = t - t_last
                if dt > 0:
                    energy += p_cur * dt
                    time_acc += dt
                    t_last = t
                while True:
                    kind = ev[2]
                    if kind == _EV_START:
                        active = ev[3]
                    elif kind == _EV_END:
                        active = None
                    elif kind == _EV_PUSH:
                        stack.append(ev[3])
                    else:  # _EV_POP
                        payload = ev[3]
                        for j in range(len(stack) - 1, -1, -1):
                            if stack[j] == payload:
                                del stack[j]
                                break
                    i += 1
                    if i >= n_ev:
                        break
                    ev = events[i]
                    if ev[0] != t:
                        break
                if active is not None:
                    key = (active[0], active[2], active[3])
                elif stack:
                    top = stack[-1]
                    dyn = top[0] if top[0] > idle else idle
                    key = (dyn, top[2], top[3])
                else:
                    key = idle_key
                p_cur = cache_get(key)
                if p_cur is None:
                    p_cur = power_w(opoint, key[0], key[1], key[2])
                    cache[key] = p_cur
            # EnergyMeter.energy_j(): one final read at T_end.
            energies.append(energy + p_cur * (t_end - t_last))
            dt = t_end - t_last
            if dt > 0:
                time_acc += dt
            times.append(time_acc)
        return energies, times


def _execute(compiled: CompiledProgram, cost, net_params, power_params,
             nodes: list[_Node]):
    ex = _Executor(compiled, cost, net_params, power_params, nodes)
    t_end = ex.run()
    energies, times = ex.finalize(t_end)
    return t_end, energies, times


# ----------------------------------------------------------------------
# the public runners
# ----------------------------------------------------------------------
def run_straightline(
    workload,
    strategy=None,
    seed: int = 0,
    network_params=None,
    power=None,
    opoints=None,
    transition_latency_s: float = 20e-6,
):
    """Measure a static-gear run on the straightline tier.

    Builds the same cluster as :func:`repro.core.framework.run_workload`
    (so strategy setup, validation, and describe() behave identically),
    compiles the workload, and evaluates it directly.  Raises
    :class:`~repro.workloads.compile.CompileError` or
    :class:`StraightlineUnsupported` when the run needs the event
    engine; :func:`try_run_straightline` converts those into ``None``.
    """
    from repro.core.framework import Measurement
    from repro.core.strategies.base import NoDvsStrategy
    from repro.hardware.cluster import nemo_cluster
    from repro.hardware.opoints import PENTIUM_M_TABLE
    from repro.hardware.power import NEMO_POWER
    from repro.sim.engine import Environment

    strategy = strategy or NoDvsStrategy()
    power = NEMO_POWER if power is None else power
    opoints = PENTIUM_M_TABLE if opoints is None else opoints
    env = Environment()
    cluster = nemo_cluster(
        env,
        n_nodes=workload.nprocs,
        power=power,
        opoints=opoints,
        network_params=network_params,
        transition_latency_s=transition_latency_s,
        with_batteries=False,
        seed=seed,
        injector=None,
    )
    node_ids = list(range(workload.nprocs))
    strategy.setup(cluster, node_ids)

    compiled = compile_workload(workload, cluster.opoints.fastest.frequency_hz)
    nodes = []
    for nid in node_ids:
        cpu = cluster[nid].cpu
        nodes.append(_Node(cpu.frequency_hz, cpu.frequency_mhz, cpu.opoint,
                           cpu._stall_until))
    t_end, energies, times = _execute(
        compiled, workload.cost_model(), cluster.network.params, power, nodes
    )
    strategy.teardown(cluster)

    started_at = 0.0
    per_node = {nid: energies[nid] for nid in node_ids}
    time_at: dict[float, float] = {}
    for nid in node_ids:
        if times[nid] > 0:
            mhz = nodes[nid].mhz
            time_at[mhz] = time_at.get(mhz, 0.0) + times[nid]
    return Measurement(
        workload=workload.tag,
        strategy=strategy.describe(),
        elapsed_s=t_end - started_at,
        energy_j=sum(per_node.values()),
        per_node_energy_j=per_node,
        dvs_transitions=0,
        time_at_mhz=time_at,
        acpi_energy_j=None,
        baytech_energy_j=None,
        trace=None,
        report=None,
        extras={},
    )


def try_run_straightline(
    workload,
    strategy=None,
    seed: int = 0,
    network_params=None,
    power=None,
    opoints=None,
    transition_latency_s: float = 20e-6,
):
    """Like :func:`run_straightline` but returns ``None`` on fallback."""
    try:
        return run_straightline(
            workload,
            strategy,
            seed=seed,
            network_params=network_params,
            power=power,
            opoints=opoints,
            transition_latency_s=transition_latency_s,
        )
    except (CompileError, StraightlineUnsupported):
        return None
