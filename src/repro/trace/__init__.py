"""MPE-like tracing (paper Figures 9 and 12).

The virtual MPI layer records every operation through an attached
:class:`~repro.trace.events.TraceLog` (the ``-mpilog`` analogue);
:mod:`repro.trace.stats` computes the observations the paper reads off
its Jumpshot visualisations — communication-to-computation ratios,
dominant events, per-rank asymmetry, iteration granularity — and
:mod:`repro.trace.jumpshot` renders an ASCII timeline.
"""

from repro.trace.events import TraceEvent, TraceLog, OP_CATEGORIES, categorize_op
from repro.trace.stats import RankProfile, TraceStats, analyze
from repro.trace.jumpshot import render_timeline
from repro.trace.phasestats import (
    PhaseInterval,
    PhaseProfile,
    PhaseRecorder,
    profile_phases,
)
from repro.trace.slog import load_trace, save_trace, trace_from_csv, trace_to_csv

__all__ = [
    "OP_CATEGORIES",
    "PhaseInterval",
    "PhaseProfile",
    "PhaseRecorder",
    "RankProfile",
    "TraceEvent",
    "TraceLog",
    "TraceStats",
    "analyze",
    "categorize_op",
    "load_trace",
    "profile_phases",
    "render_timeline",
    "save_trace",
    "trace_from_csv",
    "trace_to_csv",
]
