"""Trace event log — the instrumented-MPICH analogue."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["TraceEvent", "TraceLog", "OP_CATEGORIES", "categorize_op"]


#: Operation-name → category ("compute", "comm", "wait", "dvs", "idle").
OP_CATEGORIES: dict[str, str] = {
    "compute": "compute",
    "idle": "idle",
    "set_cpuspeed": "dvs",
    "send": "comm",
    "recv": "comm",
    "wait_send": "wait",
    "wait_recv": "wait",
    "barrier": "comm",
    "bcast": "comm",
    "reduce": "comm",
    "allreduce": "comm",
    "allgather": "comm",
    "alltoall": "comm",
    "alltoallv": "comm",
}


def categorize_op(op: str) -> str:
    """Category of an operation name (unknown ops count as comm)."""
    return OP_CATEGORIES.get(op, "comm")


@dataclass(frozen=True)
class TraceEvent:
    """One logged operation interval on one rank."""

    rank: int
    op: str
    t_begin: float
    t_end: float
    nbytes: float = 0.0
    peer: int = -1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin

    @property
    def category(self) -> str:
        return categorize_op(self.op)


class TraceLog:
    """Accumulates :class:`TraceEvent`\\ s; attach as the MPI tracer.

    Implements the tracer protocol the communicator expects:
    ``record(rank, op, t_begin, t_end, nbytes, peer)``.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(
        self,
        rank: int,
        op: str,
        t_begin: float,
        t_end: float,
        nbytes: float = 0.0,
        peer: int = -1,
    ) -> None:
        if t_end < t_begin:
            raise ValueError("event ends before it begins")
        self.events.append(TraceEvent(rank, op, t_begin, t_end, nbytes, peer))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def ranks(self) -> list[int]:
        return sorted({e.rank for e in self.events})

    @property
    def t_min(self) -> float:
        return min((e.t_begin for e in self.events), default=0.0)

    @property
    def t_max(self) -> float:
        return max((e.t_end for e in self.events), default=0.0)

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def filter(
        self,
        op: Optional[str] = None,
        category: Optional[str] = None,
        ranks: Optional[Iterable[int]] = None,
    ) -> list[TraceEvent]:
        rankset = set(ranks) if ranks is not None else None
        out = []
        for e in self.events:
            if op is not None and e.op != op:
                continue
            if category is not None and e.category != category:
                continue
            if rankset is not None and e.rank not in rankset:
                continue
            out.append(e)
        return out
