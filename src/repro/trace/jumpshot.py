"""ASCII Jumpshot — render a trace as per-rank timelines.

The paper inspects MPE logs with Jumpshot (Figures 9 and 12); this
renders the same information as text, one row per rank, one column per
time bucket, with the bucket's dominant category as the glyph::

    rank 0 |####=====~~~~####=====~~~~|
    rank 1 |####=====....####=====....|

    # compute   = active communication   . blocked wait   ~ idle
"""

from __future__ import annotations

from repro.trace.events import TraceLog

__all__ = ["render_timeline", "CATEGORY_GLYPHS"]

CATEGORY_GLYPHS = {
    "compute": "#",
    "comm": "=",
    "wait": ".",
    "idle": "~",
    "dvs": "v",
    None: " ",
}


def render_timeline(
    log: TraceLog,
    width: int = 100,
    t_begin: float | None = None,
    t_end: float | None = None,
) -> str:
    """Render the trace as fixed-width per-rank rows.

    Each column covers ``(t_end - t_begin) / width`` seconds and shows
    the category that occupied most of that bucket on that rank.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if len(log) == 0:
        return "(empty trace)"
    t0 = log.t_min if t_begin is None else t_begin
    t1 = log.t_max if t_end is None else t_end
    if t1 <= t0:
        raise ValueError("empty time window")
    dt = (t1 - t0) / width

    lines = []
    for rank in log.ranks:
        # Accumulate per-bucket seconds per category.
        buckets: list[dict[str, float]] = [dict() for _ in range(width)]
        for e in log.for_rank(rank):
            if e.t_end <= t0 or e.t_begin >= t1 or e.duration == 0:
                continue
            lo = max(e.t_begin, t0)
            hi = min(e.t_end, t1)
            first = int((lo - t0) / dt)
            last = min(width - 1, int((hi - t0) / dt))
            for b in range(first, last + 1):
                b_lo = t0 + b * dt
                b_hi = b_lo + dt
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    cat = e.category
                    buckets[b][cat] = buckets[b].get(cat, 0.0) + overlap
        glyphs = []
        for bucket in buckets:
            if not bucket:
                glyphs.append(CATEGORY_GLYPHS[None])
            else:
                dominant = max(bucket.items(), key=lambda kv: kv[1])[0]
                glyphs.append(CATEGORY_GLYPHS.get(dominant, "?"))
        lines.append(f"rank {rank:>3} |{''.join(glyphs)}|")

    legend = (
        "# compute   = active communication   . blocked wait   "
        "~ idle   v DVS call"
    )
    span = f"window: {t0:.3f}s .. {t1:.3f}s  ({dt:.4f}s per column)"
    return "\n".join(lines + ["", legend, span])
