"""Phase-level profiling.

The INTERNAL strategy needs to know, per *source phase* (the hook names
a workload announces), how long instances last and how communication-
bound they are.  :class:`PhaseRecorder` is a hooks object that records
every phase interval per rank; :func:`profile_phases` cross-references
those intervals with the MPE-like trace to produce a
:class:`PhaseProfile` per phase — the machine-readable version of what
the paper reads off Jumpshot before designing Figure 10's schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mpi.communicator import RankContext
from repro.trace.events import TraceLog
from repro.workloads.base import PhaseHooks

__all__ = ["PhaseInterval", "PhaseRecorder", "PhaseProfile", "profile_phases"]


@dataclass(frozen=True)
class PhaseInterval:
    """One executed instance of a named phase on one rank."""

    rank: int
    phase: str
    t_begin: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin


class PhaseRecorder(PhaseHooks):
    """Hooks that log every phase interval (no DVS side effects)."""

    def __init__(self) -> None:
        self.intervals: list[PhaseInterval] = []
        self._open: dict[tuple[int, str], float] = {}

    def phase_begin(self, ctx: RankContext, phase: str) -> None:
        self._open[(ctx.rank, phase)] = ctx.env.now

    def phase_end(self, ctx: RankContext, phase: str) -> None:
        key = (ctx.rank, phase)
        t0 = self._open.pop(key, None)
        if t0 is None:
            raise RuntimeError(f"phase_end without begin: {phase!r} on rank {ctx.rank}")
        self.intervals.append(PhaseInterval(ctx.rank, phase, t0, ctx.env.now))

    def phases(self) -> list[str]:
        seen: list[str] = []
        for iv in self.intervals:
            if iv.phase not in seen:
                seen.append(iv.phase)
        return seen


@dataclass
class PhaseProfile:
    """Aggregate behaviour of one named phase across the run."""

    phase: str
    instances: int = 0
    total_seconds: float = 0.0
    mean_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    #: share of the phase's time spent in communication (from the trace)
    comm_fraction: float = 0.0
    #: share of whole-job rank-seconds this phase accounts for
    share_of_runtime: float = 0.0
    per_rank_seconds: dict[int, float] = field(default_factory=dict)

    @property
    def is_communication_phase(self) -> bool:
        """Heuristic the auto-scheduler uses: mostly comm inside."""
        return self.comm_fraction >= 0.6


def profile_phases(
    recorder: PhaseRecorder, trace: Optional[TraceLog] = None
) -> dict[str, PhaseProfile]:
    """Aggregate recorded intervals (and, if available, the trace) into
    per-phase profiles."""
    profiles: dict[str, PhaseProfile] = {}
    total_rank_seconds = sum(iv.duration for iv in recorder.intervals)
    for iv in recorder.intervals:
        prof = profiles.setdefault(iv.phase, PhaseProfile(iv.phase))
        prof.instances += 1
        prof.total_seconds += iv.duration
        prof.min_seconds = min(prof.min_seconds, iv.duration)
        prof.max_seconds = max(prof.max_seconds, iv.duration)
        prof.per_rank_seconds[iv.rank] = (
            prof.per_rank_seconds.get(iv.rank, 0.0) + iv.duration
        )
    for prof in profiles.values():
        prof.mean_seconds = prof.total_seconds / prof.instances
        if total_rank_seconds > 0:
            prof.share_of_runtime = prof.total_seconds / total_rank_seconds

    if trace is not None:
        _attach_comm_fractions(profiles, recorder, trace)
    return profiles


def _attach_comm_fractions(
    profiles: dict[str, PhaseProfile],
    recorder: PhaseRecorder,
    trace: TraceLog,
) -> None:
    """Overlap trace comm events with phase windows, per rank.

    Vectorized: per rank, every (interval × event) overlap comes from
    one broadcast min/max; per phase, the positive overlaps then
    accumulate with ``np.cumsum`` — strictly left to right, in the same
    (interval order, event order) sequence as the scalar nested loop,
    so the result is bit-identical to it.
    """
    comm_events = [e for e in trace if e.category in ("comm", "wait")]
    by_rank: dict[int, list] = {}
    for e in comm_events:
        by_rank.setdefault(e.rank, []).append(e)
    intervals = recorder.intervals
    idx_by_rank: dict[int, list[int]] = {}
    for i, iv in enumerate(intervals):
        idx_by_rank.setdefault(iv.rank, []).append(i)
    row_overlaps: list[Optional[np.ndarray]] = [None] * len(intervals)
    for rank, indices in idx_by_rank.items():
        events = by_rank.get(rank)
        if not events:
            continue
        eb = np.array([e.t_begin for e in events], dtype=float)
        ee = np.array([e.t_end for e in events], dtype=float)
        ib = np.array([intervals[i].t_begin for i in indices], dtype=float)
        ie = np.array([intervals[i].t_end for i in indices], dtype=float)
        overlap = np.minimum(ie[:, None], ee[None, :]) - np.maximum(
            ib[:, None], eb[None, :]
        )
        for row, i in enumerate(indices):
            vals = overlap[row]
            row_overlaps[i] = vals[vals > 0.0]
    comm_inside: dict[str, float] = {name: 0.0 for name in profiles}
    by_phase: dict[str, list[np.ndarray]] = {}
    for i, iv in enumerate(intervals):
        vals = row_overlaps[i]
        if vals is not None and vals.size:
            by_phase.setdefault(iv.phase, []).append(vals)
    for name, chunks in by_phase.items():
        comm_inside[name] = float(np.cumsum(np.concatenate(chunks))[-1])
    for name, prof in profiles.items():
        if prof.total_seconds > 0:
            prof.comm_fraction = min(1.0, comm_inside[name] / prof.total_seconds)
