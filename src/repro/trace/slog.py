"""Trace persistence — the SLOG-file analogue.

The paper's instrumented MPICH writes MPE logs to disk for later
Jumpshot analysis; this module does the same for :class:`TraceLog`,
using a line-oriented CSV that diffs well and loads fast.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from repro.trace.events import TraceEvent, TraceLog

__all__ = ["save_trace", "load_trace", "trace_to_csv", "trace_from_csv"]

_FIELDS = ("rank", "op", "t_begin", "t_end", "nbytes", "peer")


def trace_to_csv(log: TraceLog) -> str:
    """Render a trace log as CSV text (header + one row per event)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_FIELDS)
    for e in log:
        writer.writerow(
            [e.rank, e.op, repr(e.t_begin), repr(e.t_end), repr(e.nbytes), e.peer]
        )
    return buffer.getvalue()


def trace_from_csv(text: str) -> TraceLog:
    """Parse CSV text produced by :func:`trace_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(header) != _FIELDS:
        raise ValueError(f"not a trace CSV (header {header!r})")
    log = TraceLog()
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(_FIELDS):
            raise ValueError(f"malformed trace row at line {lineno}: {row!r}")
        rank, op, t0, t1, nbytes, peer = row
        log.events.append(
            TraceEvent(
                rank=int(rank),
                op=op,
                t_begin=float(t0),
                t_end=float(t1),
                nbytes=float(nbytes),
                peer=int(peer),
            )
        )
    return log


def save_trace(log: TraceLog, path: Union[str, Path]) -> Path:
    """Write a trace log to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_to_csv(log))
    return path


def load_trace(path: Union[str, Path]) -> TraceLog:
    """Read a trace log written by :func:`save_trace`."""
    return trace_from_csv(Path(path).read_text())
