"""Trace analysis — the numbers the paper reads off Jumpshot.

For FT (Figure 9) the paper observes: communication-bound with a ~2:1
comm/comp ratio, all-to-all dominant, long iterations, balanced load.
For CG (Figure 12): communication-intensive, Wait/Send dominant, short
cycles, and per-rank asymmetry (ranks 4–7 wait more than 0–3).
:func:`analyze` extracts exactly those quantities.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.trace.events import TraceEvent, TraceLog

__all__ = ["RankProfile", "TraceStats", "analyze"]


@dataclass
class RankProfile:
    """Per-rank time breakdown."""

    rank: int
    compute_s: float = 0.0
    comm_s: float = 0.0
    wait_s: float = 0.0
    idle_s: float = 0.0
    op_seconds: dict[str, float] = field(default_factory=dict)
    op_counts: dict[str, int] = field(default_factory=dict)

    @property
    def comm_total_s(self) -> float:
        """All non-compute MPI time (active comm + blocked wait)."""
        return self.comm_s + self.wait_s

    @property
    def comm_to_comp_ratio(self) -> float:
        """The paper's communication-to-computation ratio."""
        if self.compute_s <= 0:
            return float("inf")
        return self.comm_total_s / self.compute_s

    def dominant_ops(self, n: int = 3) -> list[tuple[str, float]]:
        """Top operations by accumulated time."""
        return sorted(self.op_seconds.items(), key=lambda kv: -kv[1])[:n]


@dataclass
class TraceStats:
    """Whole-job trace summary."""

    ranks: list[RankProfile]
    duration_s: float

    @property
    def comm_to_comp_ratio(self) -> float:
        comm = sum(r.comm_total_s for r in self.ranks)
        comp = sum(r.compute_s for r in self.ranks)
        return comm / comp if comp > 0 else float("inf")

    @property
    def imbalance(self) -> float:
        """Spread of per-rank comm/comp ratios: max/min (1.0 = balanced).

        Finite only when every rank computes; the paper's FT trace shows
        ~1, CG's shows a clear split between rank groups.
        """
        ratios = [r.comm_to_comp_ratio for r in self.ranks if r.compute_s > 0]
        if len(ratios) < 2 or min(ratios) <= 0:
            return float("inf")
        return max(ratios) / min(ratios)

    def dominant_ops(self, n: int = 3) -> list[tuple[str, float]]:
        total: dict[str, float] = defaultdict(float)
        for r in self.ranks:
            for op, secs in r.op_seconds.items():
                total[op] += secs
        return sorted(total.items(), key=lambda kv: -kv[1])[:n]

    def mean_event_duration(self, op: str) -> float:
        secs = sum(r.op_seconds.get(op, 0.0) for r in self.ranks)
        count = sum(r.op_counts.get(op, 0) for r in self.ranks)
        return secs / count if count else 0.0


def analyze(log: TraceLog) -> TraceStats:
    """Aggregate a trace log into per-rank and whole-job statistics."""
    profiles: dict[int, RankProfile] = {}
    for event in log:
        prof = profiles.setdefault(event.rank, RankProfile(event.rank))
        _accumulate(prof, event)
    ranks = [profiles[r] for r in sorted(profiles)]
    duration = log.t_max - log.t_min
    return TraceStats(ranks=ranks, duration_s=duration)


def _accumulate(prof: RankProfile, event: TraceEvent) -> None:
    d = event.duration
    cat = event.category
    if cat == "compute":
        prof.compute_s += d
    elif cat == "wait":
        prof.wait_s += d
    elif cat == "idle":
        prof.idle_s += d
    elif cat == "comm":
        prof.comm_s += d
    # DVS events are effectively instantaneous; count but don't bin time.
    prof.op_seconds[event.op] = prof.op_seconds.get(event.op, 0.0) + d
    prof.op_counts[event.op] = prof.op_counts.get(event.op, 0) + 1
