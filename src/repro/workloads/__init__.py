"""Application models.

The NAS Parallel Benchmarks (and SPEC swim) are modelled as *phase
programs*: rank programs that issue the same sequence of compute
segments (on-chip cycles + off-chip stall time) and MPI operations as
the real codes, with per-code constants calibrated against the paper's
Table 2 frequency sweep (see ``repro/experiments/calibration.py`` and
EXPERIMENTS.md for the calibration story).

Each workload exposes **phase hooks** — the points where the paper's
INTERNAL strategy inserts ``set_cpuspeed`` calls into the source
(Figures 10 and 13).
"""

from repro.workloads.base import (
    NO_HOOKS,
    CompositeHooks,
    PhaseHooks,
    Workload,
    get_workload,
    register_workload,
    workload_names,
)
from repro.workloads.compile import CompiledProgram, CompileError, compile_workload
from repro.workloads.phases import Loop, Phase, PhaseProgramWorkload
from repro.workloads import npb  # noqa: F401  (registers the NPB codes)
from repro.workloads import spec  # noqa: F401  (registers swim)
from repro.workloads import microbench  # noqa: F401 (registers microbenchmarks)

__all__ = [
    "NO_HOOKS",
    "CompiledProgram",
    "CompileError",
    "CompositeHooks",
    "Loop",
    "compile_workload",
    "Phase",
    "PhaseHooks",
    "PhaseProgramWorkload",
    "Workload",
    "get_workload",
    "register_workload",
    "workload_names",
]
