"""Workload base classes, phase hooks and the registry."""

from __future__ import annotations

import abc
from typing import Callable, Dict, Generator

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel

__all__ = [
    "PhaseHooks",
    "NO_HOOKS",
    "Workload",
    "register_workload",
    "get_workload",
    "workload_names",
]


class PhaseHooks:
    """Instrumentation points a workload exposes to DVS policies.

    The paper's INTERNAL strategy works by inserting ``set_cpuspeed``
    calls into application source around phases (Figure 10) or at rank
    initialisation (Figure 13).  Workload programs call these hooks at
    exactly those source locations; the default implementation does
    nothing (an uninstrumented binary).
    """

    def on_init(self, ctx: RankContext) -> None:
        """Called once per rank, right after MPI_Init."""

    def phase_begin(self, ctx: RankContext, phase: str) -> None:
        """Called immediately before a named phase starts on ``ctx``."""

    def phase_end(self, ctx: RankContext, phase: str) -> None:
        """Called immediately after a named phase ends on ``ctx``."""


#: Shared do-nothing hooks (uninstrumented run).
NO_HOOKS = PhaseHooks()


class CompositeHooks(PhaseHooks):
    """Fan out hook calls to several hooks objects (e.g. a DVS policy
    plus a phase recorder profiling the same run)."""

    def __init__(self, *hooks: PhaseHooks) -> None:
        self.hooks = tuple(h for h in hooks if h is not NO_HOOKS)

    def on_init(self, ctx) -> None:
        for h in self.hooks:
            h.on_init(ctx)

    def phase_begin(self, ctx, phase: str) -> None:
        for h in self.hooks:
            h.phase_begin(ctx, phase)

    def phase_end(self, ctx, phase: str) -> None:
        # Unwind in reverse so policies that set state on begin restore
        # it after any observers saw the end.
        for h in reversed(self.hooks):
            h.phase_end(ctx, phase)


class Workload(abc.ABC):
    """A parallel application model.

    Subclasses define :meth:`make_program` returning a rank program for
    :func:`repro.mpi.launch`, plus the communication cost model the code
    should run under (per-code congestion behaviour, Section 5.2).
    """

    #: short code name, e.g. ``"FT"``.
    name: str = "?"
    #: NPB problem class letter (``"T"`` is our tiny test class).
    klass: str = "C"
    #: number of MPI ranks the model is defined for.
    nprocs: int = 8

    @property
    def tag(self) -> str:
        """Paper-style experiment tag, e.g. ``FT.C.8``."""
        return f"{self.name}.{self.klass}.{self.nprocs}"

    @abc.abstractmethod
    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        """Build the rank program, instrumented with ``hooks``."""

    def cost_model(self) -> CostModel:
        """Communication cost model for this code (default: stock)."""
        return CostModel()

    #: phases that this workload announces through its hooks, for
    #: documentation and policy validation.
    phases: tuple[str, ...] = ()

    def __repr__(self) -> str:
        return f"<Workload {self.tag}>"


_REGISTRY: Dict[str, Callable[..., Workload]] = {}


def register_workload(name: str, factory: Callable[..., Workload]) -> None:
    """Register a workload factory under ``name`` (case-insensitive)."""
    key = name.upper()
    if key in _REGISTRY:
        raise ValueError(f"workload {name!r} already registered")
    _REGISTRY[key] = factory


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload, e.g. ``get_workload("FT")``."""
    try:
        factory = _REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def workload_names() -> list[str]:
    return sorted(_REGISTRY)
