"""Phase-program compiler: lower rank programs to flat numpy arrays.

The straightline executor (:mod:`repro.sim.straightline`) evaluates
static-gear runs without an event heap.  To do that it needs each
rank's program as *data* rather than as a generator: a flat list of
operations (compute segments, message sends/receives, waits,
collectives) with every byte count and cycle count resolved.

:func:`compile_workload` produces that form by running the workload's
rank programs against a :class:`_RecordingContext` — an object with the
same surface as :class:`repro.mpi.communicator.RankContext` that records
operations instead of simulating them.  Because rank programs are
deterministic functions of ``(rank, size)`` (anything else — reading
``ctx.env``, wildcard receives, DVS calls — raises
:class:`CompileError`), the recording is exact.

Compilation also performs the matching the event engine does at run
time, statically:

* point-to-point messages are matched FIFO per ``(src, dst, tag)``
  channel (the engine's mailbox preserves per-channel order because
  both the CPU's segment queue and the per-node network channels are
  FIFO);
* collective call sites are checked for identical kind and count on
  every rank (a mismatch would deadlock or raise in the engine, so the
  compiler refuses and the caller falls back).

Anything the recorder cannot prove static raises :class:`CompileError`;
``run_workload`` then falls back to the event engine, which remains the
arbiter of genuinely invalid programs.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

import numpy as np

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG
from repro.mpi.costmodel import CostModel
from repro.workloads.base import PhaseHooks, Workload

__all__ = [
    "ChannelClass",
    "ChannelClassification",
    "classify_channels",
    "CompileError",
    "CompiledProgram",
    "compile_workload",
    "OP_COMPUTE",
    "OP_IDLE",
    "OP_ISEND",
    "OP_IRECV",
    "OP_WAIT",
    "OP_COLLECTIVE",
]


class CompileError(RuntimeError):
    """The program cannot be lowered to straightline form.

    Raised for constructs whose behaviour depends on simulation state
    (DVS calls, ``waitany``, wildcard receives) or for programs whose
    static matching fails (unmatched sends, mismatched collectives).
    The caller is expected to fall back to the event engine.
    """


# Operation codes (one row per op in the per-rank arrays).
OP_COMPUTE = 0  #: f = (cycles, offchip_s, activity, busy, mem, nic)
OP_IDLE = 1  #: f0 = seconds
OP_ISEND = 2  #: i0 = request id
OP_IRECV = 3  #: i0 = request id
OP_WAIT = 4  #: i0 = request id
OP_COLLECTIVE = 5  #: i0 = call-site seq; f0 = wire bytes, f1 = copy bytes

#: request-kind codes in the request table.
REQ_SEND = 0
REQ_RECV = 1


class _RecordedMessage:
    """Static stand-in for :class:`repro.mpi.communicator.Message`."""

    __slots__ = ("src", "dst", "tag", "nbytes", "eager")

    def __init__(self, src: int, dst: int, tag: int, nbytes: float, eager: bool) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.eager = eager


class _RecordedRequest:
    """Static stand-in for :class:`repro.mpi.communicator.Request`."""

    __slots__ = ("req_id", "kind", "peer", "tag", "nbytes", "message")

    def __init__(self, req_id: int, kind: str, peer: int, tag: int, nbytes: float) -> None:
        self.req_id = req_id
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.message: Optional[_RecordedMessage] = None


class _RecordingContext:
    """RankContext look-alike that records operations.

    Mirrors every argument validation and byte/cycle formula of the
    real context so that a program which would raise there raises here
    (wrapped as :class:`CompileError` by the compiler, which falls back
    to the event engine to surface the genuine error).
    """

    def __init__(
        self,
        recorder: "_Recorder",
        rank: int,
        size: int,
        cost: CostModel,
        fastest_hz: float,
    ) -> None:
        self._recorder = recorder
        self.rank = rank
        self.size = size
        self._cost = cost
        self._fastest_hz = fastest_hz
        self._coll_seq = 0
        self._ops: list[tuple] = []
        # Ranks record sequentially, so this rank's requests occupy the
        # contiguous global id block starting here.  The ops stream
        # stores *rank-local* request indices (global = base + local):
        # symmetric ranks then record byte-identical op streams and can
        # share one packed program body.
        self._req_base = len(recorder.requests)
        # The real context exposes these counters; static programs may
        # read (never usefully write) them.
        self.dvs_calls = 0
        self.dvs_retries = 0

    # -- simulation-state accessors are not static -----------------------
    @property
    def env(self):
        raise CompileError("program reads ctx.env (simulation state)")

    @property
    def cpu(self):
        raise CompileError("program reads ctx.cpu (simulation state)")

    @property
    def node(self):
        raise CompileError("program reads ctx.node (simulation state)")

    @property
    def comm(self):
        raise CompileError("program reads ctx.comm (simulation state)")

    # ------------------------------------------------------------------
    # compute / idle
    # ------------------------------------------------------------------
    def compute(
        self,
        seconds: Optional[float] = None,
        cycles: Optional[float] = None,
        offchip_seconds: float = 0.0,
        mem_activity: float = 0.3,
        activity: float = 1.0,
        busy: float = 1.0,
    ) -> Generator:
        if (seconds is None) == (cycles is None):
            raise ValueError("specify exactly one of seconds= or cycles=")
        if cycles is None:
            cycles = seconds * self._fastest_hz
        if cycles < 0 or offchip_seconds < 0:
            raise ValueError("work amounts must be non-negative")
        self._ops.append(
            (OP_COMPUTE, 0,
             (float(cycles), float(offchip_seconds), float(activity),
              float(busy), float(mem_activity), 0.0))
        )
        return
        yield  # pragma: no cover - makes this a generator

    def idle(self, seconds: float) -> Generator:
        if seconds < 0:
            raise ValueError("cannot idle for a negative duration")
        self._ops.append((OP_IDLE, 0, (float(seconds), 0.0, 0.0, 0.0, 0.0, 0.0)))
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # DVS control — inherently dynamic
    # ------------------------------------------------------------------
    def set_cpuspeed(self, mhz: float) -> None:
        raise CompileError("program performs DVS actuation (set_cpuspeed)")

    def set_cpuspeed_index(self, index: int) -> None:
        raise CompileError("program performs DVS actuation (set_cpuspeed_index)")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, dst: int, nbytes: float, tag: int = 0) -> _RecordedRequest:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range")
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        eager = self._cost.is_eager(nbytes)
        req = self._recorder.new_request("send", self.rank, dst, tag, float(nbytes))
        req.message = _RecordedMessage(self.rank, dst, tag, float(nbytes), eager)
        self._ops.append((OP_ISEND, req.req_id - self._req_base, _NO_F))
        return req

    def irecv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG, nbytes_hint: float = 0.0
    ) -> _RecordedRequest:
        if src == ANY_SOURCE:
            raise CompileError("wildcard receive (ANY_SOURCE) is not static")
        if tag == ANY_TAG:
            raise CompileError("wildcard receive (ANY_TAG) is not static")
        if not 0 <= src < self.size:
            raise ValueError(f"source rank {src} out of range")
        req = self._recorder.new_request("recv", self.rank, src, tag, float(nbytes_hint))
        self._ops.append((OP_IRECV, req.req_id - self._req_base, _NO_F))
        return req

    def wait(self, request: _RecordedRequest, _op: Optional[str] = None) -> Generator:
        if not isinstance(request, _RecordedRequest):
            raise CompileError("wait() on a foreign request object")
        if self._recorder.req_owner[request.req_id] != self.rank:
            # A rank-local index cannot address another rank's request;
            # the event engine surfaces the genuine misuse.
            raise CompileError("wait() on another rank's request")
        self._ops.append((OP_WAIT, request.req_id - self._req_base, _NO_F))
        return request.message
        yield  # pragma: no cover

    def waitall(self, requests: Sequence[_RecordedRequest]) -> Generator:
        results = []
        for req in requests:
            msg = yield from self.wait(req)
            results.append(msg)
        return results

    def waitany(self, requests: Sequence[_RecordedRequest]) -> Generator:
        raise CompileError("waitany() completion order is not static")

    def send(self, dst: int, nbytes: float, tag: int = 0) -> Generator:
        req = self.isend(dst, nbytes, tag)
        yield from self.wait(req)
        return req.message

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        req = self.irecv(src, tag)
        msg = yield from self.wait(req, _op="recv")
        return msg

    def sendrecv(
        self, dst: int, nbytes: float, src: int = ANY_SOURCE, tag: int = 0
    ) -> Generator:
        sreq = self.isend(dst, nbytes, tag)
        msg = yield from self.recv(src, tag)
        yield from self.wait(sreq)
        return msg

    # ------------------------------------------------------------------
    # collectives (wire/copy formulas mirror RankContext exactly)
    # ------------------------------------------------------------------
    def _collective(self, kind: str, wire_bytes: float, copy_bytes: float) -> Generator:
        seq = self._coll_seq
        self._coll_seq += 1
        self._recorder.record_collective(self.rank, seq, kind)
        self._ops.append(
            (OP_COLLECTIVE, seq, (float(wire_bytes), float(copy_bytes), 0.0, 0.0, 0.0, 0.0))
        )
        return
        yield  # pragma: no cover

    def barrier(self) -> Generator:
        yield from self._collective("barrier", 0.0, 0.0)

    def bcast(self, nbytes: float, root: int = 0) -> Generator:
        yield from self._collective("bcast", nbytes, nbytes if self.rank == root else 0.0)

    def reduce(self, nbytes: float, root: int = 0) -> Generator:
        yield from self._collective("reduce", nbytes, nbytes)

    def allreduce(self, nbytes: float) -> Generator:
        yield from self._collective("allreduce", nbytes, nbytes)

    def scatter(self, nbytes: float, root: int = 0) -> Generator:
        copy = nbytes * (self.size - 1) if self.rank == root else nbytes
        yield from self._collective("scatter", nbytes, copy)

    def gather(self, nbytes: float, root: int = 0) -> Generator:
        copy = nbytes * (self.size - 1) if self.rank == root else nbytes
        yield from self._collective("gather", nbytes, copy)

    def allgather(self, nbytes: float) -> Generator:
        wire = nbytes * (self.size - 1)
        yield from self._collective("allgather", wire, nbytes)

    def alltoall(self, bytes_per_pair: float) -> Generator:
        wire = self._cost.alltoall_bytes(self.size, bytes_per_pair)
        yield from self._collective("alltoall", wire, wire)

    def alltoallv(self, total_send_bytes: float) -> Generator:
        yield from self._collective("alltoallv", total_send_bytes, total_send_bytes)


_NO_F = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class _MarkerHooks(PhaseHooks):
    """Hooks that record their call sites instead of acting.

    Programs are compiled against these so the resulting op arrays are
    identical to an uninstrumented (``NO_HOOKS``) recording — a marker
    performs no context operation — while every hook site lands in the
    compiled form as ``(op position, kind, phase)``.  The straightline
    tier later lowers a strategy's :class:`GearPlan` onto these markers
    to find exactly where the event engine would issue ``set_cpuspeed``
    calls.
    """

    def __init__(self) -> None:
        self.sites: dict[int, list[tuple[int, str, str]]] = {}

    def _record(self, ctx: "_RecordingContext", kind: str, phase: str) -> None:
        self.sites.setdefault(ctx.rank, []).append((len(ctx._ops), kind, phase))

    def on_init(self, ctx) -> None:
        self._record(ctx, "init", "")

    def phase_begin(self, ctx, phase: str) -> None:
        self._record(ctx, "begin", phase)

    def phase_end(self, ctx, phase: str) -> None:
        self._record(ctx, "end", phase)


class _Recorder:
    """Global (cross-rank) recording state: requests + collectives."""

    def __init__(self) -> None:
        self.requests: list[_RecordedRequest] = []
        self.req_owner: list[int] = []
        # per-rank collective kinds in call-site order
        self.collectives: dict[int, list[str]] = {}

    def new_request(
        self, kind: str, owner: int, peer: int, tag: int, nbytes: float
    ) -> _RecordedRequest:
        req = _RecordedRequest(len(self.requests), kind, peer, tag, nbytes)
        self.requests.append(req)
        self.req_owner.append(owner)
        return req

    def record_collective(self, rank: int, seq: int, kind: str) -> None:
        kinds = self.collectives.setdefault(rank, [])
        if seq != len(kinds):  # pragma: no cover - defensive
            raise CompileError("collective call-site sequence out of order")
        kinds.append(kind)


@dataclass(eq=False)  # identity semantics: programs are memoized, never compared
class CompiledProgram:
    """A workload's rank programs, lowered to flat arrays.

    The per-rank arrays are parallel: ``ops[r][k]`` is the op code of
    rank ``r``'s ``k``-th operation, ``iargs[r][k]`` its integer operand
    (*rank-local* request index / collective seq) and ``fargs[r][k]``
    its six float operands (see the ``OP_*`` constants for the layout).

    Ranks whose recorded bodies are identical — same op codes, same
    local operands, same float operands, same hook markers — share one
    packed body: their entries in ``ops``/``iargs``/``fargs``/``markers``
    are the *same objects*, so compile time and memory scale with the
    number of distinct rank groups, not ranks.  ``group_of[r]`` is rank
    ``r``'s group id (group ids in first-rank order) and
    ``group_members[g]`` the sorted ranks of group ``g``.

    The request table stores one row per isend/irecv across all ranks;
    a rank's ``k``-th request has global id ``req_base[rank] + local``
    and ``req_match[i]`` is the request id of the statically matched
    opposite side (FIFO per ``(src, dst, tag)`` channel).
    """

    nprocs: int
    fastest_hz: float
    ops: list[np.ndarray]
    iargs: list[np.ndarray]
    fargs: list[np.ndarray]
    req_kind: np.ndarray  # REQ_SEND / REQ_RECV
    req_owner: np.ndarray
    req_peer: np.ndarray
    req_tag: np.ndarray
    req_nbytes: np.ndarray
    req_eager: np.ndarray
    req_match: np.ndarray
    coll_kinds: tuple[str, ...]  # kind per call-site seq
    #: per-rank hook sites: ``(op position, "init"|"begin"|"end", phase)``
    #: in call order — op position is the index of the first op recorded
    #: *after* the hook fired (== the op count at the hook site).
    markers: tuple[tuple[tuple[int, str, str], ...], ...] = ()
    #: first global request id per rank (rank-local index offsets).
    req_base: Optional[np.ndarray] = None
    #: rank-equivalence classes: group id per rank / ranks per group.
    group_of: Optional[np.ndarray] = None
    group_members: tuple[np.ndarray, ...] = ()

    @property
    def n_requests(self) -> int:
        return len(self.req_kind)

    @property
    def n_collectives(self) -> int:
        return len(self.coll_kinds)

    @property
    def n_groups(self) -> int:
        return len(self.group_members) if self.group_members else self.nprocs

    @property
    def group_reps(self) -> list[int]:
        """First (lowest) rank of each group, in group-id order."""
        return [int(m[0]) for m in self.group_members]


def _lower(recorder: _Recorder, contexts: list[_RecordingContext], fastest_hz: float,
           nprocs: int, markers: "_MarkerHooks") -> CompiledProgram:
    """Match + validate the recording, then pack it into arrays."""
    # -- collectives: every rank must run the same call-site list ------
    counts = {len(recorder.collectives.get(r, [])) for r in range(nprocs)}
    if len(counts) > 1:
        raise CompileError("ranks disagree on collective count (would deadlock)")
    n_coll = counts.pop() if counts else 0
    coll_kinds: list[str] = []
    for seq in range(n_coll):
        kinds = {recorder.collectives[r][seq] for r in range(nprocs)}
        if len(kinds) != 1:
            raise CompileError(
                f"collective mismatch at call site {seq}: {sorted(kinds)}"
            )
        coll_kinds.append(kinds.pop())

    # -- point-to-point: FIFO matching per (src, dst, tag) channel -----
    sends: dict[tuple[int, int, int], list[int]] = {}
    recvs: dict[tuple[int, int, int], list[int]] = {}
    for req in recorder.requests:
        owner = recorder.req_owner[req.req_id]
        if req.kind == "send":
            sends.setdefault((owner, req.peer, req.tag), []).append(req.req_id)
        else:
            recvs.setdefault((req.peer, owner, req.tag), []).append(req.req_id)
    match = np.full(len(recorder.requests), -1, dtype=np.int64)
    for channel in set(sends) | set(recvs):
        s_ids = sends.get(channel, [])
        r_ids = recvs.get(channel, [])
        if len(s_ids) != len(r_ids):
            raise CompileError(
                f"unmatched point-to-point traffic on channel {channel}: "
                f"{len(s_ids)} sends vs {len(r_ids)} recvs"
            )
        eager_flags = {recorder.requests[i].message.eager for i in s_ids}
        if len(eager_flags) > 1:
            raise CompileError(
                f"mixed eager/rendezvous messages on channel {channel} "
                "(delivery order not statically known)"
            )
        for s_id, r_id in zip(s_ids, r_ids):
            match[s_id] = r_id
            match[r_id] = s_id

    # -- rank-group deduplication: pack one body per equivalence class -
    # The ops stream carries rank-local request indices and per-rank
    # collective seqs, so two ranks with identical recorded programs
    # (and identical hook sites) produce identical tuples here even
    # though their request-table rows differ.  Each distinct body is
    # packed once; grouped ranks share the resulting array objects.
    marker_tuples = [tuple(markers.sites.get(r, ())) for r in range(nprocs)]
    sig_to_group: dict = {}
    group_of = np.empty(nprocs, dtype=np.int64)
    group_members: list[list[int]] = []
    bodies: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for rank, ctx in enumerate(contexts):
        sig = (tuple(ctx._ops), marker_tuples[rank])
        g = sig_to_group.get(sig)
        if g is None:
            g = sig_to_group[sig] = len(bodies)
            n = len(ctx._ops)
            ops = np.empty(n, dtype=np.int8)
            iargs = np.empty(n, dtype=np.int64)
            fargs = np.empty((n, 6), dtype=np.float64)
            for k, (code, iarg, f) in enumerate(ctx._ops):
                ops[k] = code
                iargs[k] = iarg
                fargs[k] = f
            bodies.append((ops, iargs, fargs))
            group_members.append([])
        group_of[rank] = g
        group_members[g].append(rank)
    gof = group_of.tolist()

    reqs = recorder.requests
    return CompiledProgram(
        nprocs=nprocs,
        fastest_hz=fastest_hz,
        ops=[bodies[g][0] for g in gof],
        iargs=[bodies[g][1] for g in gof],
        fargs=[bodies[g][2] for g in gof],
        req_kind=np.array(
            [REQ_SEND if r.kind == "send" else REQ_RECV for r in reqs], dtype=np.int8
        ),
        req_owner=np.array(recorder.req_owner, dtype=np.int64),
        req_peer=np.array([r.peer for r in reqs], dtype=np.int64),
        req_tag=np.array([r.tag for r in reqs], dtype=np.int64),
        req_nbytes=np.array([r.nbytes for r in reqs], dtype=np.float64),
        req_eager=np.array(
            [r.message.eager if r.message is not None else False for r in reqs],
            dtype=bool,
        ),
        req_match=match,
        coll_kinds=tuple(coll_kinds),
        markers=tuple(marker_tuples),
        req_base=np.array([ctx._req_base for ctx in contexts], dtype=np.int64),
        group_of=group_of,
        group_members=tuple(
            np.array(m, dtype=np.int64) for m in group_members
        ),
    )


#: workload -> {fastest_hz: CompiledProgram}.  Weak keys: compiled forms
#: die with the workload object, and a workload is treated as immutable
#: after first compilation (true of every registered workload).
_CACHE: "weakref.WeakKeyDictionary[Workload, dict[float, CompiledProgram]]" = (
    weakref.WeakKeyDictionary()
)


def compile_workload(workload: Workload, fastest_hz: float) -> CompiledProgram:
    """Lower ``workload``'s rank programs to straightline form.

    ``fastest_hz`` is the fastest operating-point frequency of the
    cluster the program will run on (it resolves ``seconds=`` compute
    shorthand into cycles, exactly as the live context does).

    Raises :class:`CompileError` when the program is not static.
    Results are memoized per (workload object, fastest_hz).
    """
    try:
        per_hz = _CACHE.setdefault(workload, {})
    except TypeError:  # unhashable/unweakrefable workload: skip the memo
        per_hz = {}
    cached = per_hz.get(fastest_hz)
    if cached is not None:
        return cached

    cost = workload.cost_model()
    # Compiled against marker hooks: op-wise identical to NO_HOOKS (the
    # markers perform no context operation), but every hook site lands
    # in ``CompiledProgram.markers`` for gear-plan lowering.
    markers = _MarkerHooks()
    program = workload.make_program(markers)
    recorder = _Recorder()
    contexts = []
    try:
        for rank in range(workload.nprocs):
            ctx = _RecordingContext(recorder, rank, workload.nprocs, cost, fastest_hz)
            contexts.append(ctx)
            gen = program(ctx)
            # Drain the generator; a static program never yields
            # anything the recording context did not itself produce.
            for _ in gen:  # pragma: no cover - recording ops never yield
                raise CompileError("program yields a raw simulation event")
        compiled = _lower(recorder, contexts, fastest_hz, workload.nprocs, markers)
    except CompileError:
        raise
    except Exception as exc:
        # Anything else (a validation error, an exotic program) is "not
        # compilable" — the event engine reproduces the genuine error.
        raise CompileError(f"program not statically recordable: {exc!r}") from exc
    per_hz[fastest_hz] = compiled
    return compiled


# ---------------------------------------------------------------------------
# group-level channel classes (the quotient tier's p2p eligibility proof)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChannelClass:
    """One group-level point-to-point channel equivalence class.

    Every lane (see :func:`classify_channels`) carries ``count``
    messages of ``nbytes`` bytes from its ``src_group`` member to its
    ``dst_group`` member on tag ``tag``; ``eager`` is the protocol the
    cost model selected.  ``lanes`` is how many rank-level channels the
    class stands for.
    """

    src_group: int
    dst_group: int
    tag: int
    nbytes: float
    eager: bool
    count: int
    lanes: int


@dataclass(frozen=True)
class ChannelClassification:
    """Verdict of :func:`classify_channels`.

    ``exact`` means the program's request stream decomposes into
    disjoint *lanes* — one member of every participating group each,
    pairwise isomorphic — so running one representative lane reproduces
    every lane's times bit-for-bit.  When it is ``False``, ``reason``
    is a stable fallback code (``p2p_self_send``, ``p2p_zero_byte`` or
    ``p2p_unclassifiable``) naming the first disqualifier found.
    """

    exact: bool
    reason: Optional[str] = None
    classes: tuple[ChannelClass, ...] = ()
    n_lanes: int = 0


def _decline(reason: str) -> ChannelClassification:
    return ChannelClassification(exact=False, reason=reason)


#: compiled program -> {tuple(exec_of): ChannelClassification}.
_CLASSIFY_CACHE: "weakref.WeakKeyDictionary[CompiledProgram, dict]" = (
    weakref.WeakKeyDictionary()
)


def classify_channels(
    compiled: CompiledProgram,
    exec_of: Optional[Sequence[int]] = None,
    members: Optional[Sequence[Sequence[int]]] = None,
) -> ChannelClassification:
    """Classify a program's p2p requests into group-level channel classes.

    ``exec_of``/``members`` describe an execution partition of the
    ranks (a refinement of the compiler's body groups — e.g. the
    quotient tier's per-point partition); they default to the body
    partition itself.  The classification is *exact* when:

    * every member of a group issues, slot for slot, requests with the
      same tag/byte-count/protocol (bodies already pin kind and order);
    * each slot's peers stay inside one fixed other group of the same
      size, hitting every member of it exactly once — so the slot is a
      bijection between the two groups;
    * the statically matched opposite request sits at the same
      rank-local index for every member (FIFO order is the same
      channel subsequence in every lane);
    * the per-slot bijections knit the ranks into disjoint *lanes*
      containing at most one member per group, and within every lane
      the members' rank order agrees with the group representatives'
      rank order (the interpreter breaks same-time channel ties by
      rank id, so the quotient's tie order must be every lane's).

    Self-sends, intra-group channels and zero-byte payloads decline
    (their timing/ordering does not quotient); so does anything the
    proof above cannot certify.  Results are memoized per
    ``(compiled, tuple(exec_of))``.
    """
    if compiled.n_requests == 0:
        return ChannelClassification(exact=True, classes=(), n_lanes=0)
    if exec_of is None:
        if compiled.group_of is None:
            return _decline("p2p_unclassifiable")
        exec_of = [int(g) for g in compiled.group_of]
        members = [list(map(int, m)) for m in compiled.group_members]
    assert members is not None
    key = tuple(exec_of)
    try:
        per_part = _CLASSIFY_CACHE.setdefault(compiled, {})
    except TypeError:  # pragma: no cover - exotic compiled object
        per_part = {}
    hit = per_part.get(key)
    if hit is not None:
        return hit
    result = _classify(compiled, list(key), [list(m) for m in members])
    per_part[key] = result
    return result


def _classify(
    compiled: CompiledProgram,
    exec_of: list[int],
    members: list[list[int]],
) -> ChannelClassification:
    if compiled.req_base is None:
        return _decline("p2p_unclassifiable")
    base = compiled.req_base
    counts = np.diff(base, append=compiled.n_requests)
    eo = np.asarray(exec_of, dtype=np.int64)
    sizes = np.array([len(m) for m in members], dtype=np.int64)
    member_arrs = [np.asarray(m, dtype=np.int64) for m in members]

    classes: dict[tuple, list[int]] = {}
    for g, mem in enumerate(member_arrs):
        c = int(counts[mem[0]])
        if c == 0:
            continue
        if bool(np.any(counts[mem] != c)):
            # Shared bodies make this impossible; guard anyway.
            return _decline("p2p_unclassifiable")
        idx = base[mem][:, None] + np.arange(c)[None, :]  # (S, c)
        peers = compiled.req_peer[idx]
        if bool(np.any(peers == mem[:, None])):
            return _decline("p2p_self_send")
        tags = compiled.req_tag[idx]
        kinds = compiled.req_kind[idx]
        nbytes = compiled.req_nbytes[idx]
        eager = compiled.req_eager[idx]
        if (
            bool(np.any(tags != tags[0]))
            or bool(np.any(kinds != kinds[0]))
            or bool(np.any(nbytes != nbytes[0]))
            or bool(np.any(eager != eager[0]))
        ):
            return _decline("p2p_unclassifiable")
        send_slots = kinds[0] == REQ_SEND
        if bool(np.any(nbytes[0][send_slots] <= 0.0)):
            return _decline("p2p_zero_byte")
        pg = eo[peers]
        if bool(np.any(pg != pg[0])):
            return _decline("p2p_unclassifiable")
        slot_groups = pg[0]
        if bool(np.any(slot_groups == g)):
            # An intra-group channel folds two lane nodes onto one
            # quotient rank (a self-send there) — decline.
            return _decline("p2p_unclassifiable")
        if bool(np.any(sizes[slot_groups] != len(mem))):
            return _decline("p2p_unclassifiable")
        # Each slot must hit every member of its peer group once.
        expected = np.stack(
            [member_arrs[h] for h in slot_groups.tolist()], axis=1
        )
        if bool(np.any(np.sort(peers, axis=0) != expected)):
            return _decline("p2p_unclassifiable")
        local_match = compiled.req_match[idx] - base[peers]
        if bool(np.any(local_match != local_match[0])):
            return _decline("p2p_unclassifiable")
        for j in np.flatnonzero(send_slots).tolist():
            ck = (g, int(slot_groups[j]), int(tags[0][j]),
                  float(nbytes[0][j]), bool(eager[0][j]))
            classes.setdefault(ck, [0, len(mem)])[0] += 1

    # -- lane decomposition: union-find over the (owner, peer) graph --
    touched = np.flatnonzero(counts > 0)
    pair_codes = np.unique(
        compiled.req_owner * np.int64(compiled.nprocs) + compiled.req_peer
    )
    parent = list(range(compiled.nprocs))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for code in pair_codes.tolist():
        a, b = find(code // compiled.nprocs), find(code % compiled.nprocs)
        if a != b:
            parent[b] = a

    lanes: dict[int, list[int]] = {}
    for r in touched.tolist():  # ascending rank order
        lanes.setdefault(find(r), []).append(r)
    seen_groups: set[tuple[int, int]] = set()
    for rs in lanes.values():
        rep_order = []
        for r in rs:
            lane_key = (find(r), exec_of[r])
            if lane_key in seen_groups:
                # Two members of one group inside one lane: the lane
                # is not one-rank-per-group, so no quotient rank can
                # stand for it.
                return _decline("p2p_unclassifiable")
            seen_groups.add(lane_key)
            rep_order.append(members[exec_of[r]][0])
        if rep_order != sorted(rep_order):
            # Same-time channel ties break by rank id; a lane ordered
            # unlike the representatives would tie-break differently.
            return _decline("p2p_unclassifiable")

    out = tuple(
        ChannelClass(src_group=k[0], dst_group=k[1], tag=k[2],
                     nbytes=k[3], eager=k[4], count=v[0], lanes=v[1])
        for k, v in sorted(classes.items())
    )
    return ChannelClassification(exact=True, classes=out, n_lanes=len(lanes))
