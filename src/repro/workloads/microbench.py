"""PowerPack microbenchmarks (paper Section 4.4).

Three pure-signature codes used to build the DVS-effect database that
the EXTERNAL and INTERNAL strategies consult: CPU-bound, memory-bound
and communication-bound.  Running each across the frequency sweep
yields the per-category energy/delay sensitivity that lets a scheduler
map application phases to operating points a priori.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload, register_workload

__all__ = ["CpuBound", "MemoryBound", "CommBound"]


class CpuBound(Workload):
    """Register/cache-resident arithmetic: fully frequency-sensitive."""

    name = "UB-CPU"
    klass = "U"
    phases = ("compute",)

    def __init__(self, nprocs: int = 1, seconds: float = 10.0, **_ignored) -> None:
        self.nprocs = nprocs
        self.seconds = seconds

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            hooks.phase_begin(ctx, "compute")
            yield from ctx.compute(seconds=self.seconds, mem_activity=0.05)
            hooks.phase_end(ctx, "compute")

        return program


class MemoryBound(Workload):
    """Pointer-chasing / streaming: dominated by off-chip stalls."""

    name = "UB-MEM"
    klass = "U"
    phases = ("stream",)

    #: on-chip share of runtime at full clock (STREAM-like: ~10 %).
    ON_FRACTION = 0.1

    def __init__(self, nprocs: int = 1, seconds: float = 10.0, **_ignored) -> None:
        self.nprocs = nprocs
        self.seconds = seconds

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            hooks.phase_begin(ctx, "stream")
            yield from ctx.compute(
                seconds=self.seconds * self.ON_FRACTION,
                offchip_seconds=self.seconds * (1.0 - self.ON_FRACTION),
                mem_activity=0.9,
            )
            hooks.phase_end(ctx, "stream")

        return program


class CommBound(Workload):
    """Ping-pong / exchange loop: dominated by wire time."""

    name = "UB-COMM"
    klass = "U"
    phases = ("exchange",)

    def __init__(
        self,
        nprocs: int = 2,
        rounds: int = 50,
        nbytes: float = 1e6,
        **_ignored,
    ) -> None:
        if nprocs < 2 or nprocs % 2:
            raise ValueError("communication microbenchmark needs an even rank count")
        self.nprocs = nprocs
        self.rounds = rounds
        self.nbytes = nbytes

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            partner = ctx.rank ^ 1
            for _ in range(self.rounds):
                hooks.phase_begin(ctx, "exchange")
                if ctx.rank % 2 == 0:
                    yield from ctx.send(partner, self.nbytes, tag=7)
                    yield from ctx.recv(partner, tag=7)
                else:
                    yield from ctx.recv(partner, tag=7)
                    yield from ctx.send(partner, self.nbytes, tag=7)
                hooks.phase_end(ctx, "exchange")

        return program


class DiskBound(Workload):
    """I/O-wait dominated loop (the paper's "future study" category).

    The CPU idles while the (constant-power) disk streams; the paper
    predicts such codes "will provide more opportunities to DVS for
    energy saving" — which the model confirms: delay is insensitive to
    frequency while idle-period CPU power still scales down.
    """

    name = "UB-DISK"
    klass = "U"
    phases = ("read", "process")

    #: CPU share of each read+process cycle at full clock.
    CPU_FRACTION = 0.08

    def __init__(
        self, nprocs: int = 1, seconds: float = 10.0, cycles_count: int = 20, **_ignored
    ) -> None:
        if cycles_count < 1:
            raise ValueError("need at least one I/O cycle")
        self.nprocs = nprocs
        self.seconds = seconds
        self.cycles_count = cycles_count

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        per_cycle = self.seconds / self.cycles_count

        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            for _ in range(self.cycles_count):
                hooks.phase_begin(ctx, "read")
                yield from ctx.idle(per_cycle * (1.0 - self.CPU_FRACTION))
                hooks.phase_end(ctx, "read")
                hooks.phase_begin(ctx, "process")
                yield from ctx.compute(
                    seconds=per_cycle * self.CPU_FRACTION, mem_activity=0.4
                )
                hooks.phase_end(ctx, "process")

        return program


register_workload("UB-CPU", CpuBound)
register_workload("UB-MEM", MemoryBound)
register_workload("UB-COMM", CommBound)
register_workload("UB-DISK", DiskBound)
