"""NAS Parallel Benchmark models (EP, MG, CG, FT, IS, LU, SP, BT).

Each module encodes one code's phase structure — the communication
pattern and the on-chip/off-chip compute split the paper's profiles
reveal — with per-code constants calibrated against the paper's Table 2
frequency sweep.  See EXPERIMENTS.md for paper-vs-model numbers.
"""

from repro.workloads.base import register_workload
from repro.workloads.npb.params import CLASS_SCALE, ClassScale, scale_for
from repro.workloads.npb.ep import EP
from repro.workloads.npb.ft import FT
from repro.workloads.npb.cg import CG
from repro.workloads.npb.is_ import IS
from repro.workloads.npb.mg import MG
from repro.workloads.npb.lu import LU
from repro.workloads.npb.bt import BT
from repro.workloads.npb.sp import SP

ALL_CODES = {"EP": EP, "FT": FT, "CG": CG, "IS": IS, "MG": MG, "LU": LU, "BT": BT, "SP": SP}

for _name, _cls in ALL_CODES.items():
    register_workload(_name, _cls)

__all__ = [
    "ALL_CODES",
    "BT",
    "CG",
    "CLASS_SCALE",
    "ClassScale",
    "EP",
    "FT",
    "IS",
    "LU",
    "MG",
    "SP",
    "scale_for",
]
