"""BT — block-tridiagonal pseudo-application (runs on a square rank grid).

Alternating-direction implicit solves: a substantial compute block per
direction followed by face exchanges.  Type II crescendo (Table 2:
D(600) = 1.52, E(600) = 0.79), and — like MG — a phase alternation fast
enough to make the CPUSPEED daemon mispredict (paper: 23 % energy at a
36 % delay cost).
"""

from __future__ import annotations

import math
from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel, WaitSignature
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["BT"]


class BT(Workload):
    """NAS BT phase program (3×3 grid by default, like BT.C.9)."""

    name = "BT"
    phases = ("rhs", "solve_x", "solve_y", "solve_z", "face_exchange")

    BASE_ITERS = 60
    #: per-iteration totals at 1400 MHz (split across 3 directions)
    ON_S = 0.78
    OFF_S = 0.72
    FACE_BYTES = 900e3
    MEM_ACTIVITY = 0.5
    #: share of per-iteration compute spent in the communication-free
    #: right-hand-side block (makes polling windows heterogeneous, the
    #: structure that defeats the CPUSPEED daemon's history).
    RHS_SHARE = 0.35
    #: per-rank compute jitter (block sizes never split perfectly even);
    #: breaks daemon symmetry so the distributed misprediction feedback
    #: the paper measures can develop.
    IMBALANCE = 0.05

    def __init__(self, klass: str = "C", nprocs: int = 9) -> None:
        side = int(round(math.sqrt(nprocs)))
        if side * side != nprocs or nprocs < 4:
            raise ValueError("BT needs a square rank count >= 4 (paper runs 9)")
        self.side = side
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 9.0 / nprocs
        self.iters = s.n_iters(self.BASE_ITERS)
        self.on_s = self.ON_S * s.seconds * rank_scale
        self.off_s = self.OFF_S * s.seconds * rank_scale
        self.face_bytes = self.FACE_BYTES * s.bytes * rank_scale
        self.rank_factor = [
            1.0 + self.IMBALANCE * math.sin(2.0 * math.pi * r / nprocs)
            for r in range(nprocs)
        ]

    def cost_model(self) -> CostModel:
        # Blocking face exchanges spend most of their time in poll/DMA
        # wait (low /proc busy share) — calibrated against the paper's
        # "auto" column for BT.
        return CostModel(
            comm_progress=WaitSignature(
                activity=0.85, busy=0.10, mem_activity=0.25, nic_activity=1.0
            )
        )

    def neighbors(self, rank: int) -> dict[str, tuple[int, int]]:
        """(forward, backward) neighbour per direction on the torus grid."""
        side = self.side
        row, col = divmod(rank, side)
        return {
            "solve_x": (row * side + (col + 1) % side, row * side + (col - 1) % side),
            "solve_y": (((row + 1) % side) * side + col, ((row - 1) % side) * side + col),
            "solve_z": ((rank + side + 1) % self.nprocs, (rank - side - 1) % self.nprocs),
        }

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            nbrs = self.neighbors(ctx.rank)
            imb = self.rank_factor[ctx.rank]
            rhs_on = self.on_s * self.RHS_SHARE * imb
            rhs_off = self.off_s * self.RHS_SHARE * imb
            solve_on = self.on_s * (1.0 - self.RHS_SHARE) / 3.0 * imb
            solve_off = self.off_s * (1.0 - self.RHS_SHARE) / 3.0 * imb
            for _ in range(self.iters):
                hooks.phase_begin(ctx, "rhs")
                yield from ctx.compute(
                    seconds=rhs_on,
                    offchip_seconds=rhs_off,
                    mem_activity=self.MEM_ACTIVITY,
                )
                hooks.phase_end(ctx, "rhs")
                for direction in ("solve_x", "solve_y", "solve_z"):
                    fwd, bwd = nbrs[direction]
                    hooks.phase_begin(ctx, direction)
                    yield from ctx.compute(
                        seconds=solve_on,
                        offchip_seconds=solve_off,
                        mem_activity=self.MEM_ACTIVITY,
                    )
                    hooks.phase_end(ctx, direction)
                    hooks.phase_begin(ctx, "face_exchange")
                    yield from ctx.sendrecv(fwd, self.face_bytes, src=bwd, tag=31)
                    yield from ctx.sendrecv(bwd, self.face_bytes, src=fwd, tag=32)
                    hooks.phase_end(ctx, "face_exchange")

        return program
