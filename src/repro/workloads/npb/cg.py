"""CG — conjugate gradient kernel.

The paper's profile (Figure 12): communication-intensive with
synchronisation every cycle, Wait/Send dominant, short cycles (DVS
transition overhead non-negligible), and *asymmetric* behaviour —
ranks 4–7 show a larger communication-to-computation ratio than ranks
0–3.  That asymmetry is what the INTERNAL strategy exploits with
heterogeneous per-rank speeds (Figure 13).

Calibration: Table 2 gives D(600) = 1.14 → w_on ≈ 0.105 of step time on
the dominant (compute-heavy) rank group; the rest is memory stall plus
the partner exchange.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["CG"]


class CG(Workload):
    """NAS CG phase program (two asymmetric rank groups)."""

    name = "CG"
    phases = ("matvec", "exchange", "residual")

    BASE_OUTER = 25
    INNER = 20
    # heavy group (ranks < nprocs/2): on-chip + off-chip per inner step
    HEAVY_ON_S = 0.0131
    HEAVY_OFF_S = 0.0569
    # light group: less compute, waits on the heavy group every step
    LIGHT_ON_S = 0.0155
    LIGHT_OFF_S = 0.0480
    EXCHANGE_BYTES = 560e3
    MEM_ACTIVITY = 0.6

    def __init__(self, klass: str = "C", nprocs: int = 8) -> None:
        if nprocs < 2 or nprocs % 2:
            raise ValueError("CG model needs an even rank count >= 2")
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 8.0 / nprocs
        self.outer = s.n_iters(self.BASE_OUTER)
        self.inner = self.INNER
        self.heavy_on = self.HEAVY_ON_S * s.seconds * rank_scale
        self.heavy_off = self.HEAVY_OFF_S * s.seconds * rank_scale
        self.light_on = self.LIGHT_ON_S * s.seconds * rank_scale
        self.light_off = self.LIGHT_OFF_S * s.seconds * rank_scale
        self.exchange_bytes = self.EXCHANGE_BYTES * s.bytes * rank_scale

    def is_heavy(self, rank: int) -> bool:
        """Ranks 0..p/2-1 are the compute-heavy group (paper: 0-3)."""
        return rank < self.nprocs // 2

    def partner(self, rank: int) -> int:
        """Transpose partner: heavy rank i pairs with light rank i+p/2."""
        half = self.nprocs // 2
        return rank + half if rank < half else rank - half

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            heavy = self.is_heavy(ctx.rank)
            on = self.heavy_on if heavy else self.light_on
            off = self.heavy_off if heavy else self.light_off
            partner = self.partner(ctx.rank)
            for _ in range(self.outer):
                for _ in range(self.inner):
                    hooks.phase_begin(ctx, "matvec")
                    yield from ctx.compute(
                        seconds=on,
                        offchip_seconds=off,
                        mem_activity=self.MEM_ACTIVITY,
                    )
                    hooks.phase_end(ctx, "matvec")
                    hooks.phase_begin(ctx, "exchange")
                    yield from ctx.sendrecv(
                        partner, self.exchange_bytes, src=partner, tag=3
                    )
                    hooks.phase_end(ctx, "exchange")
                hooks.phase_begin(ctx, "residual")
                yield from ctx.allreduce(8)
                yield from ctx.allreduce(8)
                hooks.phase_end(ctx, "residual")

        return program
