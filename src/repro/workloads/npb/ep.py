"""EP — embarrassingly parallel kernel.

Pure register/cache-resident random-number computation with three tiny
terminal reductions.  The paper's Type I crescendo: delay scales almost
linearly with 1/f (Table 2: D(600) = 2.35), no energy benefit from DVS.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["EP"]


class EP(Workload):
    """NAS EP phase program."""

    name = "EP"
    phases = ("gaussian", "reduce")

    BASE_CHUNKS = 20
    ON_S_TOTAL = 100.0
    OFF_S_TOTAL = 1.5
    MEM_ACTIVITY = 0.08

    def __init__(self, klass: str = "C", nprocs: int = 8) -> None:
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 8.0 / nprocs
        self.chunks = s.n_iters(self.BASE_CHUNKS)
        self.on_s = self.ON_S_TOTAL * s.seconds * rank_scale / self.chunks
        self.off_s = self.OFF_S_TOTAL * s.seconds * rank_scale / self.chunks

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            for _ in range(self.chunks):
                hooks.phase_begin(ctx, "gaussian")
                yield from ctx.compute(
                    seconds=self.on_s,
                    offchip_seconds=self.off_s,
                    mem_activity=self.MEM_ACTIVITY,
                )
                hooks.phase_end(ctx, "gaussian")
            hooks.phase_begin(ctx, "reduce")
            for _ in range(3):
                yield from ctx.allreduce(8)
            hooks.phase_end(ctx, "reduce")

        return program
