"""FT — 3-D FFT kernel.

The paper's profile (Figure 9): communication-bound, comm:comp ≈ 2:1,
dominated by all-to-all transposes, balanced across ranks, iterations
long enough that DVS transition cost is negligible.  This is the
INTERNAL strategy's showcase (Figure 10/11): scale down around the
all-to-all, restore afterwards.

Calibration (class C, 8 ranks): Table 2 gives D(600 MHz) = 1.13 →
frequency-sensitive share w_on ≈ 0.0975 of base runtime; the remaining
compute time is off-chip (FFT is memory bound), and wire time is sized
to the 2:1 comm/comp ratio.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel, WaitSignature
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["FT"]


class FT(Workload):
    """NAS FT phase program."""

    name = "FT"
    phases = ("setup", "evolve", "alltoall", "checksum")

    # class-C per-iteration constants (seconds at 1400 MHz / bytes)
    BASE_ITERS = 12
    ON_S = 0.78
    OFF_S = 1.42
    BYTES_PER_PAIR = 6.96e6
    SETUP_ON_S = 0.8
    SETUP_OFF_S = 1.2
    MEM_ACTIVITY = 0.55

    def __init__(self, klass: str = "C", nprocs: int = 8) -> None:
        if nprocs < 2:
            raise ValueError("FT model needs at least 2 ranks")
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        # Per-rank work shrinks as ranks grow (strong scaling vs the
        # 8-rank calibration point); wire bytes per pair shrink as 1/p².
        rank_scale = 8.0 / nprocs
        self.iters = s.n_iters(self.BASE_ITERS)
        self.on_s = self.ON_S * s.seconds * rank_scale
        self.off_s = self.OFF_S * s.seconds * rank_scale
        self.bytes_per_pair = self.BYTES_PER_PAIR * s.bytes * rank_scale**2
        self.setup_on_s = self.SETUP_ON_S * s.seconds * rank_scale
        self.setup_off_s = self.SETUP_OFF_S * s.seconds * rank_scale

    def cost_model(self) -> CostModel:
        # The transpose keeps the CPU fully busy packing/unpacking and
        # driving the NIC (MPICH alltoall progress loop) — this is what
        # makes scaling down *during* the all-to-all so profitable
        # (Figure 11) — while /proc still reports mixed utilization.
        return CostModel(
            comm_progress=WaitSignature(
                activity=1.0, busy=0.45, mem_activity=0.25, nic_activity=1.0
            )
        )

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            hooks.phase_begin(ctx, "setup")
            yield from ctx.compute(
                seconds=self.setup_on_s,
                offchip_seconds=self.setup_off_s,
                mem_activity=self.MEM_ACTIVITY,
            )
            hooks.phase_end(ctx, "setup")
            for _ in range(self.iters):
                hooks.phase_begin(ctx, "evolve")
                yield from ctx.compute(
                    seconds=self.on_s,
                    offchip_seconds=self.off_s,
                    mem_activity=self.MEM_ACTIVITY,
                )
                hooks.phase_end(ctx, "evolve")
                # This is the source location of Figure 10's
                # set_cpuspeed(low) ... mpi_alltoall ... set_cpuspeed(high).
                hooks.phase_begin(ctx, "alltoall")
                yield from ctx.alltoall(self.bytes_per_pair)
                hooks.phase_end(ctx, "alltoall")
            hooks.phase_begin(ctx, "checksum")
            yield from ctx.allreduce(16)
            hooks.phase_end(ctx, "checksum")

        return program
