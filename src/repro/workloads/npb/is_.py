"""IS — integer bucket sort kernel.

Type IV in the paper's taxonomy: near-zero performance loss and linear
energy saving when scaling the clock down — plus the paper's anomaly:
IS runs *faster* below the top frequency (normalized delay 0.91 at
1000 MHz), attributed to reduced packet collisions once senders inject
more slowly into the saturated fabric.  The model reproduces that with
the cost model's collision term.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel, WaitSignature
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["IS"]


class IS(Workload):
    """NAS IS phase program."""

    name = "IS"
    phases = ("rank_keys", "alltoall_sizes", "alltoallv_keys", "verify")

    BASE_ITERS = 10
    ON_S = 0.5
    OFF_S = 0.5
    KEY_BYTES_PER_RANK = 36e6
    SIZES_BYTES_PER_PAIR = 1024
    MEM_ACTIVITY = 0.5
    #: saturating alltoallv sees ~12 % extra time at full clock.
    COLLISION_COEFF = 0.117

    def __init__(self, klass: str = "C", nprocs: int = 8) -> None:
        if nprocs < 2:
            raise ValueError("IS model needs at least 2 ranks")
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 8.0 / nprocs
        self.iters = s.n_iters(self.BASE_ITERS)
        self.on_s = self.ON_S * s.seconds * rank_scale
        self.off_s = self.OFF_S * s.seconds * rank_scale
        self.key_bytes = self.KEY_BYTES_PER_RANK * s.bytes * rank_scale
        self.sizes_bytes = self.SIZES_BYTES_PER_PAIR

    def cost_model(self) -> CostModel:
        # Huge DMA-driven transfers leave the CPU less active than FT's
        # medium transposes (calibrated against Table 2's IS energy row).
        return CostModel(
            collision_coeff=self.COLLISION_COEFF,
            comm_progress=WaitSignature(
                activity=0.50, busy=0.45, mem_activity=0.20, nic_activity=1.0
            ),
        )

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            for _ in range(self.iters):
                hooks.phase_begin(ctx, "rank_keys")
                yield from ctx.compute(
                    seconds=self.on_s,
                    offchip_seconds=self.off_s,
                    mem_activity=self.MEM_ACTIVITY,
                )
                hooks.phase_end(ctx, "rank_keys")
                hooks.phase_begin(ctx, "alltoall_sizes")
                yield from ctx.alltoall(self.sizes_bytes)
                hooks.phase_end(ctx, "alltoall_sizes")
                hooks.phase_begin(ctx, "alltoallv_keys")
                yield from ctx.alltoallv(self.key_bytes)
                hooks.phase_end(ctx, "alltoallv_keys")
            hooks.phase_begin(ctx, "verify")
            yield from ctx.allreduce(8)
            hooks.phase_end(ctx, "verify")

        return program
