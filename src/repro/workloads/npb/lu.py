"""LU — SSOR pseudo-application.

Wavefront sweeps with many small pipelined messages; compute dominates
(Table 2: D(600) = 1.58 → w_on ≈ 0.435).  Utilization stays high, so
the CPUSPEED daemon keeps the clock at maximum (paper: ~4 % energy,
~1 % delay under the daemon) — a Type II crescendo.

The wavefront is modelled in steady state: each rank interleaves panel
computation with small eager exchanges to its pipeline neighbours
(chunked, so ranks stay concurrent the way a filled pipeline does),
rather than simulating every k-plane message of the real code.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["LU"]


class LU(Workload):
    """NAS LU phase program (steady-state pipelined sweeps)."""

    name = "LU"
    phases = ("sweep_lower", "sweep_upper", "exchange")

    BASE_ITERS = 80
    #: per-iteration totals at 1400 MHz
    ON_S = 0.44
    OFF_S = 0.56
    #: chunks per sweep (pipeline granularity)
    CHUNKS = 2
    PIPE_BYTES = 40e3
    MEM_ACTIVITY = 0.45

    def __init__(self, klass: str = "C", nprocs: int = 8) -> None:
        if nprocs < 2:
            raise ValueError("LU model needs at least 2 ranks")
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 8.0 / nprocs
        self.iters = s.n_iters(self.BASE_ITERS)
        self.on_s = self.ON_S * s.seconds * rank_scale
        self.off_s = self.OFF_S * s.seconds * rank_scale
        self.pipe_bytes = max(1.0, self.PIPE_BYTES * s.bytes)

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            rank, size = ctx.rank, ctx.size
            succ = (rank + 1) % size
            pred = (rank - 1) % size
            chunk_on = self.on_s / (2.0 * self.CHUNKS)
            chunk_off = self.off_s / (2.0 * self.CHUNKS)
            for _ in range(self.iters):
                for sweep, send_to, recv_from in (
                    ("sweep_lower", succ, pred),
                    ("sweep_upper", pred, succ),
                ):
                    for _chunk in range(self.CHUNKS):
                        hooks.phase_begin(ctx, sweep)
                        yield from ctx.compute(
                            seconds=chunk_on,
                            offchip_seconds=chunk_off,
                            mem_activity=self.MEM_ACTIVITY,
                        )
                        hooks.phase_end(ctx, sweep)
                        hooks.phase_begin(ctx, "exchange")
                        yield from ctx.sendrecv(
                            send_to, self.pipe_bytes, src=recv_from, tag=21
                        )
                        hooks.phase_end(ctx, "exchange")

        return program
