"""MG — multigrid kernel.

V-cycles over a grid hierarchy: compute bursts and halo exchanges
alternate quickly, which is exactly the structure that defeats the
CPUSPEED daemon's history-based prediction (paper: 21 % energy saved at
a 32 % delay cost).  Type II crescendo: energy falls about as fast as
delay rises (Table 2: D(600) = 1.39, E(600) = 0.76).
"""

from __future__ import annotations

import math
from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel, WaitSignature
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["MG"]


class MG(Workload):
    """NAS MG phase program."""

    name = "MG"
    phases = ("residual", "halo", "norm")

    BASE_CYCLES = 30
    LEVELS = 5
    #: per-V-cycle totals at 1400 MHz
    ON_S = 0.35
    OFF_S = 0.45
    HALO_BYTES_L0 = 1.7e6
    MEM_ACTIVITY = 0.6
    #: geometric decay of work and message size per level
    LEVEL_DECAY = 0.25
    #: per-rank compute jitter (grid halo splits are never perfectly even)
    IMBALANCE = 0.03

    def __init__(self, klass: str = "C", nprocs: int = 8) -> None:
        if nprocs < 2:
            raise ValueError("MG model needs at least 2 ranks")
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 8.0 / nprocs
        self.cycles = s.n_iters(self.BASE_CYCLES)
        # per-level compute shares (down-sweep + up-sweep touch each level)
        weights = [self.LEVEL_DECAY**l for l in range(self.LEVELS)]
        total = sum(weights)
        self.level_on = [self.ON_S * s.seconds * rank_scale * w / total for w in weights]
        self.level_off = [self.OFF_S * s.seconds * rank_scale * w / total for w in weights]
        self.level_bytes = [
            self.HALO_BYTES_L0 * s.bytes * rank_scale * self.LEVEL_DECAY**l
            for l in range(self.LEVELS)
        ]
        self.rank_factor = [
            1.0 + self.IMBALANCE * math.sin(2.0 * math.pi * r / nprocs)
            for r in range(nprocs)
        ]

    def cost_model(self) -> CostModel:
        # Halo exchanges at fine granularity: mostly blocked polling
        # (low busy share), which pulls the daemon's windows under its
        # usage threshold — calibrated against the paper's MG "auto".
        return CostModel(
            comm_progress=WaitSignature(
                activity=0.85, busy=0.25, mem_activity=0.25, nic_activity=1.0
            )
        )

    def neighbor(self, rank: int) -> int:
        """Halo partner (hypercube-style pairing by lowest dimension)."""
        return rank ^ 1 if self.nprocs > 1 else rank

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            nbr = self.neighbor(ctx.rank)
            imb = self.rank_factor[ctx.rank]
            for _ in range(self.cycles):
                # down-sweep then up-sweep over the level hierarchy
                for level in list(range(self.LEVELS)) + list(
                    reversed(range(self.LEVELS))
                ):
                    hooks.phase_begin(ctx, "residual")
                    yield from ctx.compute(
                        seconds=self.level_on[level] / 2.0 * imb,
                        offchip_seconds=self.level_off[level] / 2.0 * imb,
                        mem_activity=self.MEM_ACTIVITY,
                    )
                    hooks.phase_end(ctx, "residual")
                    hooks.phase_begin(ctx, "halo")
                    yield from ctx.sendrecv(
                        nbr, self.level_bytes[level], src=nbr, tag=10 + level
                    )
                    hooks.phase_end(ctx, "halo")
                hooks.phase_begin(ctx, "norm")
                yield from ctx.allreduce(8)
                hooks.phase_end(ctx, "norm")

        return program
