"""Problem-class scaling shared by all NPB models.

The paper runs class C; smaller classes scale down iteration counts,
per-phase durations and message sizes.  Class ``T`` (tiny) is this
package's addition for fast unit tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ClassScale", "CLASS_SCALE", "scale_for"]


@dataclass(frozen=True)
class ClassScale:
    """Multipliers applied to a code's class-C constants."""

    iters: float
    seconds: float
    bytes: float

    def n_iters(self, base: int, minimum: int = 2) -> int:
        """Scaled iteration count (never below ``minimum``)."""
        return max(minimum, int(math.ceil(base * self.iters)))


CLASS_SCALE: dict[str, ClassScale] = {
    "C": ClassScale(1.0, 1.0, 1.0),
    "B": ClassScale(0.6, 0.7, 0.7),
    "A": ClassScale(0.4, 0.45, 0.45),
    "W": ClassScale(0.25, 0.2, 0.2),
    "S": ClassScale(0.15, 0.08, 0.08),
    "T": ClassScale(0.08, 0.03, 0.03),
}


def scale_for(klass: str) -> ClassScale:
    try:
        return CLASS_SCALE[klass.upper()]
    except KeyError:
        raise KeyError(
            f"unknown problem class {klass!r}; known: {sorted(CLASS_SCALE)}"
        ) from None
