"""SP — scalar-pentadiagonal pseudo-application (square rank grid).

Same ADI skeleton as BT but with less computation per exchanged byte:
Type III crescendo (Table 2: D(600) = 1.18 → w_on ≈ 0.135) with a mild
congestion dip at the top clock (the paper measures D(1200) = 0.99 and
SP saving energy *and* time under ED3P selection).
"""

from __future__ import annotations

import math
from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel, WaitSignature
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload
from repro.workloads.npb.params import scale_for

__all__ = ["SP"]


class SP(Workload):
    """NAS SP phase program (3×3 grid by default, like SP.C.9)."""

    name = "SP"
    phases = ("solve_x", "solve_y", "solve_z", "face_exchange")

    BASE_ITERS = 60
    ON_S = 0.28
    OFF_S = 0.68
    FACE_BYTES = 1.17e6
    MEM_ACTIVITY = 0.55
    COLLISION_COEFF = 0.12

    def __init__(self, klass: str = "C", nprocs: int = 9) -> None:
        side = int(round(math.sqrt(nprocs)))
        if side * side != nprocs or nprocs < 4:
            raise ValueError("SP needs a square rank count >= 4 (paper runs 9)")
        self.side = side
        self.klass = klass.upper()
        self.nprocs = nprocs
        s = scale_for(self.klass)
        rank_scale = 9.0 / nprocs
        self.iters = s.n_iters(self.BASE_ITERS)
        self.on_s = self.ON_S * s.seconds * rank_scale
        self.off_s = self.OFF_S * s.seconds * rank_scale
        self.face_bytes = self.FACE_BYTES * s.bytes * rank_scale

    def cost_model(self) -> CostModel:
        return CostModel(
            collision_coeff=self.COLLISION_COEFF,
            collision_applies_p2p=True,
            comm_progress=WaitSignature(
                activity=0.85, busy=0.30, mem_activity=0.25, nic_activity=1.0
            ),
        )

    def neighbors(self, rank: int) -> dict[str, tuple[int, int]]:
        side = self.side
        row, col = divmod(rank, side)
        return {
            "solve_x": (row * side + (col + 1) % side, row * side + (col - 1) % side),
            "solve_y": (((row + 1) % side) * side + col, ((row - 1) % side) * side + col),
            "solve_z": ((rank + side + 1) % self.nprocs, (rank - side - 1) % self.nprocs),
        }

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            nbrs = self.neighbors(ctx.rank)
            for _ in range(self.iters):
                for direction in ("solve_x", "solve_y", "solve_z"):
                    fwd, bwd = nbrs[direction]
                    hooks.phase_begin(ctx, direction)
                    yield from ctx.compute(
                        seconds=self.on_s / 3.0,
                        offchip_seconds=self.off_s / 3.0,
                        mem_activity=self.MEM_ACTIVITY,
                    )
                    hooks.phase_end(ctx, direction)
                    hooks.phase_begin(ctx, "face_exchange")
                    yield from ctx.sendrecv(fwd, self.face_bytes, src=bwd, tag=41)
                    yield from ctx.sendrecv(bwd, self.face_bytes, src=fwd, tag=42)
                    hooks.phase_end(ctx, "face_exchange")

        return program
