"""Declarative phase-program IR.

The built-in NPB models are hand-written generator programs.  For user
workloads, this module offers a small declarative alternative: describe
an application as a list of :class:`Phase` steps (optionally nested in
:class:`Loop`), and :class:`PhaseProgramWorkload` turns it into a rank
program with hooks announced around every named phase — so EXTERNAL,
INTERNAL and daemon scheduling all apply to it unchanged.

Example::

    program = [
        Phase.compute("init", seconds=0.5, offchip_seconds=0.5),
        Loop(20, [
            Phase.compute("stencil", seconds=0.05, offchip_seconds=0.1),
            Phase.exchange("halo", neighbor="right", nbytes=500_000),
            Phase.collective("residual", kind="allreduce", nbytes=8),
        ]),
    ]
    workload = PhaseProgramWorkload("STENCIL", program, nprocs=8)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence, Union

from repro.mpi.communicator import RankContext
from repro.mpi.costmodel import CostModel
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload

__all__ = ["Phase", "Loop", "PhaseProgramWorkload"]

#: neighbour selectors for exchange phases.
_NEIGHBORS: dict[str, Callable[[int, int], int]] = {
    "left": lambda rank, size: (rank - 1) % size,
    "right": lambda rank, size: (rank + 1) % size,
    "pair": lambda rank, size: rank ^ 1 if (rank ^ 1) < size else rank,
    "opposite": lambda rank, size: (rank + size // 2) % size,
}

_COLLECTIVES = ("barrier", "bcast", "reduce", "allreduce", "allgather",
                "alltoall", "alltoallv")


@dataclass(frozen=True)
class Phase:
    """One named step of a phase program.

    Use the constructors (:meth:`compute`, :meth:`exchange`,
    :meth:`collective`, :meth:`idle`) rather than filling fields by
    hand.
    """

    name: str
    kind: str
    seconds: float = 0.0
    offchip_seconds: float = 0.0
    mem_activity: float = 0.3
    nbytes: float = 0.0
    neighbor: str = "right"
    collective: str = "barrier"
    #: optional per-rank scale factor for compute phases (imbalance).
    rank_scale: Optional[Callable[[int, int], float]] = None

    # ------------------------------------------------------------------
    @classmethod
    def compute(
        cls,
        name: str,
        seconds: float,
        offchip_seconds: float = 0.0,
        mem_activity: float = 0.3,
        rank_scale: Optional[Callable[[int, int], float]] = None,
    ) -> "Phase":
        """On-chip + off-chip computation (scales with the clock)."""
        if seconds < 0 or offchip_seconds < 0:
            raise ValueError("compute durations must be non-negative")
        return cls(
            name,
            "compute",
            seconds=seconds,
            offchip_seconds=offchip_seconds,
            mem_activity=mem_activity,
            rank_scale=rank_scale,
        )

    @classmethod
    def exchange(cls, name: str, neighbor: str, nbytes: float) -> "Phase":
        """Symmetric sendrecv with a topological neighbour.

        ``neighbor`` is one of ``left``, ``right``, ``pair``,
        ``opposite``.
        """
        if neighbor not in _NEIGHBORS:
            raise ValueError(
                f"unknown neighbor {neighbor!r}; choose from {sorted(_NEIGHBORS)}"
            )
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return cls(name, "exchange", nbytes=nbytes, neighbor=neighbor)

    @classmethod
    def collective(cls, name: str, kind: str, nbytes: float = 0.0) -> "Phase":
        """One of the supported MPI collectives."""
        if kind not in _COLLECTIVES:
            raise ValueError(
                f"unknown collective {kind!r}; choose from {_COLLECTIVES}"
            )
        return cls(name, "collective", nbytes=nbytes, collective=kind)

    @classmethod
    def idle(cls, name: str, seconds: float) -> "Phase":
        """Plain slack (no CPU occupancy)."""
        if seconds < 0:
            raise ValueError("idle duration must be non-negative")
        return cls(name, "idle", seconds=seconds)

    # ------------------------------------------------------------------
    def run(self, ctx: RankContext, hooks: PhaseHooks) -> Generator:
        hooks.phase_begin(ctx, self.name)
        if self.kind == "compute":
            scale = self.rank_scale(ctx.rank, ctx.size) if self.rank_scale else 1.0
            yield from ctx.compute(
                seconds=self.seconds * scale,
                offchip_seconds=self.offchip_seconds * scale,
                mem_activity=self.mem_activity,
            )
        elif self.kind == "exchange":
            send_to = _NEIGHBORS[self.neighbor](ctx.rank, ctx.size)
            # Receive from whoever sends to *us* (the inverse mapping),
            # so every send has a matching receive for any rank count.
            if self.neighbor == "right":
                recv_from = (ctx.rank - 1) % ctx.size
            elif self.neighbor == "left":
                recv_from = (ctx.rank + 1) % ctx.size
            elif self.neighbor == "opposite":
                recv_from = (ctx.rank - ctx.size // 2) % ctx.size
            else:  # pair: an involution (self-mapped at the odd tail)
                recv_from = send_to
            if send_to == ctx.rank:
                yield from ctx.idle(0.0)
            else:
                req = ctx.isend(send_to, self.nbytes, tag=hash(self.name) % 1000)
                if recv_from != ctx.rank:
                    yield from ctx.recv(recv_from, tag=hash(self.name) % 1000)
                yield from ctx.wait(req)
        elif self.kind == "collective":
            op = getattr(ctx, self.collective)
            if self.collective == "barrier":
                yield from op()
            else:
                yield from op(self.nbytes)
        elif self.kind == "idle":
            yield from ctx.idle(self.seconds)
        else:  # pragma: no cover - constructor-guarded
            raise ValueError(f"unknown phase kind {self.kind!r}")
        hooks.phase_end(ctx, self.name)


@dataclass(frozen=True)
class Loop:
    """Repeat a block of steps."""

    iterations: int
    body: Sequence[Union["Phase", "Loop"]]

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")

    def run(self, ctx: RankContext, hooks: PhaseHooks) -> Generator:
        for _ in range(self.iterations):
            for step in self.body:
                yield from step.run(ctx, hooks)


def _collect_phases(steps: Sequence[Union[Phase, Loop]]) -> tuple[str, ...]:
    names: list[str] = []
    for step in steps:
        if isinstance(step, Loop):
            for name in _collect_phases(step.body):
                if name not in names:
                    names.append(name)
        else:
            if step.name not in names:
                names.append(step.name)
    return tuple(names)


class PhaseProgramWorkload(Workload):
    """A workload assembled from a declarative phase program."""

    def __init__(
        self,
        name: str,
        steps: Sequence[Union[Phase, Loop]],
        nprocs: int = 8,
        klass: str = "U",
        cost: Optional[CostModel] = None,
    ) -> None:
        if not steps:
            raise ValueError("a phase program needs at least one step")
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.name = name
        self.klass = klass
        self.nprocs = nprocs
        self.steps = list(steps)
        self._cost = cost
        self.phases = _collect_phases(self.steps)

    def cost_model(self) -> CostModel:
        return self._cost or CostModel()

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            for step in self.steps:
                yield from step.run(ctx, hooks)

        return program
