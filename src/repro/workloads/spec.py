"""SPEC 2000 swim — the paper's single-node motivating example.

Figure 2's energy-delay crescendo: swim's memory stalls give DVS slack
on a single node — delay rises only ~25 % at 600 MHz while energy falls
steadily (≈8 % saving at 1200 MHz with <1 % delay).

Calibration: D(600) ≈ 1.25 → w_on ≈ 0.1875 of runtime is on-chip.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mpi.communicator import RankContext
from repro.workloads.base import NO_HOOKS, PhaseHooks, Workload, register_workload

__all__ = ["Swim"]


class Swim(Workload):
    """swim (shallow-water model): serial, memory bound."""

    name = "SWIM"
    klass = "REF"
    nprocs = 1
    phases = ("timestep",)

    BASE_STEPS = 40
    ON_S = 0.28
    OFF_S = 1.22
    MEM_ACTIVITY = 0.85

    def __init__(self, klass: str = "REF", nprocs: int = 1, steps: int | None = None) -> None:
        if nprocs != 1:
            raise ValueError("swim is a single-node workload")
        self.klass = klass.upper()
        self.steps = steps if steps is not None else self.BASE_STEPS
        # "T" is the NPB models' tiny test class; accept it here too so
        # sweeps can use one class string across every workload.
        if self.klass in ("TEST", "T"):
            self.steps = min(self.steps, 4)

    def make_program(
        self, hooks: PhaseHooks = NO_HOOKS
    ) -> Callable[[RankContext], Generator]:
        def program(ctx: RankContext) -> Generator:
            hooks.on_init(ctx)
            for _ in range(self.steps):
                hooks.phase_begin(ctx, "timestep")
                yield from ctx.compute(
                    seconds=self.ON_S,
                    offchip_seconds=self.OFF_S,
                    mem_activity=self.MEM_ACTIVITY,
                )
                hooks.phase_end(ctx, "timestep")

        return program


register_workload("SWIM", Swim)
