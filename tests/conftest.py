"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.sim import Environment
from repro.hardware import NEMO_POWER, PENTIUM_M_TABLE, nemo_cluster


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def cluster(env):
    """A 4-node NEMO-like cluster without batteries (fast)."""
    return nemo_cluster(env, 4, with_batteries=False)


@pytest.fixture
def cluster16(env):
    """The full 16-node NEMO testbed, with batteries."""
    return nemo_cluster(env, 16, with_batteries=True, seed=7)


@pytest.fixture
def node(cluster):
    return cluster[0]


@pytest.fixture
def cpu(node):
    return node.cpu


def approx_rel(value, expected, rel=0.05):
    """True when value is within ``rel`` of expected."""
    return abs(value - expected) <= rel * abs(expected)
