"""Advisor with the beyond-the-paper daemons enabled."""

import pytest

from repro.core import ED3P, ScheduleAdvisor
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def ft_advice_future():
    return ScheduleAdvisor(
        metric=ED3P, include_future_daemons=True
    ).advise(get_workload("FT", klass="T"))


def test_future_daemons_in_candidate_list(ft_advice_future):
    labels = " ".join(c.label for c in ft_advice_future.candidates)
    assert "predictive daemon" in labels
    assert "beta daemon" in labels


def test_candidates_still_ranked(ft_advice_future):
    values = [c.metric_value for c in ft_advice_future.candidates]
    assert values == sorted(values)


def test_beta_uses_delay_cap_as_budget():
    advice = ScheduleAdvisor(
        metric=ED3P,
        include_future_daemons=True,
        include_daemon=False,
        max_delay_increase=0.10,
    ).advise(get_workload("EP", klass="T"))
    labels = [c.label for c in advice.candidates]
    assert any("delta=0.1" in label for label in labels)


def test_compliant_candidates_outrank_violators():
    advice = ScheduleAdvisor(
        metric=ED3P,
        include_future_daemons=True,
        max_delay_increase=0.02,
    ).advise(get_workload("CG", klass="T"))
    seen_violation = False
    for c in advice.candidates:
        violates = c.delay_increase > 0.02 + 1e-9
        if seen_violation:
            assert violates, "a compliant candidate was ranked below a violator"
        seen_violation = seen_violation or violates
