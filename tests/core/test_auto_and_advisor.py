"""Automated INTERNAL derivation and the schedule advisor."""

import pytest

from repro.core import (
    ED2P,
    ED3P,
    ScheduleAdvisor,
    derive_phase_policy,
    derive_rank_policy,
    profile_workload,
    run_workload,
    InternalStrategy,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def ft_profile():
    return profile_workload(get_workload("FT", klass="T"))


@pytest.fixture(scope="module")
def cg_profile():
    return profile_workload(get_workload("CG", klass="T"))


@pytest.fixture(scope="module")
def ep_profile():
    return profile_workload(get_workload("EP", klass="T"))


class TestDerivePhasePolicy:
    def test_ft_derives_the_paper_policy(self, ft_profile):
        """The automation must rediscover Figure 10 from the profile."""
        policy = derive_phase_policy(ft_profile)
        assert policy is not None
        assert policy.low_phases == frozenset({"alltoall"})
        assert policy.low_mhz == 600.0
        assert policy.high_mhz == 1400.0

    def test_ep_has_nothing_to_scale(self, ep_profile):
        assert derive_phase_policy(ep_profile) is None

    def test_amortization_guard(self, ft_profile):
        """With a (hypothetically) enormous transition cost, even FT's
        all-to-all is too short to scale."""
        policy = derive_phase_policy(
            ft_profile, transition_latency_s=1.0, min_amortization=10.0
        )
        assert policy is None

    def test_derived_policy_actually_saves(self, ft_profile):
        w = get_workload("FT", klass="T")
        policy = derive_phase_policy(ft_profile)
        m = run_workload(w, InternalStrategy(policy, label="auto"))
        d, e = m.normalized_against(ft_profile.measurement)
        assert e < 0.85
        assert d < 1.03


class TestDeriveRankPolicy:
    def test_cg_gets_heterogeneous_speeds(self, cg_profile):
        """CG's light group has slack -> lower static speed (Figure 13
        rediscovered: ranks 0-3 fast, 4-7 slow)."""
        policy = derive_rank_policy(cg_profile)
        assert policy is not None
        heavy_speeds = [policy._speed_of(r) for r in range(4)]
        light_speeds = [policy._speed_of(r) for r in range(4, 8)]
        assert max(light_speeds) < min(heavy_speeds)

    def test_balanced_code_returns_none(self, ep_profile):
        assert derive_rank_policy(ep_profile) is None

    def test_speeds_never_exceed_budget(self, cg_profile):
        from repro.hardware.opoints import PENTIUM_M_TABLE

        policy = derive_rank_policy(cg_profile, aggressiveness=2.0)
        assert policy is not None
        f_max = PENTIUM_M_TABLE.fastest.frequency_hz
        for rank, compute in cg_profile.rank_compute_s.items():
            mhz = policy._speed_of(rank)
            stretch = compute * (f_max / (mhz * 1e6) - 1.0)
            assert stretch <= 2.0 * cg_profile.rank_slack_s(rank) + 1e-9

    def test_aggressiveness_monotone(self, cg_profile):
        """A larger delay budget never picks faster points."""
        gentle = derive_rank_policy(cg_profile, aggressiveness=2.0)
        bold = derive_rank_policy(cg_profile, aggressiveness=10.0)
        assert gentle is not None and bold is not None
        for rank in cg_profile.rank_compute_s:
            assert bold._speed_of(rank) <= gentle._speed_of(rank)

    def test_invalid_aggressiveness(self, cg_profile):
        with pytest.raises(ValueError):
            derive_rank_policy(cg_profile, aggressiveness=0.0)


class TestAdvisor:
    @pytest.fixture(scope="class")
    def ft_advice(self):
        return ScheduleAdvisor(metric=ED3P).advise(get_workload("FT", klass="T"))

    def test_candidates_include_all_families(self, ft_advice):
        labels = " ".join(c.label for c in ft_advice.candidates)
        assert "no-dvs" in labels
        assert "external" in labels
        assert "auto-internal" in labels
        assert "cpuspeed" in labels

    def test_ranked_by_metric(self, ft_advice):
        values = [c.metric_value for c in ft_advice.candidates]
        assert values == sorted(values)

    def test_ft_recommends_internal_phase_policy(self, ft_advice):
        assert "auto-internal phases" in ft_advice.best.label
        assert ft_advice.best.energy_saving > 0.15
        assert ft_advice.best.delay_increase < 0.03

    def test_render_mentions_recommendation(self, ft_advice):
        text = ft_advice.render()
        assert "recommended" in text
        assert "FT.T.8" in text

    def test_delay_cap_reorders(self):
        advice = ScheduleAdvisor(
            metric=ED2P, max_delay_increase=0.0, include_daemon=False
        ).advise(get_workload("EP", klass="T"))
        # With a zero delay cap, no-dvs (or an equally-fast point) must
        # win for a fully CPU-bound code.
        assert advice.best.delay_increase <= 0.0 + 1e-9

    def test_advice_carries_profile(self, ft_advice):
        assert "alltoall" in ft_advice.profile.phases
