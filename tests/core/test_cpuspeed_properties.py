"""Property tests on the CPUSPEED threshold rule and daemon."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.hardware import nemo_cluster
from repro.core.strategies import CpuspeedConfig, CpuspeedDaemonStrategy


def rule(config: CpuspeedConfig):
    strategy = CpuspeedDaemonStrategy(config)
    return lambda current, usage: strategy._next_index(current, 4, usage)


@given(
    current=st.integers(min_value=0, max_value=4),
    usage=st.floats(min_value=0.0, max_value=100.0),
)
def test_next_index_always_in_range(current, usage):
    next_index = rule(CpuspeedConfig())(current, usage)
    assert 0 <= next_index <= 4


@given(
    current=st.integers(min_value=0, max_value=4),
    low=st.floats(min_value=0.0, max_value=100.0),
    high=st.floats(min_value=0.0, max_value=100.0),
)
def test_response_is_monotone_in_usage(current, low, high):
    """Higher measured utilization never yields a slower next point."""
    if low > high:
        low, high = high, low
    r = rule(CpuspeedConfig())
    assert r(current, low) <= r(current, high)


@given(
    current=st.integers(min_value=0, max_value=4),
    usage=st.floats(min_value=0.0, max_value=100.0),
)
def test_single_poll_moves_at_most_one_step_or_jumps_to_extremes(current, usage):
    cfg = CpuspeedConfig()
    next_index = rule(cfg)(current, usage)
    if usage < cfg.minimum_threshold:
        assert next_index == 0
    elif usage > cfg.maximum_threshold:
        assert next_index == 4
    else:
        assert abs(next_index - current) <= 1


@given(
    usages=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40
    )
)
def test_any_usage_sequence_keeps_index_valid(usages):
    cfg = CpuspeedConfig()
    r = rule(cfg)
    index = 4
    for usage in usages:
        index = r(index, usage)
        assert 0 <= index <= 4


@given(steady=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=30)
def test_constant_usage_converges(steady):
    """Under constant utilization the rule reaches a fixed point or a
    2-cycle (never wanders chaotically)."""
    cfg = CpuspeedConfig()
    r = rule(cfg)
    index = 4
    trajectory = [index]
    for _ in range(20):
        index = r(index, steady)
        trajectory.append(index)
    tail = trajectory[-6:]
    assert len(set(tail)) <= 2


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_daemon_transitions_bounded_by_polls(seed):
    """The daemon can change speed at most once per polling interval."""
    env = Environment()
    cluster = nemo_cluster(env, 1, with_batteries=False, seed=seed)
    strategy = CpuspeedDaemonStrategy(CpuspeedConfig(interval_s=1.0))
    strategy.setup(cluster, [0])
    horizon = 20.0
    env.run(until=horizon)
    strategy.teardown(cluster)
    assert cluster[0].cpu.stats.transitions <= horizon / 1.0 + 1
