"""Crescendo classification — validated against the paper's own data."""

import pytest

from repro.core.crescendo import Crescendo, CrescendoType, classify_crescendo
from repro.experiments.calibration import (
    PAPER_CRESCENDO_TYPES,
    table2_profile,
)


@pytest.mark.parametrize("code,expected", sorted(PAPER_CRESCENDO_TYPES.items()))
def test_paper_table2_data_classifies_as_paper_figure8(code, expected):
    """Feeding the paper's published Table 2 numbers through our
    classifier must reproduce the paper's Figure 8 grouping.

    SP's energy column is unpublished, so SP is checked by our measured
    sweep elsewhere (tests/experiments)."""
    profile = table2_profile(code)
    if code == "SP":
        pytest.skip("paper's SP energy column is cut off")
    assert classify_crescendo(code, profile).value == expected


def test_type_properties():
    assert CrescendoType.TYPE_III.saves_energy
    assert CrescendoType.TYPE_IV.saves_energy
    assert not CrescendoType.TYPE_I.saves_energy
    assert not CrescendoType.TYPE_II.saves_energy


def test_crescendo_requires_two_points():
    with pytest.raises(ValueError):
        Crescendo("X", {1400: (1.0, 1.0)})


def test_crescendo_accessors():
    c = Crescendo("X", {600: (1.5, 0.7), 1000: (1.1, 0.9), 1400: (1.0, 1.0)})
    assert c.frequencies == (600, 1000, 1400)
    assert c.max_delay_increase == pytest.approx(0.5)
    assert c.max_energy_saving == pytest.approx(0.3)
    assert c.best_energy_saving == pytest.approx(0.3)


def test_best_energy_saving_not_necessarily_at_slowest():
    c = Crescendo("X", {600: (1.5, 0.9), 1000: (1.1, 0.7), 1400: (1.0, 1.0)})
    assert c.best_energy_saving == pytest.approx(0.3)


def test_synthetic_type_boundaries():
    # flat energy -> Type I even with huge delay
    assert (
        Crescendo("a", {600: (2.0, 0.99), 1400: (1.0, 1.0)}).classify()
        == CrescendoType.TYPE_I
    )
    # flat delay + big saving -> Type IV
    assert (
        Crescendo("b", {600: (1.02, 0.6), 1400: (1.0, 1.0)}).classify()
        == CrescendoType.TYPE_IV
    )
    # saving >> delay increase -> Type III
    assert (
        Crescendo("c", {600: (1.15, 0.6), 1400: (1.0, 1.0)}).classify()
        == CrescendoType.TYPE_III
    )
    # comparable rates -> Type II
    assert (
        Crescendo("d", {600: (1.4, 0.7), 1400: (1.0, 1.0)}).classify()
        == CrescendoType.TYPE_II
    )


def test_energy_increasing_code_is_type_i():
    """EP's energy *rises* at low frequency — still Type I."""
    assert (
        Crescendo("ep", {600: (2.35, 1.15), 1400: (1.0, 1.0)}).classify()
        == CrescendoType.TYPE_I
    )
