"""Engine-selection coverage: which runs must stay on the event engine.

A strategy with neither a static gear plan nor a sampled controller
(and any straightline-eligible strategy under a fault environment)
must fall back to the event engine under ``engine="auto"`` — asserted
through the ineligibility reason the framework consults — and raise
:class:`StraightlineUnsupported` when the fast tier is demanded
explicitly.  Strategies that *do* lower (the β daemon and power-cap
coordinator via the stateful-controller protocol) are eligible in
clean runs and fall back only at the fault/trace/channel boundaries.
"""

from __future__ import annotations

import pytest

from repro.core.framework import run_workload, straightline_ineligibility
from repro.core.strategies import (
    BetaDaemonStrategy,
    CpuspeedConfig,
    CpuspeedDaemonStrategy,
    InternalStrategy,
    PhasePolicy,
    PowerCapConfig,
    PowerCapStrategy,
)
from repro.core.strategies.base import Strategy
from repro.faults.injector import resolve_injector
from repro.faults.spec import FaultSpec
from repro.sim.straightline import StraightlineUnsupported
from repro.workloads.npb.ft import FT


def _workload():
    return FT(klass="T", nprocs=4)


class _AdHocDynamicStrategy(Strategy):
    """A dynamic strategy that lowers to neither tier form.

    β and power-cap now publish sampled controllers, so the class of
    event-engine-only strategies is represented by this stand-in: the
    conservative :class:`Strategy` defaults (no gear plan, no
    controller) are exactly what a user-written daemon subclass gets.
    """

    name = "adhoc-dynamic"


def test_dynamic_strategy_reason() -> None:
    reason = straightline_ineligibility(_workload(), _AdHocDynamicStrategy())
    assert reason == "strategy has no static gear plan (dynamic DVS)"


def test_dynamic_strategy_auto_reaches_event_engine(monkeypatch) -> None:
    # The fast tier must never be consulted: its entry point is poisoned.
    import repro.sim.straightline as straightline

    def boom(*args, **kwargs):  # pragma: no cover - failure mode
        raise AssertionError("straightline tier consulted for a dynamic strategy")

    monkeypatch.setattr(straightline, "try_run_straightline", boom)
    monkeypatch.setattr(straightline, "run_straightline", boom)
    m = run_workload(_workload(), _AdHocDynamicStrategy())
    assert m.elapsed_s > 0


def test_dynamic_strategy_strict_raises() -> None:
    with pytest.raises(StraightlineUnsupported, match="no static gear plan"):
        run_workload(
            _workload(), _AdHocDynamicStrategy(), engine="straightline"
        )


def test_internal_with_faults_reason() -> None:
    strategy = InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400))
    injector = resolve_injector(FaultSpec(seed=5, transition_fail_rate=0.5))
    # The strategy alone is eligible...
    assert straightline_ineligibility(_workload(), strategy) is None
    # ...but a fault environment forces the event engine.
    reason = straightline_ineligibility(_workload(), strategy, injector=injector)
    assert reason == "fault injection active"


def test_internal_with_faults_strict_raises() -> None:
    strategy = InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400))
    with pytest.raises(StraightlineUnsupported, match="fault injection active"):
        run_workload(
            _workload(),
            strategy,
            faults=FaultSpec(seed=5, transition_fail_rate=0.5),
            engine="straightline",
        )


def test_internal_with_faults_auto_reaches_event_engine(monkeypatch) -> None:
    import repro.sim.straightline as straightline

    def boom(*args, **kwargs):  # pragma: no cover - failure mode
        raise AssertionError("straightline tier consulted under faults")

    monkeypatch.setattr(straightline, "try_run_straightline", boom)
    monkeypatch.setattr(straightline, "run_straightline", boom)
    m = run_workload(
        _workload(),
        InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400)),
        faults=FaultSpec(seed=5, transition_fail_rate=0.5),
    )
    assert m.elapsed_s > 0


# ----------------------------------------------------------------------
# sampled-control boundaries: daemons are eligible only in clean runs.
# The stateful forms (per-node with state: β; global reduction:
# power-cap) share every boundary with the stateless cpuspeed daemon.
# ----------------------------------------------------------------------
DAEMON_STRATEGIES = {
    "cpuspeed": lambda: CpuspeedDaemonStrategy(CpuspeedConfig.v1_1()),
    "beta": lambda: BetaDaemonStrategy(),
    "powercap": lambda: PowerCapStrategy(PowerCapConfig(cap_w=120.0)),
}


@pytest.mark.parametrize("name", sorted(DAEMON_STRATEGIES))
def test_daemon_clean_run_is_eligible(name: str) -> None:
    strategy = DAEMON_STRATEGIES[name]()
    assert straightline_ineligibility(_workload(), strategy) is None


@pytest.mark.parametrize("name", sorted(DAEMON_STRATEGIES))
def test_daemon_with_faults_reason(name: str) -> None:
    injector = resolve_injector(FaultSpec(seed=5, transition_fail_rate=0.5))
    reason = straightline_ineligibility(
        _workload(), DAEMON_STRATEGIES[name](), injector=injector
    )
    assert reason == "fault injection active"


@pytest.mark.parametrize("name", sorted(DAEMON_STRATEGIES))
def test_daemon_with_faults_auto_reaches_event_engine(
    name: str, monkeypatch
) -> None:
    import repro.sim.straightline as straightline

    def boom(*args, **kwargs):  # pragma: no cover - failure mode
        raise AssertionError("straightline tier consulted for a faulty daemon")

    monkeypatch.setattr(straightline, "try_run_straightline", boom)
    monkeypatch.setattr(straightline, "run_straightline", boom)
    m = run_workload(
        _workload(),
        DAEMON_STRATEGIES[name](),
        faults=FaultSpec(seed=5, transition_fail_rate=0.5),
    )
    assert m.elapsed_s > 0


@pytest.mark.parametrize("name", sorted(DAEMON_STRATEGIES))
def test_daemon_with_faults_strict_raises(name: str) -> None:
    with pytest.raises(StraightlineUnsupported, match="fault injection active"):
        run_workload(
            _workload(),
            DAEMON_STRATEGIES[name](),
            faults=FaultSpec(seed=5, transition_fail_rate=0.5),
            engine="straightline",
        )


@pytest.mark.parametrize("name", sorted(DAEMON_STRATEGIES))
def test_daemon_with_trace_reason(name: str) -> None:
    reason = straightline_ineligibility(
        _workload(), DAEMON_STRATEGIES[name](), trace=True
    )
    assert reason == "tracing requested"


# ----------------------------------------------------------------------
# zero-rate fault specs: provably inert, so they don't pin the engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(DAEMON_STRATEGIES))
def test_noop_faults_do_not_pin_engine(name: str) -> None:
    # FaultSpec() has every rate at zero: is_noop() holds and a strict
    # straightline request succeeds, bit-for-bit equal to a clean run.
    spec = FaultSpec(seed=99)
    assert spec.is_noop()
    m = run_workload(
        _workload(), DAEMON_STRATEGIES[name](), faults=spec, engine="straightline"
    )
    clean = run_workload(
        _workload(), DAEMON_STRATEGIES[name](), engine="straightline"
    )
    assert m.elapsed_s == clean.elapsed_s
    assert m.energy_j == clean.energy_j
    assert m.extras == clean.extras == {}


def test_active_spec_is_not_noop() -> None:
    assert not FaultSpec(transition_fail_rate=0.5).is_noop()
    assert not FaultSpec(sensor_noise_mwh=1.0).is_noop()
    assert FaultSpec(seed=123).is_noop()  # seed alone injects nothing
