"""Engine-selection coverage: which runs must stay on the event engine.

Every dynamic strategy (and any straightline-eligible strategy under a
fault environment) must fall back to the event engine under
``engine="auto"`` — asserted through the ineligibility reason the
framework consults — and raise :class:`StraightlineUnsupported` when
the fast tier is demanded explicitly.
"""

from __future__ import annotations

import pytest

from repro.core.framework import run_workload, straightline_ineligibility
from repro.core.strategies import (
    BetaDaemonStrategy,
    CpuspeedConfig,
    CpuspeedDaemonStrategy,
    InternalStrategy,
    PhasePolicy,
    PowerCapConfig,
    PowerCapStrategy,
)
from repro.faults.injector import resolve_injector
from repro.faults.spec import FaultSpec
from repro.sim.straightline import StraightlineUnsupported
from repro.workloads.npb.ft import FT


def _workload():
    return FT(klass="T", nprocs=4)


# Daemon strategies with a sampled-control form (cpuspeed, predictive)
# are no longer here: they run on the straightline tier in clean
# environments.  These remain event-engine only.
DYNAMIC_STRATEGIES = {
    "powercap": lambda: PowerCapStrategy(PowerCapConfig(cap_w=120.0)),
    "beta": lambda: BetaDaemonStrategy(),
}


@pytest.mark.parametrize("name", sorted(DYNAMIC_STRATEGIES))
def test_dynamic_strategy_reason(name: str) -> None:
    strategy = DYNAMIC_STRATEGIES[name]()
    reason = straightline_ineligibility(_workload(), strategy)
    assert reason == "strategy has no static gear plan (dynamic DVS)"


@pytest.mark.parametrize("name", sorted(DYNAMIC_STRATEGIES))
def test_dynamic_strategy_auto_reaches_event_engine(name: str, monkeypatch) -> None:
    # The fast tier must never be consulted: its entry point is poisoned.
    import repro.sim.straightline as straightline

    def boom(*args, **kwargs):  # pragma: no cover - failure mode
        raise AssertionError("straightline tier consulted for a dynamic strategy")

    monkeypatch.setattr(straightline, "try_run_straightline", boom)
    monkeypatch.setattr(straightline, "run_straightline", boom)
    m = run_workload(_workload(), DYNAMIC_STRATEGIES[name]())
    assert m.elapsed_s > 0


@pytest.mark.parametrize("name", sorted(DYNAMIC_STRATEGIES))
def test_dynamic_strategy_strict_raises(name: str) -> None:
    with pytest.raises(StraightlineUnsupported, match="no static gear plan"):
        run_workload(
            _workload(), DYNAMIC_STRATEGIES[name](), engine="straightline"
        )


def test_internal_with_faults_reason() -> None:
    strategy = InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400))
    injector = resolve_injector(FaultSpec(seed=5, transition_fail_rate=0.5))
    # The strategy alone is eligible...
    assert straightline_ineligibility(_workload(), strategy) is None
    # ...but a fault environment forces the event engine.
    reason = straightline_ineligibility(_workload(), strategy, injector=injector)
    assert reason == "fault injection active"


def test_internal_with_faults_strict_raises() -> None:
    strategy = InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400))
    with pytest.raises(StraightlineUnsupported, match="fault injection active"):
        run_workload(
            _workload(),
            strategy,
            faults=FaultSpec(seed=5, transition_fail_rate=0.5),
            engine="straightline",
        )


def test_internal_with_faults_auto_reaches_event_engine(monkeypatch) -> None:
    import repro.sim.straightline as straightline

    def boom(*args, **kwargs):  # pragma: no cover - failure mode
        raise AssertionError("straightline tier consulted under faults")

    monkeypatch.setattr(straightline, "try_run_straightline", boom)
    monkeypatch.setattr(straightline, "run_straightline", boom)
    m = run_workload(
        _workload(),
        InternalStrategy(PhasePolicy({"alltoall"}, 600, 1400)),
        faults=FaultSpec(seed=5, transition_fail_rate=0.5),
    )
    assert m.elapsed_s > 0


# ----------------------------------------------------------------------
# sampled-control boundaries: daemons are eligible only in clean runs
# ----------------------------------------------------------------------
def _daemon():
    return CpuspeedDaemonStrategy(CpuspeedConfig.v1_1())


def test_daemon_clean_run_is_eligible() -> None:
    assert straightline_ineligibility(_workload(), _daemon()) is None


def test_daemon_with_faults_reason() -> None:
    injector = resolve_injector(FaultSpec(seed=5, transition_fail_rate=0.5))
    reason = straightline_ineligibility(_workload(), _daemon(), injector=injector)
    assert reason == "fault injection active"


def test_daemon_with_faults_auto_reaches_event_engine(monkeypatch) -> None:
    import repro.sim.straightline as straightline

    def boom(*args, **kwargs):  # pragma: no cover - failure mode
        raise AssertionError("straightline tier consulted for a faulty daemon")

    monkeypatch.setattr(straightline, "try_run_straightline", boom)
    monkeypatch.setattr(straightline, "run_straightline", boom)
    m = run_workload(
        _workload(),
        _daemon(),
        faults=FaultSpec(seed=5, transition_fail_rate=0.5),
    )
    assert m.elapsed_s > 0


def test_daemon_with_faults_strict_raises() -> None:
    with pytest.raises(StraightlineUnsupported, match="fault injection active"):
        run_workload(
            _workload(),
            _daemon(),
            faults=FaultSpec(seed=5, transition_fail_rate=0.5),
            engine="straightline",
        )


def test_daemon_with_trace_reason() -> None:
    reason = straightline_ineligibility(_workload(), _daemon(), trace=True)
    assert reason == "tracing requested"
