"""Experiment runner."""

import pytest

from repro.core.framework import run_workload
from repro.core.strategies import ExternalStrategy, NoDvsStrategy
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def ft_tiny():
    return get_workload("FT", klass="T")


def test_measurement_fields(ft_tiny):
    m = run_workload(ft_tiny, NoDvsStrategy())
    assert m.workload == "FT.T.8"
    assert m.strategy == "no-dvs"
    assert m.elapsed_s > 0
    assert m.energy_j > 0
    assert set(m.per_node_energy_j) == set(range(8))
    assert m.acpi_energy_j is None  # channels off by default
    assert m.trace is None


def test_energy_sums_per_node(ft_tiny):
    m = run_workload(ft_tiny)
    assert m.energy_j == pytest.approx(sum(m.per_node_energy_j.values()))


def test_runs_are_deterministic(ft_tiny):
    a = run_workload(ft_tiny, ExternalStrategy(mhz=800), seed=0)
    b = run_workload(ft_tiny, ExternalStrategy(mhz=800), seed=0)
    assert a.elapsed_s == b.elapsed_s
    assert a.energy_j == b.energy_j


def test_normalization(ft_tiny):
    base = run_workload(ft_tiny, NoDvsStrategy())
    ext = run_workload(ft_tiny, ExternalStrategy(mhz=600))
    d, e = ext.normalized_against(base)
    assert d > 1.0
    assert e < 1.0
    with pytest.raises(ValueError):
        base.normalized_against(
            type(base)(
                workload="x", strategy="y", elapsed_s=0.0, energy_j=0.0,
                per_node_energy_j={}, dvs_transitions=0, time_at_mhz={},
            )
        )


def test_trace_attached_when_requested(ft_tiny):
    m = run_workload(ft_tiny, trace=True)
    assert m.trace is not None
    assert len(m.trace) > 0


def test_measurement_channels_need_long_runs():
    """The ACPI channel only refreshes every 15-20 s: a tiny run reads
    ~0 J (exactly the effect that forces the paper's methodology), while
    a minute-scale run lands near the exact meter."""
    tiny = run_workload(get_workload("FT", klass="T"), measurement_channels=True)
    assert tiny.acpi_energy_j is not None and tiny.report is not None
    assert tiny.acpi_energy_j < tiny.energy_j  # stale/quantized reading

    longer = run_workload(get_workload("FT", klass="C"), measurement_channels=True)
    assert longer.acpi_energy_j == pytest.approx(longer.energy_j, rel=0.30)
    # 1-minute Baytech polling is the coarse redundancy channel.
    assert 0 < longer.baytech_energy_j < 2 * longer.energy_j
    # Relative ACPI error shrinks with run length (why the paper runs
    # minutes-long experiments and iterates short codes).
    tiny_err = abs(tiny.acpi_energy_j - tiny.energy_j) / tiny.energy_j
    long_err = longer.report.cross_check_error()
    assert long_err < tiny_err


def test_time_at_mhz_sums_to_node_seconds(ft_tiny):
    m = run_workload(ft_tiny, ExternalStrategy(mhz=1000))
    total = sum(m.time_at_mhz.values())
    assert total == pytest.approx(8 * m.elapsed_s, rel=0.05)


def test_str_mentions_workload(ft_tiny):
    m = run_workload(ft_tiny)
    assert "FT.T.8" in str(m)


def test_cluster_too_small_rejected(ft_tiny):
    from repro.sim import Environment
    from repro.hardware import nemo_cluster

    env = Environment()
    small = nemo_cluster(env, 2, with_batteries=False)
    with pytest.raises(ValueError):
        run_workload(ft_tiny, cluster=small)
