"""Future-work schedulers: predictive daemon and beta-adaptive daemon."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Environment
from repro.hardware import PENTIUM_M_TABLE, nemo_cluster
from repro.core import (
    BetaConfig,
    BetaDaemonStrategy,
    CpuspeedDaemonStrategy,
    NoDvsStrategy,
    PredictiveConfig,
    PredictiveDaemonStrategy,
    run_workload,
)
from repro.core.strategies.beta import required_frequency_ratio
from repro.workloads import get_workload


class TestPredictiveConfig:
    def test_defaults_valid(self):
        PredictiveConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveConfig(interval_s=0)
        with pytest.raises(ValueError):
            PredictiveConfig(low_threshold=0.9, high_threshold=0.5)
        with pytest.raises(ValueError):
            PredictiveConfig(hysteresis_samples=0)
        with pytest.raises(ValueError):
            PredictiveConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            PredictiveConfig(drift_samples=0)
        with pytest.raises(ValueError):
            PredictiveConfig(preswitch_fraction=0.0)

    def test_describe_modes(self):
        assert "predictive" in PredictiveDaemonStrategy().describe()
        reactive = PredictiveDaemonStrategy(PredictiveConfig(predictive=False))
        assert "reactive" in reactive.describe()


class TestPredictiveDaemon:
    def test_beats_cpuspeed_on_ft(self):
        """The headline: near-INTERNAL results without touching source."""
        w = get_workload("FT", klass="B")
        base = run_workload(w, NoDvsStrategy())
        auto = run_workload(w, CpuspeedDaemonStrategy())
        pred = run_workload(w, PredictiveDaemonStrategy())
        d_a, e_a = auto.normalized_against(base)
        d_p, e_p = pred.normalized_against(base)
        assert d_p < d_a
        assert e_p < e_a
        assert d_p < 1.02
        assert e_p < 0.75

    def test_leaves_compute_bound_codes_alone(self):
        w = get_workload("EP", klass="T")
        base = run_workload(w, NoDvsStrategy())
        pred = run_workload(w, PredictiveDaemonStrategy())
        d, e = pred.normalized_against(base)
        assert d == pytest.approx(1.0, abs=0.02)

    def test_teardown_stops_daemons(self):
        env = Environment()
        cluster = nemo_cluster(env, 1, with_batteries=False)
        strategy = PredictiveDaemonStrategy()
        strategy.setup(cluster, [0])
        env.run(until=2.0)
        strategy.teardown(cluster)
        before = cluster[0].cpu.stats.transitions
        env.run(until=10.0)
        assert cluster[0].cpu.stats.transitions == before

    def test_idle_node_drops_to_slowest(self):
        env = Environment()
        cluster = nemo_cluster(env, 1, with_batteries=False)
        PredictiveDaemonStrategy().setup(cluster, [0])
        env.run(until=3.0)
        assert cluster[0].cpu.frequency_mhz == 600


class TestRequiredFrequencyRatio:
    def test_fully_sensitive_needs_almost_full_speed(self):
        assert required_frequency_ratio(1.0, 0.05) == pytest.approx(1 / 1.05)

    def test_insensitive_needs_nothing(self):
        assert required_frequency_ratio(0.0, 0.05) == 0.0

    def test_zero_budget_needs_full_speed(self):
        assert required_frequency_ratio(0.5, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_frequency_ratio(1.5, 0.05)
        with pytest.raises(ValueError):
            required_frequency_ratio(0.5, -0.1)

    @given(
        w_on=st.floats(min_value=0.001, max_value=1.0),
        delta=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_budget_exact_at_chosen_ratio(self, w_on, delta):
        """Running exactly at f* meets the budget with equality."""
        ratio = required_frequency_ratio(w_on, delta)
        predicted_delay = w_on / ratio + (1 - w_on)
        assert predicted_delay == pytest.approx(1 + delta)

    @given(
        w_on=st.floats(min_value=0.0, max_value=1.0),
        delta=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_ratio_bounds(self, w_on, delta):
        ratio = required_frequency_ratio(w_on, delta)
        assert 0.0 <= ratio <= 1.0


class TestBetaDaemon:
    def test_pick_point_ceils(self):
        pick = BetaDaemonStrategy.pick_point
        assert pick(PENTIUM_M_TABLE, 0.0) == 0  # 600
        assert pick(PENTIUM_M_TABLE, 0.43) == 1  # 800 (0.571)
        assert pick(PENTIUM_M_TABLE, 0.60) == 2  # 1000 (0.714)
        assert pick(PENTIUM_M_TABLE, 0.95) == 4  # 1400
        assert pick(PENTIUM_M_TABLE, 2.0) == 4  # clamped

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BetaConfig(delta=-0.1)
        with pytest.raises(ValueError):
            BetaConfig(interval_s=0)
        with pytest.raises(ValueError):
            BetaConfig(smoothing=0)

    @pytest.mark.parametrize("code", ["MG", "BT", "LU", "CG", "SP"])
    def test_honors_delay_budget_on_stationary_codes(self, code):
        """The performance constraint, delivered: delay stays near the
        budget even for the codes CPUSPEED mispredicts."""
        w = get_workload(code, klass="B")
        base = run_workload(w, NoDvsStrategy())
        beta = run_workload(w, BetaDaemonStrategy(BetaConfig(delta=0.05)))
        d, _e = beta.normalized_against(base)
        assert d <= 1.09, code  # budget + measurement/lag margin

    def test_larger_budget_saves_more(self):
        w = get_workload("CG", klass="B")
        base = run_workload(w, NoDvsStrategy())
        tight = run_workload(w, BetaDaemonStrategy(BetaConfig(delta=0.05)))
        loose = run_workload(w, BetaDaemonStrategy(BetaConfig(delta=0.20)))
        _d1, e1 = tight.normalized_against(base)
        _d2, e2 = loose.normalized_against(base)
        assert e2 < e1

    def test_counter_separates_memory_from_cpu_bound(self):
        """The reason beta works where utilization fails: UB-MEM (busy
        in /proc, frequency-insensitive) gets scaled down; UB-CPU does
        not."""
        for name, expect_slow in (("UB-MEM", True), ("UB-CPU", False)):
            w = get_workload(name, seconds=20.0)
            m = run_workload(w, BetaDaemonStrategy(BetaConfig(delta=0.10)))
            slow_time = sum(
                secs for mhz, secs in m.time_at_mhz.items() if mhz < 1400
            )
            if expect_slow:
                assert slow_time > 0.5 * m.elapsed_s, name
            else:
                assert slow_time < 0.2 * m.elapsed_s, name

    def test_teardown(self):
        env = Environment()
        cluster = nemo_cluster(env, 2, with_batteries=False)
        s = BetaDaemonStrategy()
        s.setup(cluster, [0, 1])
        env.run(until=3.0)
        s.teardown(cluster)
        before = tuple(n.cpu.stats.transitions for n in cluster)
        env.run(until=10.0)
        assert tuple(n.cpu.stats.transitions for n in cluster) == before
