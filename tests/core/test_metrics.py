"""Fused metrics and operating-point selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    ED2P,
    ED3P,
    EDP,
    FusedMetric,
    normalize_profile,
    select_operating_point,
)


def test_metric_values():
    assert EDP(1.1, 0.8) == pytest.approx(0.88)
    assert ED2P(1.1, 0.8) == pytest.approx(0.8 * 1.21)
    assert ED3P(1.1, 0.8) == pytest.approx(0.8 * 1.331)


def test_metric_names():
    assert str(EDP) == "EDP"
    assert str(ED2P) == "ED2P"
    assert str(ED3P) == "ED3P"
    assert FusedMetric(4).name == "ED4P"


def test_invalid_weight():
    with pytest.raises(ValueError):
        FusedMetric(-1)


def test_invalid_point():
    with pytest.raises(ValueError):
        EDP(0.0, 1.0)
    with pytest.raises(ValueError):
        EDP(1.0, -1.0)


def test_normalize_profile_uses_highest_frequency():
    raw = {600: (10.0, 100.0), 1400: (5.0, 200.0)}
    norm = normalize_profile(raw)
    assert norm[1400] == (1.0, 1.0)
    assert norm[600] == (2.0, 0.5)


def test_normalize_profile_custom_reference():
    raw = {600: (10.0, 100.0), 1400: (5.0, 200.0)}
    norm = normalize_profile(raw, reference_mhz=600)
    assert norm[600] == (1.0, 1.0)


def test_normalize_profile_errors():
    with pytest.raises(ValueError):
        normalize_profile({})
    with pytest.raises(KeyError):
        normalize_profile({600: (1, 1)}, reference_mhz=800)
    with pytest.raises(ValueError):
        normalize_profile({600: (0.0, 1.0)})


class TestSelectionAgainstPaperTable2:
    """Selections computed from the paper's own Table 2 numbers must
    reproduce the paper's Figure 6/7 picks."""

    def test_ft_ed3p_picks_800(self):
        from repro.experiments.calibration import table2_profile

        assert select_operating_point(table2_profile("FT"), ED3P) == 800.0

    def test_ft_ed2p_picks_600(self):
        from repro.experiments.calibration import table2_profile

        assert select_operating_point(table2_profile("FT"), ED2P) == 600.0

    def test_cg_ed3p_picks_1000(self):
        from repro.experiments.calibration import table2_profile

        assert select_operating_point(table2_profile("CG"), ED3P) == 1000.0

    def test_cg_ed2p_picks_800(self):
        from repro.experiments.calibration import table2_profile

        assert select_operating_point(table2_profile("CG"), ED2P) == 800.0

    @pytest.mark.parametrize("code", ["BT", "EP", "LU", "MG"])
    def test_type_i_ii_codes_stay_at_top_speed_under_ed3p(self, code):
        from repro.experiments.calibration import table2_profile

        assert select_operating_point(table2_profile(code), ED3P) == 1400.0

    def test_is_saves_energy_and_time(self):
        from repro.experiments.calibration import table2_profile

        mhz = select_operating_point(table2_profile("IS"), ED3P)
        d, e = table2_profile("IS")[mhz]
        assert d < 1.0 and e < 1.0


def test_tie_breaks_toward_performance():
    profile = {600: (2.0, 0.5), 1400: (1.0, 1.0)}  # identical ED (E*D)
    assert select_operating_point(profile, EDP) == 1400.0


def test_empty_profile_rejected():
    with pytest.raises(ValueError):
        select_operating_point({}, ED3P)


@given(
    delays=st.lists(st.floats(min_value=0.5, max_value=3.0), min_size=2, max_size=6),
    energies=st.lists(st.floats(min_value=0.1, max_value=2.0), min_size=2, max_size=6),
)
def test_selection_minimizes_metric(delays, energies):
    n = min(len(delays), len(energies))
    profile = {
        600.0 + 100 * i: (delays[i], energies[i]) for i in range(n)
    }
    chosen = select_operating_point(profile, ED2P)
    chosen_value = ED2P(*profile[chosen])
    for point in profile.values():
        assert chosen_value <= ED2P(*point) + 1e-9


@given(
    delay=st.floats(min_value=1.0, max_value=3.0),
    energy=st.floats(min_value=0.1, max_value=1.0),
)
def test_higher_weight_penalizes_delay_more(delay, energy):
    """For any point slower than baseline, metric value grows with the
    delay exponent — the reason ED3P is more conservative than ED2P."""
    assert ED3P(delay, energy) >= ED2P(delay, energy) >= EDP(delay, energy)
