"""Energy-delay Pareto front."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import ED2P, ED3P, EDP, pareto_front, select_operating_point
from repro.experiments.calibration import table2_profile


def test_simple_front():
    profile = {
        1400: (1.0, 1.0),
        1200: (1.05, 0.9),
        1000: (1.2, 0.95),  # dominated by 1200
        600: (1.5, 0.7),
    }
    assert pareto_front(profile) == [1400, 1200, 600]


def test_paper_ft_front_is_full_sweep():
    """FT's published crescendo is strictly monotone: every point is
    Pareto-optimal."""
    front = pareto_front(table2_profile("FT"))
    assert front == [1400.0, 1200.0, 1000.0, 800.0, 600.0]


def test_paper_is_front_drops_dominated_points():
    """IS@1000 dominates several other points in the published data."""
    front = pareto_front(table2_profile("IS"))
    assert 1000.0 in front
    assert 1400.0 not in front  # 1000 MHz is faster AND cheaper


def test_ep_front_prefers_fast_points():
    """EP energy rises as it slows: only 1400 MHz is undominated."""
    assert pareto_front(table2_profile("EP")) == [1400.0]


def test_metric_optima_lie_on_front():
    for code in ("FT", "CG", "IS", "EP", "BT", "LU", "MG"):
        profile = table2_profile(code)
        front = set(pareto_front(profile))
        for metric in (EDP, ED2P, ED3P):
            assert select_operating_point(profile, metric) in front, code


def test_empty_profile_rejected():
    with pytest.raises(ValueError):
        pareto_front({})


@given(
    data=st.dictionaries(
        keys=st.floats(min_value=100, max_value=3000),
        values=st.tuples(
            st.floats(min_value=0.5, max_value=3.0),
            st.floats(min_value=0.1, max_value=2.0),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_front_points_are_mutually_nondominating(data):
    front = pareto_front(data)
    assert front  # never empty
    for a in front:
        for b in front:
            if a == b:
                continue
            da, ea = data[a]
            db, eb = data[b]
            dominated = db <= da and eb <= ea and (db < da or eb < ea)
            assert not dominated


@given(
    data=st.dictionaries(
        keys=st.floats(min_value=100, max_value=3000),
        values=st.tuples(
            st.floats(min_value=0.5, max_value=3.0),
            st.floats(min_value=0.1, max_value=2.0),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_every_non_front_point_is_dominated(data):
    front = set(pareto_front(data))
    for mhz, (d, e) in data.items():
        if mhz in front:
            continue
        # dominated up to the implementation's 1e-12 tie tolerance
        assert any(
            data[f][0] <= d + 1e-12 and data[f][1] <= e + 1e-12 for f in front
        )
