"""Cluster power capping."""

import pytest

from repro.sim import Environment
from repro.hardware import nemo_cluster
from repro.core import (
    NoDvsStrategy,
    PowerCapConfig,
    PowerCapStrategy,
    run_workload,
)
from repro.workloads import get_workload


def uncapped_power(workload):
    base = run_workload(workload, NoDvsStrategy())
    return base, base.energy_j / base.elapsed_s


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerCapConfig(cap_w=0)
        with pytest.raises(ValueError):
            PowerCapConfig(cap_w=100, interval_s=0)
        with pytest.raises(ValueError):
            PowerCapConfig(cap_w=100, headroom=0)
        with pytest.raises(ValueError):
            PowerCapConfig(cap_w=100, max_steps_per_interval=0)

    def test_describe(self):
        assert PowerCapStrategy(PowerCapConfig(cap_w=150)).describe() == "powercap(150W)"


class TestCapEnforcement:
    @pytest.fixture(scope="class")
    def ft(self):
        return get_workload("FT", klass="B")

    def test_cap_never_violated(self, ft):
        base, p_nominal = uncapped_power(ft)
        cap = 0.7 * p_nominal
        strategy = PowerCapStrategy(PowerCapConfig(cap_w=cap))
        run_workload(ft, strategy)
        assert strategy.power_samples
        assert strategy.max_observed_power_w() <= cap * 1.001

    def test_tighter_cap_costs_more_delay_saves_more_energy(self, ft):
        base, p_nominal = uncapped_power(ft)
        outcomes = []
        for frac in (0.9, 0.6):
            strategy = PowerCapStrategy(PowerCapConfig(cap_w=frac * p_nominal))
            m = run_workload(ft, strategy)
            outcomes.append(m.normalized_against(base))
        (d_loose, e_loose), (d_tight, e_tight) = outcomes
        assert d_tight > d_loose
        assert e_tight < e_loose

    def test_generous_cap_changes_nothing(self, ft):
        base, p_nominal = uncapped_power(ft)
        strategy = PowerCapStrategy(PowerCapConfig(cap_w=2 * p_nominal))
        m = run_workload(ft, strategy)
        d, _e = m.normalized_against(base)
        assert d == pytest.approx(1.0, abs=0.01)

    def test_impossible_cap_pins_slowest(self):
        """A cap below even the all-600MHz floor: nodes sit at the
        floor (best effort) rather than oscillating."""
        env = Environment()
        cluster = nemo_cluster(env, 4, with_batteries=False)
        strategy = PowerCapStrategy(PowerCapConfig(cap_w=10.0))
        strategy.setup(cluster, range(4))
        env.run(until=5.0)
        strategy.teardown(cluster)
        assert all(n.cpu.index == 0 for n in cluster)

    def test_presheds_before_work_starts(self):
        env = Environment()
        cluster = nemo_cluster(env, 4, with_batteries=False)
        strategy = PowerCapStrategy(PowerCapConfig(cap_w=80.0))
        strategy.setup(cluster, range(4))
        # before any control interval elapsed, nodes already capped
        assert all(n.cpu.frequency_mhz < 1400 for n in cluster)
        strategy.teardown(cluster)

    def test_recovers_when_load_drops(self):
        """After a compute burst ends, idle headroom lets nodes climb."""
        env = Environment()
        cluster = nemo_cluster(env, 2, with_batteries=False)
        strategy = PowerCapStrategy(PowerCapConfig(cap_w=60.0, interval_s=0.2))
        strategy.setup(cluster, range(2))
        for node in cluster:
            node.cpu.run_work(cycles=1e9)
        env.run(until=30.0)
        strategy.teardown(cluster)
        # idle worst-case at some mid point fits in 60 W for 2 nodes
        assert any(n.cpu.frequency_mhz > 600 for n in cluster)

    def test_teardown_stops_controller(self):
        env = Environment()
        cluster = nemo_cluster(env, 2, with_batteries=False)
        strategy = PowerCapStrategy(PowerCapConfig(cap_w=100.0))
        strategy.setup(cluster, range(2))
        env.run(until=2.0)
        strategy.teardown(cluster)
        n_samples = len(strategy.power_samples)
        env.run(until=10.0)
        assert len(strategy.power_samples) == n_samples
