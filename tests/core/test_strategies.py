"""The three scheduling strategies."""

import pytest

from repro.sim import Environment
from repro.hardware import nemo_cluster
from repro.core.strategies import (
    CpuspeedConfig,
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    InternalStrategy,
    NoDvsStrategy,
    PhasePolicy,
    RankPolicy,
)
from repro.core.framework import run_workload
from repro.workloads import get_workload


class TestCpuspeedAlgorithm:
    """The threshold rule transcribed from the paper's pseudocode."""

    def setup_method(self):
        self.strategy = CpuspeedDaemonStrategy(
            CpuspeedConfig(
                interval_s=2.0,
                minimum_threshold=50,
                usage_threshold=80,
                maximum_threshold=95,
            )
        )

    def next_index(self, current, usage):
        return self.strategy._next_index(current, 4, usage)

    def test_below_minimum_jumps_to_slowest(self):
        assert self.next_index(3, 10.0) == 0

    def test_above_maximum_jumps_to_fastest(self):
        assert self.next_index(0, 99.0) == 4

    def test_below_usage_steps_down(self):
        assert self.next_index(3, 70.0) == 2
        assert self.next_index(0, 70.0) == 0  # clamped

    def test_between_usage_and_max_steps_up(self):
        assert self.next_index(2, 90.0) == 3
        assert self.next_index(4, 90.0) == 4  # clamped

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CpuspeedConfig(minimum_threshold=90, usage_threshold=50)
        with pytest.raises(ValueError):
            CpuspeedConfig(interval_s=0)

    def test_version_presets(self):
        assert CpuspeedConfig.v1_1().interval_s == 0.1
        assert CpuspeedConfig.v1_2_1().interval_s == 2.0


class TestCpuspeedIntegration:
    def test_daemon_descends_on_idle_cluster(self):
        env = Environment()
        cluster = nemo_cluster(env, 2, with_batteries=False)
        strategy = CpuspeedDaemonStrategy()
        strategy.setup(cluster, [0, 1])
        env.run(until=30.0)
        strategy.teardown(cluster)
        # idle utilization ~0 -> both nodes at the slowest point
        assert all(n.cpu.frequency_mhz == 600 for n in cluster)

    def test_daemon_rides_up_under_load(self):
        env = Environment()
        cluster = nemo_cluster(env, 1, with_batteries=False)
        cluster[0].cpu.set_speed_mhz(600)
        strategy = CpuspeedDaemonStrategy()
        strategy.setup(cluster, [0])
        done = cluster[0].cpu.run_work(cycles=100e9)  # long busy burst
        env.run(until=10.0)
        assert cluster[0].cpu.frequency_mhz == 1400
        strategy.teardown(cluster)

    def test_teardown_stops_daemons(self):
        env = Environment()
        cluster = nemo_cluster(env, 1, with_batteries=False)
        strategy = CpuspeedDaemonStrategy()
        strategy.setup(cluster, [0])
        env.run(until=5.0)
        strategy.teardown(cluster)
        transitions_after_stop = cluster[0].cpu.stats.transitions
        env.run(until=50.0)
        assert cluster[0].cpu.stats.transitions == transitions_after_stop

    def test_v1_1_stays_at_top_speed_on_npb(self):
        """Paper: CPUSPEED 1.1 was 'equivalent to no DVS' for NPB."""
        w = get_workload("MG", klass="T")
        auto = run_workload(
            w, CpuspeedDaemonStrategy(CpuspeedConfig.v1_1())
        )
        base = run_workload(w, NoDvsStrategy())
        d, e = auto.normalized_against(base)
        assert d == pytest.approx(1.0, abs=0.03)
        assert e == pytest.approx(1.0, abs=0.05)


class TestExternal:
    def test_homogeneous_setting(self):
        env = Environment()
        cluster = nemo_cluster(env, 3, with_batteries=False)
        ExternalStrategy(mhz=800).setup(cluster, [0, 1, 2])
        assert all(n.cpu.frequency_mhz == 800 for n in cluster)

    def test_heterogeneous_setting(self):
        env = Environment()
        cluster = nemo_cluster(env, 3, with_batteries=False)
        ExternalStrategy(per_node_mhz=[600, 800, 1000]).setup(cluster, [0, 1, 2])
        assert [n.cpu.frequency_mhz for n in cluster] == [600, 800, 1000]

    def test_heterogeneous_length_mismatch(self):
        env = Environment()
        cluster = nemo_cluster(env, 3, with_batteries=False)
        with pytest.raises(ValueError):
            ExternalStrategy(per_node_mhz=[600]).setup(cluster, [0, 1, 2])

    def test_profile_driven_selection(self):
        from repro.experiments.calibration import table2_profile
        from repro.core.metrics import ED3P

        strat = ExternalStrategy(profile=table2_profile("FT"), metric=ED3P)
        assert strat.mhz == 800.0
        assert "ED3P" in strat.describe()

    def test_exactly_one_style_required(self):
        with pytest.raises(ValueError):
            ExternalStrategy()
        with pytest.raises(ValueError):
            ExternalStrategy(mhz=600, per_node_mhz=[600])


class TestInternal:
    def test_phase_policy_switches_during_phase(self):
        w = get_workload("FT", klass="T")
        policy = PhasePolicy({"alltoall"}, low_mhz=600, high_mhz=1400)
        m = run_workload(w, InternalStrategy(policy))
        # 2 switches per iteration per rank + initial set
        assert m.dvs_transitions >= 2 * w.iters * w.nprocs
        assert 600.0 in m.time_at_mhz and 1400.0 in m.time_at_mhz

    def test_phase_policy_requires_known_phase(self):
        w = get_workload("EP", klass="T")
        policy = PhasePolicy({"alltoall"})
        with pytest.raises(ValueError, match="never announces"):
            InternalStrategy(policy).hooks(w)

    def test_phase_policy_needs_some_phase(self):
        with pytest.raises(ValueError):
            PhasePolicy(set())

    def test_rank_policy_split(self):
        w = get_workload("CG", klass="T")
        policy = RankPolicy.split(4, high_mhz=1200, low_mhz=800)
        m = run_workload(w, InternalStrategy(policy, label="I"))
        # Static per-rank speeds: one transition per rank at init.
        assert m.dvs_transitions == w.nprocs
        assert m.time_at_mhz.get(1200, 0) > 0
        assert m.time_at_mhz.get(800, 0) > 0
        assert "internal[I]" == m.strategy

    def test_rank_policy_mapping(self):
        policy = RankPolicy({0: 600.0, 1: 1400.0})
        assert policy._speed_of(0) == 600.0
        assert policy._speed_of(1) == 1400.0


def test_no_dvs_pins_top_speed():
    env = Environment()
    cluster = nemo_cluster(env, 2, with_batteries=False)
    cluster.set_all_speeds_mhz(600)
    NoDvsStrategy().setup(cluster, [0, 1])
    assert all(n.cpu.frequency_mhz == 1400 for n in cluster)
