"""Ablation study shapes (tiny classes for speed)."""

import pytest

from repro.experiments.ablations import (
    daemon_interval_study,
    daemon_threshold_study,
    network_speed_study,
    scaling_study,
    transition_latency_study,
)


def test_interval_study_points():
    points = daemon_interval_study(code="FT", klass="T", intervals_s=(0.5, 2.0))
    assert [p.setting for p in points] == [0.5, 2.0]
    for p in points:
        assert p.norm_delay > 0 and p.norm_energy > 0


def test_threshold_regime_flip():
    # Class B: tiny runs end before the daemon's 2 s interval fires.
    points = daemon_threshold_study(
        code="MG", klass="B", usage_thresholds=(60.0, 90.0)
    )
    low, high = points
    # Below the flip the daemon stays fast (no saving); above it slides
    # down (saving, delay).
    assert low.energy_saving < high.energy_saving


def test_transition_latency_erodes_internal_gains():
    points = transition_latency_study(
        code="FT", klass="T", latencies_s=(10e-6, 200e-3)
    )
    cheap, expensive = points
    assert expensive.norm_delay > cheap.norm_delay
    assert cheap.energy_saving > 0.1


def test_network_speed_reduces_slack():
    points = network_speed_study(code="FT", klass="T", bandwidth_scales=(1.0, 8.0))
    slow_net, fast_net = points
    assert slow_net.energy_saving > fast_net.energy_saving


def test_scaling_study_runs_at_multiple_sizes():
    points = scaling_study(code="FT", klass="T", node_counts=(2, 8))
    assert [p.setting for p in points] == [2.0, 8.0]
    for p in points:
        assert p.energy_saving > 0.05
        assert p.norm_delay < 1.05


def test_ablation_point_properties():
    from repro.experiments.ablations import AblationPoint

    p = AblationPoint(1.0, 1.05, 0.8)
    assert p.energy_saving == pytest.approx(0.2)
