"""MeasurementCache robustness layers: corrupt eviction + hot LRU.

The disk cache must heal itself when an entry is corrupt (unlink it,
count it, re-simulate) and must serve repeated lookups from the
in-process hot layer without re-parsing JSON — both visible in
``CacheStats`` and the runner's rendered telemetry.
"""

from __future__ import annotations

import pytest

from repro.core.framework import Measurement
from repro.experiments.report import render_runner_stats
from repro.experiments.store import CacheStats, MeasurementCache


def _measurement(tag: str = "FT.T.4") -> Measurement:
    return Measurement(
        workload=tag,
        strategy="test",
        elapsed_s=1.25,
        energy_j=100.0,
        per_node_energy_j={0: 50.0, 1: 50.0},
        dvs_transitions=3,
        time_at_mhz={1400.0: 2.5},
        acpi_energy_j=None,
        baytech_energy_j=None,
        trace=None,
        report=None,
        extras={},
    )


KEY = "ab" + "0" * 62


# ----------------------------------------------------------------------
# corrupt-entry eviction
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "garbage",
    ["{truncated", '{"key": "x"}', '{"measurement": "not a dict"}', ""],
    ids=["bad-json", "missing-field", "wrong-type", "empty"],
)
def test_corrupt_entry_is_evicted(tmp_path, garbage: str) -> None:
    cache = MeasurementCache(tmp_path)
    path = cache.put(KEY, _measurement())
    path.write_text(garbage)
    fresh = MeasurementCache(tmp_path)  # no hot layer for this key
    assert fresh.get(KEY) is None
    assert fresh.stats.evicted_corrupt == 1
    assert fresh.stats.misses == 1
    assert not path.exists()  # the slot healed: next put re-creates it
    fresh.put(KEY, _measurement())
    assert MeasurementCache(tmp_path).get(KEY) is not None


def test_missing_entry_is_a_plain_miss(tmp_path) -> None:
    cache = MeasurementCache(tmp_path)
    assert cache.get(KEY) is None
    assert cache.stats.misses == 1
    assert cache.stats.evicted_corrupt == 0


# ----------------------------------------------------------------------
# the in-process hot layer
# ----------------------------------------------------------------------
def test_put_primes_hot_layer(tmp_path) -> None:
    cache = MeasurementCache(tmp_path)
    cache.put(KEY, _measurement())
    m = cache.get(KEY)
    assert m is not None
    assert cache.stats.hot_hits == 1


def test_disk_hit_then_hot_hit(tmp_path) -> None:
    MeasurementCache(tmp_path).put(KEY, _measurement())
    cache = MeasurementCache(tmp_path)
    first = cache.get(KEY)   # disk read, then remembered
    second = cache.get(KEY)  # served hot
    assert first == second
    assert cache.stats.hits == 2
    assert cache.stats.hot_hits == 1


def test_hot_layer_is_lru_bounded(tmp_path) -> None:
    cache = MeasurementCache(tmp_path, hot_capacity=2)
    keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
    for key in keys:
        cache.put(key, _measurement())
    # The oldest key was evicted from the hot layer but not from disk.
    assert cache.get(keys[0]) is not None
    assert cache.stats.hot_hits == 0
    assert cache.get(keys[2]) is not None
    assert cache.stats.hot_hits == 1


def test_hot_capacity_zero_disables_layer(tmp_path) -> None:
    cache = MeasurementCache(tmp_path, hot_capacity=0)
    cache.put(KEY, _measurement())
    assert cache.get(KEY) is not None
    assert cache.stats.hot_hits == 0


def test_negative_hot_capacity_rejected(tmp_path) -> None:
    with pytest.raises(ValueError, match="hot_capacity"):
        MeasurementCache(tmp_path, hot_capacity=-1)


def test_clear_empties_hot_layer(tmp_path) -> None:
    cache = MeasurementCache(tmp_path)
    cache.put(KEY, _measurement())
    assert cache.clear() == 1
    assert cache.get(KEY) is None


# ----------------------------------------------------------------------
# telemetry rendering
# ----------------------------------------------------------------------
def test_stats_render_mentions_new_counters() -> None:
    stats = CacheStats(
        hits=5,
        misses=2,
        stores=2,
        evicted_corrupt=1,
        hot_hits=3,
        straightline_fallbacks=2,
        batch_splits=1,
        batch_scalar_reruns=4,
    )
    text = stats.render()
    assert "3 served hot" in text
    assert "1 corrupt entries evicted" in text
    assert "2 event-engine fallbacks" in text
    assert "1 batch splits" in text
    assert "4 points re-run scalar" in text


def test_stats_render_lists_fallback_reasons() -> None:
    stats = CacheStats(straightline_fallbacks=3)
    stats.count_fallback("p2p_unclassifiable", 2)
    stats.count_fallback("divergent_control")
    stats.count_fallback(None)  # successes carry no reason: ignored
    stats.count_fallback("")  # defensive: empty codes are ignored too
    assert stats.fallback_reasons == {
        "p2p_unclassifiable": 2,
        "divergent_control": 1,
    }
    text = stats.render()
    assert "fallback reasons" in text
    assert "p2p_unclassifiable x2" in text
    assert "divergent_control x1" in text


def test_stats_render_silent_without_fallback_reasons() -> None:
    assert "fallback reasons" not in CacheStats(hits=1).render()


def test_render_runner_stats_includes_disk_line(tmp_path) -> None:
    class FakeRunner:
        def __init__(self, cache):
            self.stats = CacheStats(hits=1, misses=0)
            self.cache = cache

    cache = MeasurementCache(tmp_path)
    quiet = render_runner_stats(FakeRunner(cache))
    assert "disk" not in quiet
    cache.stats.hot_hits = 2
    cache.stats.hits = 2
    loud = render_runner_stats(FakeRunner(cache))
    assert "disk" in loud and "2 served hot" in loud
