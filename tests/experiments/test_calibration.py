"""Reference-data integrity."""

import pytest

from repro.experiments.calibration import (
    FREQUENCIES_MHZ,
    PAPER_CLAIMS,
    PAPER_CRESCENDO_TYPES,
    PAPER_TABLE2,
    table2_profile,
)


def test_all_eight_codes_present():
    assert sorted(PAPER_TABLE2) == ["BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"]
    assert sorted(PAPER_CRESCENDO_TYPES) == sorted(PAPER_TABLE2)


def test_each_row_has_all_columns():
    for code, row in PAPER_TABLE2.items():
        assert set(row) == {"auto", "600", "800", "1000", "1200", "1400"}


def test_baseline_column_is_unity():
    for code, row in PAPER_TABLE2.items():
        assert row["1400"] == (1.00, 1.00)


def test_frequencies_match_table1():
    assert FREQUENCIES_MHZ == (600.0, 800.0, 1000.0, 1200.0, 1400.0)


def test_profile_skips_unpublished_cells():
    sp = table2_profile("SP")
    assert set(sp) == {1400.0}  # only the trivial cell is published
    ft = table2_profile("FT")
    assert set(ft) == set(FREQUENCIES_MHZ)


def test_profile_values_roundtrip():
    ft = table2_profile("FT")
    assert ft[600.0] == (1.13, 0.62)


def test_claims_cover_all_codes_for_cpuspeed_and_ed3p():
    assert sorted(PAPER_CLAIMS["cpuspeed"]) == sorted(PAPER_TABLE2)
    assert sorted(PAPER_CLAIMS["external_ed3p"]) == sorted(PAPER_TABLE2)


def test_energy_delay_ranges_sane():
    for code, row in PAPER_TABLE2.items():
        for col, cell in row.items():
            if cell is None:
                continue
            d, e = cell
            assert 0.8 <= d <= 2.5
            if e is not None:
                assert 0.5 <= e <= 1.2
