"""Full-campaign report generation (tiny class)."""

import pytest

from repro.experiments.campaign import run_campaign, write_report


@pytest.fixture(scope="module")
def report_text():
    return run_campaign(klass="T", codes=["EP", "FT"], with_charts=True)


def test_contains_every_section(report_text):
    for heading in (
        "Table 1",
        "Table 2",
        "Fidelity",
        "Figure 1",
        "Figure 2",
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Figure 9",
        "Figure 11",
        "Figure 12",
        "Figure 14",
    ):
        assert f"## {heading}" in report_text, heading


def test_charts_included(report_text):
    assert "swim crescendo" in report_text
    assert "* delay   o energy" in report_text


def test_wall_time_footer(report_text):
    assert "Campaign wall time" in report_text


def test_write_report_creates_file(tmp_path):
    path = write_report(tmp_path / "R.md", klass="T", codes=["EP"])
    assert path.exists()
    assert path.read_text().startswith("# Reproduction report")


def test_cli_report_target(tmp_path, monkeypatch, capsys):
    from repro.experiments.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["report", "--class", "T", "--codes", "EP"]) == 0
    assert (tmp_path / "REPORT.md").exists()


def test_campaign_parallel_cached_smoke(tmp_path):
    """Tiny campaign with two workers and a cold-then-warm cache."""
    cache = tmp_path / "cache"
    cold = run_campaign(klass="T", codes=["EP"], with_charts=False,
                        jobs=2, cache_dir=cache)
    assert "2 workers" in cold
    warm = run_campaign(klass="T", codes=["EP"], with_charts=False,
                        jobs=2, cache_dir=cache)
    # Every cacheable point hits on the warm pass...
    assert "0 misses" in warm
    # ...and the science (everything but the wall-time footer) matches.
    strip = lambda text: text.rsplit("---", 1)[0]
    assert strip(warm) == strip(cold)
