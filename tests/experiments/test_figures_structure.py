"""Structural checks on every figure function (tiny classes).

The full-fidelity class-C checks live in test_reproduction.py; these
verify the figure plumbing itself — shapes, fields, renderability — at
test speed.
"""

import pytest

from repro.experiments import report
from repro.experiments.figures import (
    figure2_swim_crescendo,
    figure5_cpuspeed,
    figure6_external_ed3p,
    figure8_crescendos,
    figure9_ft_trace,
    figure11_ft_internal,
    figure12_cg_trace,
    figure14_cg_internal,
)


CODES = ["EP", "FT"]


@pytest.fixture(scope="module")
def sweeps():
    from repro.experiments.runner import frequency_sweep
    from repro.workloads import get_workload

    return {
        code: frequency_sweep(get_workload(code, klass="T"))
        for code in CODES
    }


def test_figure2_structure():
    sweep = figure2_swim_crescendo()
    assert set(sweep.normalized) == {600.0, 800.0, 1000.0, 1200.0, 1400.0}
    assert sweep.normalized[1400.0] == (1.0, 1.0)


def test_figure5_structure():
    comp = figure5_cpuspeed(codes=CODES, klass="T")
    assert set(comp.points) == set(CODES)
    assert report.render_comparison(comp)


def test_figure6_structure(sweeps):
    sel = figure6_external_ed3p(codes=CODES, klass="T", sweeps=sweeps)
    assert set(sel.selected_mhz) == set(CODES)
    for code, mhz in sel.selected_mhz.items():
        assert mhz in sweeps[code].normalized
    assert report.render_selection(sel)


def test_figure8_structure(sweeps):
    fig = figure8_crescendos(codes=CODES, klass="T", sweeps=sweeps)
    assert set(fig.crescendos) == set(CODES)
    groups = fig.groups()
    assert sum(len(v) for v in groups.values()) == len(CODES)
    assert report.render_crescendos(fig)


def test_figure9_structure():
    fig = figure9_ft_trace(klass="T")
    assert fig.code == "FT"
    assert fig.stats.ranks
    assert fig.timeline(width=40)
    assert report.render_trace_observations(fig)


def test_figure11_structure(sweeps):
    fig = figure11_ft_internal(klass="T", sweep=sweeps["FT"])
    assert "internal" in fig.internal
    assert set(fig.external) == set(sweeps["FT"].normalized)
    assert len(fig.auto) == 2
    assert report.render_internal(fig)


def test_figure12_structure():
    fig = figure12_cg_trace(klass="T")
    assert len(fig.stats.ranks) == 8


def test_figure14_structure():
    fig = figure14_cg_internal(klass="T")
    assert set(fig.internal) == {"internal I", "internal II"}
    assert report.render_internal(fig)
