"""Parallel engine + measurement cache: determinism and invalidation.

The load-bearing guarantees of :mod:`repro.experiments.parallel`:

* a parallel run is *bit-for-bit* identical to a serial run;
* a cache hit is bit-for-bit identical to a fresh run;
* the cache key changes whenever anything that could change the
  result changes (strategy parameters, seed, model version) and does
  NOT change for equal-valued reconstructions of the same spec.
"""

import pytest

from repro.core.strategies import (
    CpuspeedConfig,
    CpuspeedDaemonStrategy,
    ExternalStrategy,
    NoDvsStrategy,
)
from repro.experiments import store, tables
from repro.experiments.parallel import ParallelRunner, RunTask, current_runner, use
from repro.experiments.runner import frequency_sweep
from repro.experiments.store import MeasurementCache, cache_key
from repro.workloads import get_workload

FREQS = (600.0, 1000.0, 1400.0)


def _summary(m):
    """Every summary field a cached/parallel run must reproduce."""
    return (
        m.workload,
        m.strategy,
        m.elapsed_s,
        m.energy_j,
        m.acpi_energy_j,
        m.baytech_energy_j,
        m.dvs_transitions,
        tuple(sorted(m.per_node_energy_j.items())),
        tuple(sorted(m.time_at_mhz.items())),
    )


# -- parallel == serial ------------------------------------------------


@pytest.mark.parametrize("code", ["CG", "FT"])
def test_parallel_sweep_bit_for_bit_equals_serial(code):
    workload = get_workload(code, klass="T")
    serial = frequency_sweep(workload, frequencies_mhz=FREQS, seed=3)
    with ParallelRunner(jobs=2) as runner, use(runner):
        parallel = frequency_sweep(workload, frequencies_mhz=FREQS, seed=3)
    for mhz in FREQS:
        assert _summary(parallel.raw[mhz]) == _summary(serial.raw[mhz])


def test_map_preserves_task_order():
    w_cg = get_workload("CG", klass="T")
    w_ft = get_workload("FT", klass="T")
    tasks = [
        RunTask(w_ft, ExternalStrategy(mhz=600)),
        RunTask(w_cg, None),
        RunTask(w_ft, None),
    ]
    with ParallelRunner(jobs=2) as runner:
        results = runner.map(tasks)
    assert [m.workload for m in results] == [w_ft.tag, w_cg.tag, w_ft.tag]
    assert results[0].strategy != results[2].strategy


def test_default_runner_is_serial_and_uncached():
    runner = current_runner()
    assert runner.jobs == 1
    assert runner.cache is None


# -- chunked sweep submission ------------------------------------------


def test_map_sweep_bit_for_bit_equals_map():
    w_cg = get_workload("CG", klass="T")
    w_ft = get_workload("FT", klass="T")
    tasks = [
        RunTask(w, ExternalStrategy(mhz=mhz), 0)
        for w in (w_cg, w_ft)
        for mhz in FREQS
    ]
    with ParallelRunner(jobs=1, memo=False) as runner:
        serial = runner.map(list(tasks))
    with ParallelRunner(jobs=2, memo=False) as runner:
        chunked = runner.map_sweep(list(tasks), chunk_size=2)
    assert [_summary(m) for m in chunked] == [_summary(m) for m in serial]


def test_map_sweep_fills_cache_per_point(tmp_path):
    workload = get_workload("CG", klass="T")
    tasks = [RunTask(workload, ExternalStrategy(mhz=mhz), 0) for mhz in FREQS]
    with ParallelRunner(jobs=2, cache_dir=tmp_path) as runner:
        runner.map_sweep(list(tasks), chunk_size=len(FREQS))
        assert runner.stats.stores == len(FREQS)
    # A later *unchunked* run hits every individual point.
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        runner.map(list(tasks))
        assert runner.stats.hits == len(FREQS)
        assert runner.stats.misses == 0


def test_map_sweep_rejects_bad_chunk_size():
    with ParallelRunner(jobs=1) as runner:
        with pytest.raises(ValueError):
            runner.map_sweep([], chunk_size=0)


# -- memo / cache behaviour --------------------------------------------


def test_memo_dedupes_repeated_baselines():
    workload = get_workload("CG", klass="T")
    with ParallelRunner(jobs=1) as runner:
        a, b = runner.map([RunTask(workload, None), RunTask(workload, None)])
    assert runner.stats.hits == 1 and runner.stats.misses == 1
    assert _summary(a) == _summary(b)


def test_cache_hit_is_bit_for_bit(tmp_path):
    workload = get_workload("FT", klass="T")
    strategy = ExternalStrategy(mhz=800)
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        fresh = runner.run(workload, strategy, seed=1)
    # A new runner sees only the on-disk entry, not the memo.
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        cached = runner.run(workload, strategy, seed=1)
        assert runner.stats.hits == 1 and runner.stats.misses == 0
    assert _summary(cached) == _summary(fresh)


def test_uncacheable_runs_bypass_cache(tmp_path):
    workload = get_workload("CG", klass="T")
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        m = runner.run(workload, None, trace=True)
        assert m.trace is not None
        assert runner.stats.lookups == 0
    assert len(MeasurementCache(tmp_path)) == 0


def test_cache_clear(tmp_path):
    workload = get_workload("CG", klass="T")
    cache = MeasurementCache(tmp_path)
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        runner.run(workload, None)
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# -- cache-key sensitivity ---------------------------------------------


def test_cache_key_stable_across_reconstruction():
    w1 = get_workload("FT", klass="T")
    w2 = get_workload("FT", klass="T")
    assert cache_key(w1, ExternalStrategy(mhz=600), 0, {}) == cache_key(
        w2, ExternalStrategy(mhz=600), 0, {}
    )


def test_cache_key_changes_with_strategy_params():
    w = get_workload("FT", klass="T")
    base = cache_key(w, ExternalStrategy(mhz=600), 0, {})
    assert cache_key(w, ExternalStrategy(mhz=800), 0, {}) != base
    assert cache_key(w, NoDvsStrategy(), 0, {}) != base
    slow = CpuspeedDaemonStrategy(CpuspeedConfig(interval_s=2.0))
    fast = CpuspeedDaemonStrategy(CpuspeedConfig(interval_s=0.5))
    assert cache_key(w, slow, 0, {}) != cache_key(w, fast, 0, {})


def test_cache_key_changes_with_seed_and_workload():
    w = get_workload("FT", klass="T")
    base = cache_key(w, NoDvsStrategy(), 0, {})
    assert cache_key(w, NoDvsStrategy(), 1, {}) != base
    assert cache_key(get_workload("CG", klass="T"), NoDvsStrategy(), 0, {}) != base


def test_cache_key_distinguishes_rank_split_policies():
    from repro.core.strategies import InternalStrategy, RankPolicy

    w = get_workload("CG", klass="T")
    a = cache_key(w, InternalStrategy(RankPolicy.split(2, 1400, 600)), 0, {})
    b = cache_key(w, InternalStrategy(RankPolicy.split(4, 1400, 600)), 0, {})
    assert a != b


def test_local_callables_refuse_a_cache_key(tmp_path):
    from repro.core.strategies import InternalStrategy, RankPolicy
    from repro.experiments.store import UncacheableSpecError

    w = get_workload("CG", klass="T")
    strategy = InternalStrategy(RankPolicy(lambda rank: 1400.0))
    with pytest.raises(UncacheableSpecError):
        cache_key(w, strategy, 0, {})
    # The runner degrades to an uncached (not wrongly-keyed) run.
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        m = runner.run(w, strategy)
    assert m.elapsed_s > 0
    assert len(MeasurementCache(tmp_path)) == 0


def test_cache_key_changes_with_model_version(monkeypatch):
    w = get_workload("FT", klass="T")
    base = cache_key(w, NoDvsStrategy(), 0, {})
    monkeypatch.setattr(store, "MODEL_VERSION", store.MODEL_VERSION + 1)
    assert cache_key(w, NoDvsStrategy(), 0, {}) != base


def test_engine_tiers_share_cache_slot_and_payload():
    # ``engine`` selects an execution tier, never an output: both tiers
    # must land in (and be satisfied by) the same cache slot with an
    # identical serialized payload.
    from repro.core.framework import run_workload
    from repro.experiments.store import measurement_to_dict

    workload = get_workload("CG", klass="T")
    strategy = ExternalStrategy(mhz=800.0)
    keys = {
        cache_key(workload, strategy, 0, kwargs)
        for kwargs in ({}, {"engine": "event"}, {"engine": "straightline"},
                       {"engine": "auto"})
    }
    assert len(keys) == 1
    fast = run_workload(workload, strategy, engine="straightline")
    ref = run_workload(
        get_workload("CG", klass="T"), ExternalStrategy(mhz=800.0), engine="event"
    )
    assert measurement_to_dict(fast) == measurement_to_dict(ref)


def test_none_strategy_shares_nodvs_cache_slot(tmp_path):
    workload = get_workload("CG", klass="T")
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        runner.run(workload, NoDvsStrategy())
    with ParallelRunner(jobs=1, cache_dir=tmp_path) as runner:
        runner.run(workload, None)
        assert runner.stats.hits == 1


# -- end-to-end smoke --------------------------------------------------


def test_tiny_campaign_parallel_and_cached_matches_serial(tmp_path):
    codes = ["CG", "FT"]
    serial = tables.table2(codes=codes, klass="T", seed=0)
    with ParallelRunner(jobs=2, cache_dir=tmp_path) as runner, use(runner):
        cold = tables.table2(codes=codes, klass="T", seed=0)
        assert runner.stats.misses > 0
    with ParallelRunner(jobs=2, cache_dir=tmp_path) as runner, use(runner):
        warm = tables.table2(codes=codes, klass="T", seed=0)
        assert runner.stats.misses == 0 and runner.stats.hits > 0
    for code in codes:
        for mhz, m in serial[code].sweep.raw.items():
            assert _summary(cold[code].sweep.raw[mhz]) == _summary(m)
            assert _summary(warm[code].sweep.raw[mhz]) == _summary(m)
        assert serial[code].sweep.normalized == cold[code].sweep.normalized
        assert serial[code].sweep.normalized == warm[code].sweep.normalized
