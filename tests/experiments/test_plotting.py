"""ASCII chart renderer."""

import pytest

from repro.experiments.calibration import table2_profile
from repro.experiments.plotting import ascii_chart, crescendo_chart


def test_basic_chart_structure():
    text = ascii_chart(
        [0, 1, 2], {"up": [0.0, 1.0, 2.0]}, width=20, height=6, title="t"
    )
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].endswith("+" + "-" * 20 + "+")
    assert len([l for l in lines if l.strip().startswith("|")]) == 6
    assert "* up" in lines[-1]


def test_extreme_points_plotted_at_edges():
    text = ascii_chart([0, 10], {"s": [0.0, 1.0]}, width=20, height=5)
    rows = [l for l in text.splitlines() if "|" in l and "+" not in l]
    # max value in top row, min in bottom row
    assert "*" in rows[0]
    assert "*" in rows[-1]
    assert rows[0].index("*") > rows[-1].index("*")


def test_two_series_distinct_glyphs():
    text = ascii_chart(
        [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}, width=15, height=5
    )
    assert "*" in text and "o" in text
    assert "* a" in text and "o b" in text


def test_constant_series_does_not_crash():
    text = ascii_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]}, width=12, height=5)
    assert "*" in text


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart([], {"a": []})
    with pytest.raises(ValueError):
        ascii_chart([1], {}, width=20)
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"a": [1.0]})
    with pytest.raises(ValueError):
        ascii_chart([1], {"a": [1.0]}, width=5)


def test_crescendo_chart_from_paper_data():
    text = crescendo_chart(table2_profile("FT"), title="FT")
    assert "delay" in text and "energy" in text
    assert "600" in text and "1400" in text


def test_y_axis_labels_reflect_range():
    text = ascii_chart([0, 1], {"s": [0.25, 0.75]}, width=20, height=5)
    assert "0.750" in text
    assert "0.250" in text
