"""Report renderers and the command-line interface."""

import pytest

from repro.experiments import report
from repro.experiments.cli import main
from repro.experiments.tables import table1


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = report.render_table(
            ["A", "Long header"], [["1", "2"], ["333", "4"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith("---")
        # columns padded to widest cell
        assert "Long header" in lines[1]

    def test_no_title(self):
        text = report.render_table(["X"], [["1"]])
        assert text.splitlines()[0].startswith("X")


def test_render_table1_contains_all_points():
    text = report.render_table1(table1())
    for token in ("1.4GHz", "0.6GHz", "1.484V", "0.956V"):
        assert token in text


def test_render_sweep_and_comparison_shapes():
    from repro.experiments.runner import SweepResult
    from repro.core.framework import Measurement

    def fake(elapsed, energy):
        return Measurement(
            workload="X", strategy="s", elapsed_s=elapsed, energy_j=energy,
            per_node_energy_j={}, dvs_transitions=0, time_at_mhz={},
        )

    sweep = SweepResult(
        workload="X.T.2",
        raw={600.0: fake(1.2, 70.0), 1400.0: fake(1.0, 100.0)},
        baseline_mhz=1400.0,
    )
    text = report.render_sweep(sweep)
    assert "600 MHz" in text and "1.200" in text and "0.700" in text

    from repro.experiments.figures import StrategyComparison

    comp = StrategyComparison("s", {"A": (1.1, 0.8), "B": (1.0, 1.0)})
    text = report.render_comparison(comp)
    rows = text.splitlines()[3:]
    assert rows[0].startswith("B")  # sorted by delay


class TestCli:
    def test_table1_target(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig2_target(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "600 MHz" in out

    def test_table2_restricted_tiny(self, capsys):
        assert main(["table2", "--codes", "EP", "--class", "T"]) == 0
        out = capsys.readouterr().out
        assert "EP.T.8" in out

    def test_fig6_reuses_sweeps(self, capsys):
        assert main(["table2", "fig6", "--codes", "EP", "--class", "T"]) == 0
        out = capsys.readouterr().out
        assert "ED3P" in out

    def test_advise_target(self, capsys):
        assert main(["advise", "--codes", "EP", "--class", "T"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["figNaN"])


class TestOptimizeCli:
    def test_optimize_target(self, capsys):
        assert main(
            ["optimize", "--codes", "FT", "--class", "T", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "Computed frontier vs shipped schedules: FT" in out
        assert "<- optimal" in out
        assert "optimizer:" in out  # CacheStats telemetry line

    def test_optimize_respects_delta(self, capsys):
        assert main(
            ["optimize", "--codes", "FT", "--class", "T", "--no-cache",
             "--delta", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "delay cap 1.200" in out
