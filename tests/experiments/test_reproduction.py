"""End-to-end reproduction checks against the paper's published results.

These are *shape* checks: the simulator is calibrated against Table 2,
so static-sweep cells must land close to the paper, and every derived
claim (daemon behaviour bands, metric selections, crescendo taxonomy,
the two INTERNAL case studies) must hold qualitatively.

The module runs the full class-C Table 2 grid once (module-scoped
fixture) and derives most figures from it.
"""

import pytest

from repro.core.crescendo import CrescendoType
from repro.experiments.calibration import PAPER_CRESCENDO_TYPES, PAPER_TABLE2
from repro.experiments.figures import (
    figure1_power_breakdown,
    figure2_swim_crescendo,
    figure6_external_ed3p,
    figure7_external_ed2p,
    figure8_crescendos,
    figure9_ft_trace,
    figure11_ft_internal,
    figure12_cg_trace,
    figure14_cg_internal,
)
from repro.experiments.tables import NPB_CODES, table1, table2


@pytest.fixture(scope="module")
def t2rows():
    return table2()


@pytest.fixture(scope="module")
def sweeps(t2rows):
    return {code: row.sweep for code, row in t2rows.items()}


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def test_table1_matches_paper():
    assert table1() == [
        (1.4, 1.484),
        (1.2, 1.436),
        (1.0, 1.308),
        (0.8, 1.180),
        (0.6, 0.956),
    ]


# ----------------------------------------------------------------------
# Table 2 — static frequency columns
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", sorted(NPB_CODES))
def test_table2_static_delays_match_paper(t2rows, code):
    row = t2rows[code]
    for col in ("600", "800", "1000", "1200"):
        paper_cell = PAPER_TABLE2[code][col]
        if paper_cell is None:
            continue
        measured_d = row.columns[col][0]
        assert measured_d == pytest.approx(paper_cell[0], abs=0.07), (
            f"{code}@{col}MHz delay"
        )


@pytest.mark.parametrize("code", sorted(NPB_CODES))
def test_table2_static_energies_match_paper(t2rows, code):
    row = t2rows[code]
    for col in ("600", "800", "1000", "1200"):
        paper_cell = PAPER_TABLE2[code][col]
        if paper_cell is None or paper_cell[1] is None:
            continue
        measured_e = row.columns[col][1]
        assert measured_e == pytest.approx(paper_cell[1], abs=0.08), (
            f"{code}@{col}MHz energy"
        )


# ----------------------------------------------------------------------
# Table 2 "auto" column / Figure 5 — CPUSPEED behaviour bands
# ----------------------------------------------------------------------
def test_cpuspeed_bands(t2rows):
    """Section 5.1's grouping of daemon outcomes:

    * LU, EP: a few % energy, a couple % delay (daemon stays at top).
    * IS, FT: ~25 % energy at <= ~9 % delay.
    * SP, CG: ~31-35 % energy at ~8-20 % delay.
    * MG, BT: energy saved but with >= ~15 % delay (misprediction).
    """
    auto = {c: t2rows[c].columns["auto"] for c in t2rows}
    for code in ("LU", "EP"):
        d, e = auto[code]
        assert d <= 1.03, code
        assert e >= 0.93, code
    for code in ("IS", "FT"):
        d, e = auto[code]
        assert d <= 1.10, code
        assert e <= 0.82, code
    for code in ("SP", "CG"):
        d, e = auto[code]
        assert 1.05 <= d <= 1.22, code
        assert e <= 0.72, code
    for code in ("MG", "BT"):
        d, e = auto[code]
        assert d >= 1.15, code
        assert 0.70 <= e <= 0.95, code


def test_cpuspeed_significant_savings_cost_delay(t2rows):
    """The paper's headline criticism: among SP/CG/MG/BT — the codes it
    cites — >25 % daemon savings come only with ~10 %+ delay increases
    (IS/FT are the benign exceptions in the paper's own Figure 5)."""
    for code in ("SP", "CG", "MG", "BT"):
        d, e = t2rows[code].columns["auto"]
        if e < 0.70:
            assert d > 1.08, code


# ----------------------------------------------------------------------
# Figures 6/7 — metric-driven EXTERNAL selection
# ----------------------------------------------------------------------
def test_ed3p_selection_shape(sweeps):
    sel = figure6_external_ed3p(sweeps=sweeps)
    # Type I/II codes pin the top frequency: no savings, no loss.
    for code in ("BT", "EP", "LU", "MG"):
        assert sel.selected_mhz[code] == 1400.0, code
    # Type III/IV codes pick a lower point with bounded delay.
    for code in ("FT", "CG", "SP", "IS"):
        assert sel.selected_mhz[code] < 1400.0, code
        d, e = sel.points[code]
        assert e < 0.85, code
        assert d <= 1.10, code
    # IS saves energy AND time (paper: -25 % E, -9 % D).
    d_is, e_is = sel.points["IS"]
    assert d_is < 1.0 and e_is < 0.85


def test_ed2p_selects_more_aggressively_than_ed3p(sweeps):
    ed3 = figure6_external_ed3p(sweeps=sweeps)
    ed2 = figure7_external_ed2p(sweeps=sweeps)
    for code in NPB_CODES:
        assert ed2.selected_mhz[code] <= ed3.selected_mhz[code], code
    # FT under ED2P drops all the way (paper: 600 MHz, -38 % E, +13 % D)
    assert ed2.selected_mhz["FT"] == 600.0
    d, e = ed2.points["FT"]
    assert e == pytest.approx(0.62, abs=0.08)
    assert d == pytest.approx(1.13, abs=0.05)


# ----------------------------------------------------------------------
# Figure 8 — crescendo taxonomy
# ----------------------------------------------------------------------
def test_crescendo_types_match_paper(sweeps):
    fig = figure8_crescendos(sweeps=sweeps)
    for code, expected in PAPER_CRESCENDO_TYPES.items():
        assert fig.types[code].value == expected, code


def test_only_type_iii_iv_save_energy(sweeps):
    fig = figure8_crescendos(sweeps=sweeps)
    for code, cres in fig.crescendos.items():
        if fig.types[code] in (CrescendoType.TYPE_III, CrescendoType.TYPE_IV):
            assert cres.best_energy_saving > 0.15, code
        else:
            # Type I/II may save energy but only by paying comparable delay.
            assert cres.max_delay_increase >= 0.3 or cres.max_energy_saving < 0.1


# ----------------------------------------------------------------------
# Figure 11 — FT INTERNAL case study
# ----------------------------------------------------------------------
def test_ft_internal_beats_everything(sweeps):
    fig = figure11_ft_internal(sweep=sweeps["FT"])
    d_int, e_int = fig.internal["internal"]
    # Paper: 36 % saving with no noticeable delay increase.
    assert d_int <= 1.01
    assert 0.55 <= e_int <= 0.72
    # Better than CPUSPEED on both axes.
    d_auto, e_auto = fig.auto
    assert e_int < e_auto and d_int < d_auto
    # External 600 saves about as much but pays real delay (paper: +13 %).
    d_ext, e_ext = fig.external[600.0]
    assert d_ext > 1.10
    assert abs(e_ext - e_int) < 0.12


# ----------------------------------------------------------------------
# Figure 14 — CG heterogeneous INTERNAL case study
# ----------------------------------------------------------------------
def test_cg_internal_no_big_win_over_external(sweeps):
    fig = figure14_cg_internal(sweep=sweeps["CG"])
    d800, e800 = fig.external[800.0]
    for label, (d, e) in fig.internal.items():
        # Paper: ~8 % delay, 16-23 % savings; and no significant
        # advantage over EXTERNAL at 800 MHz.
        assert d <= 1.09, label
        assert 0.70 <= e <= 0.87, label
        assert e >= e800 - 0.03, label


# ----------------------------------------------------------------------
# Figure 2 — swim single-node crescendo
# ----------------------------------------------------------------------
def test_swim_crescendo_shape():
    sweep = figure2_swim_crescendo()
    norm = sweep.normalized
    d600, e600 = norm[600.0]
    assert d600 == pytest.approx(1.25, abs=0.05)  # paper: ~25 % delay
    d1200, e1200 = norm[1200.0]
    assert e1200 <= 0.95  # paper: ~8 % saving at 1200
    assert d1200 <= 1.05
    energies = [norm[m][1] for m in sorted(norm)]
    assert energies == sorted(energies)  # steady decrease toward 600


# ----------------------------------------------------------------------
# Figure 1 — node power breakdown
# ----------------------------------------------------------------------
def test_power_breakdown_shares():
    fig = figure1_power_breakdown(run_seconds=10.0)
    assert 0.30 <= fig.cpu_share_load <= 0.45  # paper: 35 %
    assert 0.10 <= fig.cpu_share_idle <= 0.22  # paper: 15 %
    assert fig.cpu_share_load > fig.cpu_share_idle


# ----------------------------------------------------------------------
# Figures 9/12 — trace observations
# ----------------------------------------------------------------------
def test_ft_trace_observations():
    fig = figure9_ft_trace(klass="B")
    # paper: comm-bound, ~2:1 ratio, balanced across nodes
    assert 1.5 <= fig.comm_to_comp_ratio <= 3.2
    assert fig.stats.imbalance == pytest.approx(1.0, abs=0.05)
    assert fig.stats.dominant_ops(1)[0][0] == "alltoall"


def test_cg_trace_observations():
    fig = figure12_cg_trace(klass="B")
    # paper: ranks 4-7 show a larger comm-to-comp ratio than 0-3
    heavy = [r.comm_to_comp_ratio for r in fig.stats.ranks[:4]]
    light = [r.comm_to_comp_ratio for r in fig.stats.ranks[4:]]
    assert min(light) > max(heavy)
    # Wait/Send-dominated communication (observation 2)
    top_ops = dict(fig.stats.dominant_ops(3))
    assert any(op in top_ops for op in ("recv", "wait_recv", "send"))
