"""Grid runners."""

import pytest

from repro.core.strategies import ExternalStrategy
from repro.experiments.runner import (
    frequency_sweep,
    normalized_point,
    run_baseline,
    run_repeated,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def ft():
    return get_workload("FT", klass="T")


def test_sweep_contains_requested_frequencies(ft):
    sweep = frequency_sweep(ft, [600, 1400])
    assert set(sweep.raw) == {600.0, 1400.0}
    assert sweep.baseline_mhz == 1400.0


def test_sweep_normalized_baseline_is_unity(ft):
    sweep = frequency_sweep(ft, [600, 1400])
    assert sweep.normalized[1400.0] == (1.0, 1.0)
    d, e = sweep.normalized[600.0]
    assert d > 1.0 and e < 1.0


def test_sweep_defaults_to_full_table(ft):
    sweep = frequency_sweep(ft)
    assert set(sweep.raw) == {600.0, 800.0, 1000.0, 1200.0, 1400.0}


def test_normalized_point_computes_baseline(ft):
    d, e, m = normalized_point(ft, ExternalStrategy(mhz=600))
    assert d > 1.0 and e < 1.0
    assert m.strategy == "external(600MHz)"


def test_normalized_point_accepts_baseline(ft):
    base = run_baseline(ft)
    d, e, _ = normalized_point(ft, ExternalStrategy(mhz=1400), baseline=base)
    assert d == pytest.approx(1.0)
    assert e == pytest.approx(1.0)


def test_run_repeated_seeds(ft):
    results = run_repeated(ft, ExternalStrategy(mhz=1000), seeds=(0, 1))
    assert len(results) == 2
    # the application is deterministic; only channel jitter varies
    assert results[0].elapsed_s == results[1].elapsed_s


class TestRepeatSummary:
    def test_summary_of_repeated_runs(self, ft):
        from repro.core.strategies import ExternalStrategy
        from repro.experiments.runner import run_repeated, summarize_repeats

        runs = run_repeated(
            ft, ExternalStrategy(mhz=1000), seeds=(0, 1, 2),
            measurement_channels=True,
        )
        summary = summarize_repeats(runs)
        assert summary.n == 3
        # the simulated application is deterministic...
        assert summary.std_elapsed_s == pytest.approx(0.0, abs=1e-9)
        assert summary.std_energy_j == pytest.approx(0.0, abs=1e-6)
        # ...but the ACPI channel jitters across seeds (why the paper
        # repeats every experiment)
        assert summary.mean_acpi_energy_j is not None

    def test_summary_without_channels(self, ft):
        from repro.core.strategies import ExternalStrategy
        from repro.experiments.runner import run_repeated, summarize_repeats

        runs = run_repeated(ft, ExternalStrategy(mhz=1400), seeds=(0, 1))
        summary = summarize_repeats(runs)
        assert summary.mean_acpi_energy_j is None
        assert summary.acpi_relative_spread is None

    def test_empty_rejected(self):
        from repro.experiments.runner import summarize_repeats

        with pytest.raises(ValueError):
            summarize_repeats([])
