"""Calibration robustness: conclusions survive ±20 % power perturbations."""

import pytest

from repro.experiments.sensitivity import (
    PerturbationResult,
    perturbed_power,
    power_model_sensitivity,
)
from repro.hardware.power import NEMO_POWER


def test_perturbed_power_scales_one_field():
    p = perturbed_power("cpu_dynamic_max_w", 1.5)
    assert p.cpu_dynamic_max_w == pytest.approx(NEMO_POWER.cpu_dynamic_max_w * 1.5)
    assert p.board_w == NEMO_POWER.board_w


def test_perturbed_power_validation():
    with pytest.raises(ValueError):
        perturbed_power("warp_core_w", 1.2)
    with pytest.raises(ValueError):
        perturbed_power("board_w", 0.0)


@pytest.fixture(scope="module")
def grid():
    return power_model_sensitivity(
        parameters=("cpu_dynamic_max_w", "board_w"),
        scales=(0.8, 1.2),
        codes=("EP", "FT"),
        klass="T",
    )


def test_grid_shape(grid):
    assert len(grid) == 4
    assert all(isinstance(r, PerturbationResult) for r in grid)


def test_taxonomy_robust_across_grid(grid):
    assert all(r.taxonomy_holds for r in grid)


def test_internal_win_robust_across_grid(grid):
    assert all(r.internal_win_holds for r in grid)


def test_delays_power_independent(grid):
    """Perturbing power constants must not move measured delays."""
    delays = {round(r.ft_600[0], 9) for r in grid}
    assert len(delays) == 1


def test_more_cpu_power_means_more_relative_saving():
    results = power_model_sensitivity(
        parameters=("cpu_dynamic_max_w",), scales=(0.8, 1.2),
        codes=("FT",), klass="T",
    )
    low, high = results
    # A hotter CPU makes DVS's relative saving larger: E(600) falls.
    assert high.ft_600[1] < low.ft_600[1]
